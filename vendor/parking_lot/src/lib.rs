//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset of the API this workspace uses (`Mutex`, `RwLock`,
//! `Condvar`) on top of `std::sync`, with parking_lot's non-poisoning
//! signatures: `lock()`/`read()`/`write()` return guards directly and a
//! panicked holder does not poison the lock for everyone else.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the std
    // guard (std's wait consumes and returns it). Always `Some` outside of
    // that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by condvar")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by condvar")
    }
}

pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken by condvar");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.inner.take().expect("guard taken by condvar");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = 7;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while *g != 7 {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
