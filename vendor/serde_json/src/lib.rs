//! Minimal offline stand-in for `serde_json`.
//!
//! Converts between the stub `serde`'s [`Value`] tree and JSON text.
//! Floats are written with Rust's shortest-roundtrip `Debug` formatting
//! (so `from_str(to_string(x))` recovers `x` bit-for-bit, the
//! `float_roundtrip` guarantee); non-finite floats serialize as `null`,
//! matching serde_json's lossy behavior.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-indented JSON (2 spaces, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value> {
    parse(s)
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Debug formatting is the shortest representation that
                // round-trips the f64 exactly.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                match k {
                    Value::Str(s) => write_string(out, s),
                    _ => return Err(Error::new("JSON object keys must be strings")),
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            _ => self.number(),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((Value::Str(key), value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 character.
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
        for &x in &[0.1f32, 1.0f32 / 3.0, f32::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let xs = vec![Some(1.5f64), None, Some(2.5)];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1.5,null,2.5]");
        let back: Vec<Option<f64>> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_indents() {
        let xs = vec![1u32, 2];
        assert_eq!(to_string_pretty(&xs).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("4x2").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }
}
