//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable shared byte window with cursor-style
//! reads via [`Buf`]; [`BytesMut`] is an append buffer with little-endian
//! writers via [`BufMut`] that freezes into a [`Bytes`]. Only the methods
//! the workspace's wire/checkpoint formats use are provided.

use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Shared immutable byte buffer. Reads through [`Buf`] advance an internal
/// cursor; `clone` and [`Bytes::slice`] share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-window of the current window, sharing the allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// Growable byte buffer for building frames.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", self.data)
    }
}

/// Cursor-style reader over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Little-endian append writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut out = BytesMut::with_capacity(32);
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_f32_le(1.5);
        out.put_f64_le(-2.25);
        let mut buf = out.freeze();
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 300);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_u64_le(), 1 << 40);
        assert_eq!(buf.get_f32_le(), 1.5);
        assert_eq!(buf.get_f64_le(), -2.25);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(..3);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        let t = b.slice(1..4);
        assert_eq!(t.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn advance_moves_cursor() {
        let mut b = Bytes::from(vec![0u8, 1, 2, 3]);
        b.advance(2);
        assert_eq!(b.get_u8(), 2);
        assert_eq!(b.remaining(), 1);
    }
}
