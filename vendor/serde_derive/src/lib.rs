//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the stub `serde`'s `Serialize` /
//! `Deserialize` traits (which route through `serde::Value`) for the item
//! shapes this workspace uses:
//!
//! - structs with named fields (attrs: `#[serde(default)]`,
//!   `#[serde(skip)]`, `#[serde(with = "module")]`)
//! - single-field tuple ("newtype") structs — transparent representation
//! - enums with unit and struct variants — externally tagged, matching
//!   serde's default (`"Variant"` / `{"Variant": {...}}`)
//!
//! The parser walks raw token trees (no `syn`/`quote` available offline)
//! and the generated code is built as a string and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
    skip: bool,
    with: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

enum Body {
    Unit,
    Newtype,
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde stub derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde stub derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_struct = true;
    let mut name = String::new();

    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    is_struct = s == "struct";
                    name = match &tokens[i + 1] {
                        TokenTree::Ident(n) => n.to_string(),
                        t => panic!("serde stub derive: expected type name, got {t}"),
                    };
                    i += 2;
                    break;
                }
                i += 1; // visibility or other modifier
            }
            _ => i += 1, // e.g. the (crate) part of pub(crate)
        }
    }
    assert!(!name.is_empty(), "serde stub derive: no struct/enum found");

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported");
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_struct {
                Body::Struct(parse_fields(g.stream()))
            } else {
                Body::Enum(parse_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            match count_top_level_fields(g.stream()) {
                1 => Body::Newtype,
                n => panic!("serde stub derive: tuple struct with {n} fields unsupported"),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
        other => panic!("serde stub derive: unexpected item body {other:?}"),
    };

    Input { name, body }
}

/// Number of comma-separated items at angle-bracket depth zero.
fn count_top_level_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    let mut last_was_comma = false;
    for t in ts {
        saw_any = true;
        last_was_comma = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if saw_any && !last_was_comma {
        fields += 1;
    }
    fields
}

fn parse_fields(ts: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();

    while i < tokens.len() {
        let mut field = Field {
            name: String::new(),
            default: false,
            skip: false,
            with: None,
        };

        // Attributes (including doc comments).
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                apply_serde_attr(g.stream(), &mut field);
            }
            i += 2;
        }

        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }

        field.name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde stub derive: expected field name, got {t}"),
        };
        i += 2; // name + ':'

        // Skip the type: consume to the next comma at angle depth zero.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }

        out.push(field);
    }
    out
}

/// If the attribute token stream is `serde(...)`, records the options this
/// stub understands onto `field`.
fn apply_serde_attr(ts: TokenStream, field: &mut Field) {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };

    let mut current: Vec<TokenTree> = Vec::new();
    let mut segments: Vec<Vec<TokenTree>> = Vec::new();
    for t in inner {
        if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
            segments.push(std::mem::take(&mut current));
        } else {
            current.push(t);
        }
    }
    if !current.is_empty() {
        segments.push(current);
    }

    for seg in segments {
        let key = match seg.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue,
        };
        match key.as_str() {
            "default" => field.default = true,
            "skip" | "skip_serializing" | "skip_deserializing" => field.skip = true,
            "with" => {
                for t in &seg {
                    if let TokenTree::Literal(lit) = t {
                        let s = lit.to_string();
                        field.with = Some(s.trim_matches('"').to_string());
                    }
                }
            }
            other => panic!("serde stub derive: unsupported attribute `{other}`"),
        }
    }
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();

    while i < tokens.len() {
        // Attributes / doc comments.
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde stub derive: expected variant name, got {t}"),
        };
        i += 1;

        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde stub derive: tuple enum variants unsupported ({name})");
            }
            _ => None,
        };

        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        out.push(Variant { name, fields });
    }
    out
}

// ---------------------------------------------------------------- codegen

fn field_to_value_expr(receiver: &str, field: &Field) -> String {
    match &field.with {
        Some(path) => format!(
            "::serde::__private::expect_with_value({path}::serialize(&{receiver}, \
             ::serde::__private::ValueSerializer))"
        ),
        None => format!("::serde::Serialize::to_value(&{receiver})"),
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(fields) => {
            let mut s = String::from(
                "let mut entries: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let value = field_to_value_expr(&format!("self.{}", f.name), f);
                s.push_str(&format!(
                    "entries.push((::serde::Value::Str(::std::string::String::from(\"{n}\")), \
                     {value}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Map(entries)");
            s
        }
        Body::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                match &v.fields {
                    None => s.push_str(&format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let bindings: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{v} {{ {pat} }} => {{\n\
                             let mut entries: ::std::vec::Vec<(::serde::Value, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n",
                            v = v.name,
                            pat = bindings.join(", ")
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            let value = field_to_value_expr(f.name.as_str(), f);
                            arm.push_str(&format!(
                                "entries.push((::serde::Value::Str(\
                                 ::std::string::String::from(\"{n}\")), {value}));\n",
                                n = f.name
                            ));
                        }
                        arm.push_str(&format!(
                            "let mut outer: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                             outer.push((::serde::Value::Str(::std::string::String::from(\
                             \"{v}\")), ::serde::Value::Map(entries)));\n\
                             ::serde::Value::Map(outer)\n}},\n",
                            v = v.name
                        ));
                        s.push_str(&arm);
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_from_value_expr(ty_name: &str, field: &Field) -> String {
    if field.skip {
        return "::std::default::Default::default()".to_string();
    }
    let fetch = format!("::serde::__private::map_get(entries, \"{}\")", field.name);
    let decode = match &field.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::__private::ValueDeserializer::new(\
             ::std::clone::Clone::clone(fv)))?"
        ),
        None => "::serde::Deserialize::from_value(fv)?".to_string(),
    };
    let missing = if field.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::msg(\
             \"{ty_name}: missing field `{n}`\"))",
            n = field.name
        )
    };
    format!(
        "match {fetch} {{\n\
         ::std::option::Option::Some(fv) => {decode},\n\
         ::std::option::Option::None => {missing},\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let (param, body) = match &input.body {
        Body::Unit => (
            "_value",
            format!("::std::result::Result::Ok({name})"),
        ),
        Body::Newtype => (
            "value",
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"),
        ),
        Body::Struct(fields) => {
            let mut s = format!(
                "let entries = value.as_map().ok_or_else(|| \
                 ::serde::DeError::msg(\"{name}: expected map\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!("{n}: {expr},\n", n = f.name, expr = field_from_value_expr(name, f)));
            }
            s.push_str("})");
            ("value", s)
        }
        Body::Enum(variants) => {
            let mut s = String::new();
            let units: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_none()).collect();
            let structs: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_some()).collect();
            if !units.is_empty() {
                s.push_str("if let ::std::option::Option::Some(tag) = value.as_str() {\n");
                for v in &units {
                    s.push_str(&format!(
                        "if tag == \"{v}\" {{ return ::std::result::Result::Ok({name}::{v}); }}\n",
                        v = v.name
                    ));
                }
                s.push_str("}\n");
            }
            if !structs.is_empty() {
                s.push_str(
                    "if let ::std::option::Option::Some((tag, payload)) = \
                     value.as_single_entry() {\n",
                );
                for v in &structs {
                    let fields = v.fields.as_ref().unwrap();
                    s.push_str(&format!(
                        "if tag == \"{v}\" {{\n\
                         let entries = payload.as_map().ok_or_else(|| \
                         ::serde::DeError::msg(\"{name}::{v}: expected map\"))?;\n\
                         return ::std::result::Result::Ok({name}::{v} {{\n",
                        v = v.name
                    ));
                    for f in fields {
                        s.push_str(&format!(
                            "{n}: {expr},\n",
                            n = f.name,
                            expr = field_from_value_expr(name, f)
                        ));
                    }
                    s.push_str("});\n}\n");
                }
                s.push_str("}\n");
            }
            s.push_str(&format!(
                "::std::result::Result::Err(::serde::DeError::msg(\
                 \"{name}: unknown or malformed variant\"))"
            ));
            ("value", s)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value({param}: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
