//! Minimal offline stand-in for `criterion`.
//!
//! Measures mean wall-clock time per iteration with a short warm-up, prints
//! one line per benchmark, and (unlike upstream) can dump every measurement
//! to a JSON file: set `CRITERION_JSON=/path/report.json` before running
//! the bench binary. Statistical machinery (outlier analysis, HTML
//! reports, comparisons) is intentionally absent.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurements recorded by every `bench_function` call in this process.
fn registry() -> &'static Mutex<Vec<(String, f64, Option<f64>)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, f64, Option<f64>)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    /// Floating-point operations per iteration; reported as GFLOP/s and
    /// recorded in the JSON report as a `gflops` field.
    Flops(u64),
}

#[derive(Debug, Clone)]
struct GroupConfig {
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
            throughput: None,
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            config: GroupConfig::default(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(id.into(), &GroupConfig::default(), f);
        self
    }

    /// Called by `criterion_main!` after all groups: writes the JSON report
    /// if `CRITERION_JSON` is set.
    pub fn finalize() {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let results = registry().lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::from("{\n");
        for (i, (name, ns, gflops)) in results.iter().enumerate() {
            let rate = match gflops {
                Some(g) => format!(", \"gflops\": {g:.2}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  \"{}\": {{ \"mean_ns\": {:.1}{} }}{}\n",
                name.replace('"', "'"),
                ns,
                rate,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion stub: failed to write {path}: {e}");
        } else {
            eprintln!("criterion stub: wrote report to {path}");
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.config.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(format!("{}/{}", self.name, id.into()), &self.config, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: String, config: &GroupConfig, mut f: F) {
    let mut bencher = Bencher {
        budget: config.measurement_time,
        min_samples: config.sample_size,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    let mean = bencher.mean_ns;
    let gflops = match config.throughput {
        Some(Throughput::Flops(f)) if mean > 0.0 => Some(f as f64 / mean),
        _ => None,
    };
    registry()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push((id.clone(), mean, gflops));
    let throughput = match config.throughput {
        Some(Throughput::Bytes(b)) if mean > 0.0 => {
            format!(
                "  thrpt: {:>10}/s",
                format_bytes(b as f64 / (mean * 1e-9))
            )
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  thrpt: {:.3e} elem/s", n as f64 / (mean * 1e-9))
        }
        Some(Throughput::Flops(f)) if mean > 0.0 => {
            format!("  thrpt: {:.2} GFLOP/s", f as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{id:<50} time: [{}]  ({} iters){throughput}",
        format_time(mean),
        bencher.iters
    );
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_bytes(bytes_per_s: f64) -> String {
    if bytes_per_s < 1e3 {
        format!("{bytes_per_s:.1} B")
    } else if bytes_per_s < 1e6 {
        format!("{:.1} KiB", bytes_per_s / 1024.0)
    } else if bytes_per_s < 1e9 {
        format!("{:.1} MiB", bytes_per_s / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bytes_per_s / (1024.0 * 1024.0 * 1024.0))
    }
}

pub struct Bencher {
    budget: Duration,
    min_samples: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + per-iteration estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let first = warm_start.elapsed();
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        let budget = self.budget;
        // Aim for at least `min_samples` iterations even if slow, but stop
        // early once the time budget is spent.
        let floor = self.min_samples as u64;
        let start = Instant::now();
        while count < floor || start.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            total += t0.elapsed();
            count += 1;
            if count >= floor && start.elapsed() >= budget {
                break;
            }
            // Hard cap so ultra-fast routines do not spin forever.
            if count >= 1_000_000 {
                break;
            }
        }
        let _ = first;
        self.mean_ns = total.as_secs_f64() * 1e9 / count as f64;
        self.iters = count;
    }

    /// Criterion's batched form: `setup` output feeds each `routine` call;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        let floor = self.min_samples as u64;
        let budget = self.budget;
        let start = Instant::now();
        while count < floor || start.elapsed() < budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
            count += 1;
            if count >= floor && start.elapsed() >= budget {
                break;
            }
            if count >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / count as f64;
        self.iters = count;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .measurement_time(Duration::from_millis(10))
            .sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        let reg = registry().lock().unwrap();
        assert!(reg.iter().any(|(n, _, _)| n == "stub/noop"));
        assert!(reg.iter().any(|(n, _, _)| n == "stub/batched"));
    }
}
