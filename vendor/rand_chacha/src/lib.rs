//! Offline stand-in for `rand_chacha` providing [`ChaCha8Rng`].
//!
//! The keystream is a faithful ChaCha permutation with 8 rounds (IETF
//! constants, 64-bit block counter), so streams have real cryptographic
//! mixing quality and splitting seeds apart cannot alias. Word order and
//! seeding are self-consistent but not bit-compatible with upstream
//! `rand_chacha`; the workspace never asserts golden values.

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key as 8 LE words.
    key: [u32; 8],
    /// 64-bit block counter split into two words.
    counter: u64,
    /// Current output block and read position.
    block: [u32; 16],
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // Column round + diagonal round = one double round; 4 double
            // rounds = ChaCha8.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16, // force refill on first use
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_clonable() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = a.clone();
        for _ in 0..100 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_eq!(v, c.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_looks_mixed() {
        // Crude avalanche check: bit population over many words near half.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }
}
