//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements `RngCore`, `SeedableRng` (with the SplitMix64-based
//! `seed_from_u64` default), and the `Rng` extension trait with the `gen` /
//! `gen_range` forms this workspace uses. Distribution details are
//! self-consistent but not bit-compatible with upstream `rand`; nothing in
//! the workspace asserts golden random values.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// `rand_core` documents for its default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $u % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i64 => u64, i32 => u32, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    pub use super::*;
}

pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn unit_samples_in_range() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
