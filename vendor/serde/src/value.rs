//! The owned data-model tree and its serializer/deserializer backends.

use crate::de::DeError;
use crate::{Deserializer, Serializer};

/// Owned data-model value: the stub's equivalent of serde's streaming data
/// model. Maps preserve insertion order and allow arbitrary keys (formats
/// may restrict them; JSON requires string keys).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// For externally-tagged enum variants: a one-entry map with a string
    /// key yields `(tag, payload)`.
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Value::Str(tag), payload) => Some((tag, payload)),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Serializer backend that just hands the rendered [`Value`] back.
/// Used by `#[serde(with = ...)]` modules in derive-generated code.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;

    fn collect_value(self, value: Value) -> Result<Value, DeError> {
        Ok(value)
    }
}

/// Deserializer backend over an owned [`Value`].
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.value)
    }
}
