//! Serialization error plumbing.

use std::fmt;

/// Mirror of `serde::ser::Error`.
pub trait Error: Sized {
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

impl Error for crate::DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        <crate::DeError as crate::de::Error>::custom(msg)
    }
}
