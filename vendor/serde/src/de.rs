//! Deserialization error plumbing.

use std::fmt;

/// Mirror of `serde::de::Error`: formats backing every deserializer error
/// can be built from a display message.
pub trait Error: Sized {
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// The concrete error type used by [`crate::Deserialize::from_value`] and
/// the [`crate::value`] backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message (convenience for generated code).
    pub fn msg(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
