//! `Serialize`/`Deserialize` implementations for primitives and common std
//! containers, mirroring serde's std coverage where the workspace needs it.

use crate::de::DeError;
use crate::{Deserialize, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v = value
                    .as_u64()
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v = value
                    .as_i64()
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // null <-> non-finite mirrors serde_json's lossy float handling.
        if value.is_null() {
            return Ok(f32::NAN);
        }
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::msg("expected f32"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            return Ok(f64::NAN);
        }
        value.as_f64().ok_or_else(|| DeError::msg("expected f64"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::msg("expected bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value.as_str().ok_or_else(|| DeError::msg("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Arc::new)
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| DeError::msg("expected tuple sequence"))?;
                if items.len() != $len {
                    return Err(DeError::msg("tuple length mismatch"));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Map(entries.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::msg("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::msg("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let xs = vec![(1usize, 2.5f64), (3, 4.5)];
        let back: Vec<(usize, f64)> = Vec::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);

        let opt: Option<f32> = None;
        assert!(Option::<f32>::from_value(&opt.to_value()).unwrap().is_none());

        let arc = Arc::new(vec![1u32, 2, 3]);
        let back: Arc<Vec<u32>> = Arc::from_value(&arc.to_value()).unwrap();
        assert_eq!(*back, *arc);
    }
}
