//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based streaming data model, this stub routes
//! everything through an owned [`Value`] tree: `Serialize` renders a value
//! into a [`Value`], `Deserialize` rebuilds it from one, and formats
//! (`serde_json`) convert between `Value` and text. The public trait
//! surface (`Serialize`, `Deserialize`, `Serializer`, `Deserializer`, the
//! derive macros, `#[serde(...)]` attributes used in this workspace) keeps
//! serde's shapes so crate code is source-compatible with the real thing.

pub mod de;
pub mod ser;
pub mod value;

mod impls;

pub use de::DeError;
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as an owned [`Value`] tree.
    fn to_value(&self) -> Value;

    /// Serde-compatible entry point: hands the rendered [`Value`] to the
    /// serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        Self: Sized,
    {
        serializer.collect_value(self.to_value())
    }
}

/// A format backend that consumes one [`Value`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error;

    fn collect_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type rebuildable from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Serde-compatible entry point: pulls a [`Value`] out of the
    /// deserializer and rebuilds `Self` from it.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(<D::Error as de::Error>::custom)
    }
}

/// A format backend that produces one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Support for `#[derive(Serialize, Deserialize)]`-generated code. Not a
/// stable API.
pub mod __private {
    use super::{DeError, Value};

    pub use super::value::{ValueDeserializer, ValueSerializer};

    /// Looks up a string key in a [`Value::Map`] entry list.
    pub fn map_get<'a>(entries: &'a [(Value, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find_map(|(k, v)| match k {
            Value::Str(s) if s == key => Some(v),
            _ => None,
        })
    }

    /// Unwraps the result of a `#[serde(with = ...)]` serialize call made
    /// against [`ValueSerializer`] (which cannot fail in practice).
    pub fn expect_with_value(result: Result<Value, DeError>) -> Value {
        match result {
            Ok(v) => v,
            Err(e) => panic!("with-module serialization failed: {e}"),
        }
    }
}
