//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses:
//! - [`thread::scope`] with crossbeam's closure shape (`spawn(|_| ...)`),
//!   implemented over `std::thread::scope`;
//! - [`channel`]: an unbounded MPMC channel where both [`channel::Sender`]
//!   and [`channel::Receiver`] are `Clone`, with blocking `recv` and a
//!   draining `iter()`.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to [`scope`] closures; mirrors crossbeam's
    /// `Scope` (spawn closures receive `&Scope` so nested spawns work).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned. All spawned threads are joined before this returns. Unlike
    /// crossbeam, a panicking child propagates the panic instead of
    /// surfacing it through the returned `Result` (callers here unwrap the
    /// result either way).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = match self.shared.ready.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator: yields until every sender is dropped and the
        /// queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = vec![1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_fan_in_and_disconnect() {
        let (tx, rx) = crate::channel::unbounded::<usize>();
        crate::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        })
        .unwrap();
    }
}
