//! Minimal offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses with
//! deterministic pseudo-random sampling (seeded from the test's module
//! path + name, so runs are reproducible). Failing cases are reported with
//! the assertion message but are **not shrunk** — if a property fails, the
//! printed inputs are the raw sampled ones.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (a.k.a. `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                // Lighter than upstream's 256: the stub runs without
                // shrinking or forking, and CI machines here are small.
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert*` failure: the property is violated.
        Fail(String),
        /// `prop_assume` rejection: inputs outside the property's domain.
        Reject(String),
    }

    /// Deterministic SplitMix64 stream used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seeds from a test name so each test gets an independent,
        /// stable stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform in [0, 1) with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of sampled values. Unlike upstream proptest there is no
    /// value tree / shrinking: `sample` directly yields a value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Fisher–Yates shuffle of a `Vec`-valued strategy's output.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Regex-shaped string strategies (`s in "[a-z ]{1,120}"`), as in
    /// upstream proptest. Supports the subset of syntax this workspace's
    /// tests use: literal chars, `\t`/`\n`/`\r`/`\\` escapes, the category
    /// escape `\PC` (any non-control scalar), char classes with ranges, and
    /// the quantifiers `*` `+` `?` `{n}` `{n,m}`. Unbounded repeats are
    /// capped at 64 chars.
    impl Strategy for str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    enum RegexAtom {
        Literal(char),
        /// `\PC`: any Unicode scalar outside general category C (controls).
        AnyNonControl,
        /// Inclusive ranges; single chars are degenerate ranges.
        Class(Vec<(char, char)>),
    }

    impl RegexAtom {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                RegexAtom::Literal(c) => *c,
                RegexAtom::AnyNonControl => loop {
                    // Bias toward ASCII so generated strings stay readable,
                    // but keep a real tail of higher scalars.
                    if rng.below(5) < 4 {
                        return char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap();
                    }
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        if !c.is_control() {
                            return c;
                        }
                    }
                },
                RegexAtom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let span = hi as u64 - lo as u64 + 1;
                        if pick < span {
                            return char::from_u32(lo as u32 + pick as u32)
                                .expect("class range crosses surrogates");
                        }
                        pick -= span;
                    }
                    unreachable!()
                }
            }
        }
    }

    fn parse_class_char(chars: &[char], i: &mut usize) -> char {
        let c = chars[*i];
        *i += 1;
        if c != '\\' {
            return c;
        }
        let esc = chars[*i];
        *i += 1;
        match esc {
            't' => '\t',
            'n' => '\n',
            'r' => '\r',
            other => other,
        }
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while chars[i] != ']' {
                        let lo = parse_class_char(&chars, &mut i);
                        if chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = parse_class_char(&chars, &mut i);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    i += 1;
                    RegexAtom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let esc = chars[i];
                    i += 1;
                    match esc {
                        'P' => {
                            assert_eq!(
                                chars[i], 'C',
                                "only the \\PC category escape is supported ({pattern:?})"
                            );
                            i += 1;
                            RegexAtom::AnyNonControl
                        }
                        't' => RegexAtom::Literal('\t'),
                        'n' => RegexAtom::Literal('\n'),
                        'r' => RegexAtom::Literal('\r'),
                        other => RegexAtom::Literal(other),
                    }
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                        "unsupported regex syntax {c:?} in {pattern:?}"
                    );
                    i += 1;
                    RegexAtom::Literal(c)
                }
            };
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0usize, 64usize)
                    }
                    '+' => {
                        i += 1;
                        (1, 64)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        i += 1;
                        let mut lo = 0usize;
                        while chars[i].is_ascii_digit() {
                            lo = lo * 10 + chars[i] as usize - '0' as usize;
                            i += 1;
                        }
                        let hi = if chars[i] == ',' {
                            i += 1;
                            let mut hi = 0usize;
                            while chars[i].is_ascii_digit() {
                                hi = hi * 10 + chars[i] as usize - '0' as usize;
                                i += 1;
                            }
                            hi
                        } else {
                            lo
                        };
                        assert_eq!(chars[i], '}', "unterminated repeat in {pattern:?}");
                        i += 1;
                        (lo, hi)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
        }
        out
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn sample(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Shuffle<S> {
        pub(crate) inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.sample(rng);
            for i in (1..v.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: String,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 10000 samples in a row", self.reason);
        }
    }

    /// Type-erased strategy (upstream's `BoxedStrategy`).
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        pub fn new(arms: Vec<S>) -> Union<S> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_int_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Yields `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod sample {
    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Projects this abstract index into `0..len`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index { raw: rng.next_u64() }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, Any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use test_runner::Config as ProptestConfig;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}\n  {}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{}` != `{}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{}` != `{}`\n  both: {:?}\n  {}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                        let __proptest_case = move || {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __proptest_case()
                    };
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume rejections ({})",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed after {} passing case(s):\n{}",
                                stringify!($name),
                                passed,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(2);
        let strat = (1usize..5, 1usize..5)
            .prop_map(|(a, b)| a * 10 + b)
            .prop_filter("odd", |v| v % 2 == 1);
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v % 2 == 1 && v >= 11 && v <= 44);
        }
        let lens = collection::vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = Strategy::sample(&lens, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_works(a in 0usize..10, b in any::<bool>()) {
            prop_assume!(a > 0);
            prop_assert!(a < 10);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
            let _ = b;
        }
    }
}
