//! Integration across the data / tokenizer / model / comms substrates.

use photon_comms::{compress_f32s, decompress_f32s, Message};
use photon_data::{partition_iid, EvalStream, ShardStream, SyntheticDomain, TokenCorpus};
use photon_data::{Batch, DomainKind};
use photon_nn::{evaluate_perplexity, Activations, Gpt, ModelConfig};
use photon_optim::{AdamW, AdamWConfig, LrSchedule, Optimizer, ScheduleKind};
use photon_tensor::SeedStream;
use photon_tokenizer::{BpeTokenizer, BpeTrainConfig, Tokenizer};

/// A BPE-tokenized synthetic corpus trains a model end to end — the full
/// Data-Source pipeline of §4 (generate text, train tokenizer,
/// pre-tokenize, shard, stream, train, evaluate).
#[test]
fn bpe_corpus_trains_model() {
    let mut rng = SeedStream::new(11);
    let domain = SyntheticDomain::preset(DomainKind::Wiki, &mut rng);
    let train_text = domain.generate(60_000, &mut rng);
    let tokenizer = BpeTokenizer::train(
        &train_text,
        &BpeTrainConfig {
            vocab_size: 320,
            min_pair_freq: 4,
        },
    );
    assert!(tokenizer.merge_count() > 0);

    let mut corpus = TokenCorpus::from_domain(&domain, &tokenizer, 30_000, &mut rng);
    let val = corpus.split_validation(3_000);
    let shards = partition_iid(&corpus, 2, 33, &mut rng);

    let model_cfg = ModelConfig {
        n_layers: 2,
        d_model: 32,
        n_heads: 2,
        exp_ratio: 2,
        vocab_size: tokenizer.vocab_size(),
        seq_len: 32,
    };
    let mut model = Gpt::new(model_cfg, &mut rng);
    let mut opt = AdamW::new(AdamWConfig::default(), model.param_count());
    let schedule = LrSchedule::new(ScheduleKind::Cosine, 3e-3, 3e-4, 10, 400);
    let mut stream = ShardStream::new(shards[0].clone(), rng.split("train"));
    let mut acts = Activations::new(&model_cfg, 8, 32);
    let mut grads = model.grad_buffer();
    let mut batch = Batch::zeros(8, 32);

    use photon_data::TokenStream;
    let mut eval_stream = EvalStream::new(&val, 32);
    let before = evaluate_perplexity(&model, &mut eval_stream, 16).perplexity;
    for step in 0..120u64 {
        stream.next_batch(&mut batch);
        grads.iter_mut().for_each(|g| *g = 0.0);
        model.forward(&batch.inputs, Some(&batch.targets), &mut acts);
        model.backward(&batch.inputs, &batch.targets, &mut acts, &mut grads);
        photon_optim::clip_global_norm(&mut grads, 1.0);
        opt.step(model.params_mut(), &grads, schedule.lr_at(step));
    }
    let after = evaluate_perplexity(&model, &mut eval_stream, 16).perplexity;
    assert!(
        after < before * 0.5,
        "BPE pipeline failed to learn: {before} -> {after}"
    );
}

/// Real model parameters survive the complete Link round trip:
/// compress -> frame -> decode -> decompress, bit for bit.
#[test]
fn model_params_roundtrip_the_wire() {
    let mut rng = SeedStream::new(3);
    let model = Gpt::new(ModelConfig::proxy_tiny(), &mut rng);
    let params = model.params().to_vec();

    // Raw compression round trip.
    let compressed = compress_f32s(&params);
    assert_eq!(decompress_f32s(compressed.clone()).unwrap(), params);

    // Full message round trip, both compressed and plain.
    for compress in [false, true] {
        let msg = Message::ModelBroadcast {
            round: 9,
            params: params.clone(),
        };
        let frame = msg.to_frame(compress);
        match Message::from_frame(frame).unwrap() {
            Message::ModelBroadcast { round, params: got } => {
                assert_eq!(round, 9);
                assert_eq!(got, params);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }
}

/// Trained-model payloads and their pseudo-gradients frame correctly at
/// federation scale, and corruption anywhere in the frame is caught.
#[test]
fn corruption_is_caught_across_the_frame() {
    let mut rng = SeedStream::new(5);
    let model = Gpt::new(ModelConfig::proxy_tiny(), &mut rng);
    let msg = Message::ClientResult {
        round: 1,
        client_id: 3,
        delta: model.params().iter().map(|p| p * 1e-2).collect(),
        weight: 1.0,
        metrics: Default::default(),
    };
    let frame = msg.to_frame(true).to_vec();
    let mut corrupted_detected = 0;
    let step = (frame.len() / 23).max(1);
    let mut positions = Vec::new();
    let mut i = 24; // skip the header magic/version (tested elsewhere)
    while i < frame.len() {
        positions.push(i);
        i += step;
    }
    for &pos in &positions {
        let mut bad = frame.clone();
        bad[pos] ^= 0x10;
        if Message::from_frame(bytes::Bytes::from(bad)).is_err() {
            corrupted_detected += 1;
        }
    }
    assert_eq!(
        corrupted_detected,
        positions.len(),
        "some corruptions slipped through"
    );
}

/// The cluster heuristics agree with the nn crate's memory accounting for
/// every paper model on the paper's actual hardware inventory.
#[test]
fn strategy_selection_is_consistent_with_memory_model() {
    use photon_cluster::{autotune_batch, paper_silos, select_strategy, training_bytes};
    for (label, cfg) in [
        ("125M", ModelConfig::paper_125m()),
        ("1B", ModelConfig::paper_1_3b()),
        ("3B", ModelConfig::paper_3b()),
        ("7B", ModelConfig::paper_7b()),
    ] {
        for silo in paper_silos(label) {
            let strategy = select_strategy(&cfg, &silo);
            let tune = autotune_batch(&cfg, silo.gpu(), strategy, 64);
            assert!(
                tune.is_viable(),
                "{label} on {} has no viable batch",
                silo.name
            );
            // The tuned configuration must actually fit.
            let shard_ways = match strategy {
                photon_cluster::TrainingStrategy::Fsdp { n_gpus } => n_gpus,
                _ => 1,
            };
            let mem = training_bytes(&cfg, tune.per_gpu_batch, shard_ways, tune.activation_ckpt);
            assert!(
                mem.total() <= silo.gpu().vram_bytes(),
                "{label} on {}: {} bytes over budget",
                silo.name,
                mem.total()
            );
        }
    }
}
