//! The §5.1 claim "our system could train any LLM architecture": the same
//! federation engine trains both the ALiBi (MPT-style) and
//! learned-positions (GPT-2-style) variants end to end.

use photon_core::experiments::{build_iid_federation, run_federation, RunOptions};
use photon_nn::PosEncoding;
use photon_tests::tiny_federation;

fn run(positions: PosEncoding) -> (f64, usize) {
    let mut cfg = tiny_federation(2);
    cfg.positions = positions;
    cfg.seed = 88;
    let (mut fed, val) = build_iid_federation(&cfg, 4_000).unwrap();
    let opts = RunOptions {
        rounds: 6,
        eval_every: 6,
        eval_windows: 16,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    (history.final_ppl().unwrap(), fed.aggregator.params().len())
}

#[test]
fn both_positional_schemes_train_federated() {
    let (alibi_ppl, alibi_params) = run(PosEncoding::Alibi);
    let (learned_ppl, learned_params) = run(PosEncoding::Learned);
    // Learned positions add a (seq, d) table.
    assert_eq!(
        learned_params - alibi_params,
        16 * 16, // tests::tiny_model: seq_len * d_model
    );
    // Both descend well below the ~257 random-model perplexity within
    // six tiny warm-up rounds.
    assert!(alibi_ppl < 150.0, "{alibi_ppl}");
    assert!(learned_ppl < 150.0, "{learned_ppl}");
}

#[test]
fn learned_positions_survive_checkpoint_roundtrip() {
    use photon_core::{load_checkpoint, save_checkpoint, Aggregator};
    let dir = std::env::temp_dir().join("photon-posenc-ckpt");
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = tiny_federation(2);
    cfg.positions = PosEncoding::Learned;
    let (mut fed, _val) = build_iid_federation(&cfg, 4_000).unwrap();
    fed.aggregator.run_round(&mut fed.clients).unwrap();
    save_checkpoint(&dir, &cfg, 1, fed.aggregator.params()).unwrap();

    let (manifest, params) = load_checkpoint(&dir).unwrap();
    assert_eq!(manifest.config.positions, PosEncoding::Learned);
    // from_params infers the scheme from the parameter count.
    let model = photon_nn::Gpt::from_params(manifest.config.model, params.clone());
    assert_eq!(model.pos_encoding(), PosEncoding::Learned);
    // A restored aggregator keeps training.
    let mut revived = Aggregator::new(manifest.config).unwrap();
    revived.restore(manifest.round, params).unwrap();
    fed.aggregator = revived;
    fed.aggregator.run_round(&mut fed.clients).unwrap();
}
