//! Shared helpers for the Photon-RS cross-crate integration tests.

use photon_core::FederationConfig;
use photon_nn::ModelConfig;

/// A one-layer model small enough for sub-second integration tests.
pub fn tiny_model() -> ModelConfig {
    ModelConfig {
        n_layers: 1,
        d_model: 16,
        n_heads: 2,
        exp_ratio: 2,
        vocab_size: 257,
        seq_len: 16,
    }
}

/// A fast federation configuration over [`tiny_model`].
pub fn tiny_federation(n_clients: usize) -> FederationConfig {
    let mut cfg = FederationConfig::quick_demo(tiny_model(), n_clients);
    cfg.local_steps = 4;
    cfg.local_batch = 2;
    cfg
}
