//! Hierarchical aggregation at registry scale: a run with 10^5 registered
//! clients and a 10^3-client sampled cohort over the sub-aggregator shard
//! tree must complete with the streaming merge's residency bound intact, a
//! mid-run `shardcrash` must degrade only that shard (final loss within
//! 10% of the fault-free run, zero rollbacks) with its orphans re-parented
//! the next round, and the whole faulted run must replay bit-identically —
//! trace included — under the sim clock.

use photon_core::{
    Aggregator, CohortSpec, DataSource, FaultInjector, FaultSpec, Federation, FederationConfig,
    HierarchyConfig, LlmClient, MembershipConfig, TrainingHistory,
};
use photon_data::Shard;
use photon_nn::ModelConfig;
use photon_tensor::SeedStream;
use photon_tokenizer::TokenId;
use photon_trace::{ClockMode, TraceConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

const REGISTERED: usize = 100_000;
const SAMPLED: usize = 1_000;
const SHARDS: usize = 8;
const MAX_RESIDENT: usize = 16;
const ROUNDS: u64 = 3;

/// The smallest model the stack trains: at 10^5 provisioned clients the
/// registry and tree are the subject under test, not the math.
fn nano_model() -> ModelConfig {
    ModelConfig {
        n_layers: 1,
        d_model: 8,
        n_heads: 1,
        exp_ratio: 2,
        vocab_size: 257,
        seq_len: 8,
    }
}

fn scale_cfg(registered: usize, sampled: usize) -> FederationConfig {
    let mut cfg = FederationConfig::quick_demo(nano_model(), registered);
    cfg.cohort = CohortSpec::Sample { k: sampled };
    cfg.local_steps = 1;
    cfg.local_batch = 1;
    cfg.seed = 61;
    cfg.allow_partial_results = true;
    cfg.membership = Some(MembershipConfig::default());
    cfg.hierarchy = Some(HierarchyConfig {
        shards: SHARDS,
        shard_quorum_frac: 0.5,
        max_resident: MAX_RESIDENT,
    });
    cfg
}

/// Provisions `registered` clients as views into one shared token buffer:
/// each client's shard is a 64-token window into the same `Arc`, so the
/// whole 10^5-client roster costs megabytes, not gigabytes.
fn scale_federation(cfg: &FederationConfig) -> Federation {
    let mut rng = SeedStream::new(cfg.seed);
    let mut data_rng = rng.split("data");
    let tokens: Arc<Vec<TokenId>> = Arc::new(
        (0..4096)
            .map(|_| (data_rng.next_below(257)) as TokenId)
            .collect(),
    );
    const WINDOW: usize = 64;
    let span = tokens.len() - WINDOW;
    let clients = (0..cfg.population)
        .map(|i| {
            let start = (i * 31) % span;
            let shard = Shard::from_range(
                format!("scale-{i}"),
                Arc::clone(&tokens),
                start,
                start + WINDOW,
            );
            LlmClient::new(
                i as u32,
                DataSource::new(format!("ds-{i}"), shard),
                None,
                rng.split(&format!("client-{i}")),
            )
        })
        .collect();
    Federation {
        aggregator: Aggregator::new(cfg.clone()).expect("config validates"),
        clients,
        joiner_tokens: WINDOW,
    }
}

/// A shard-2 crash in round 1, on the salted shard fault columns.
fn crash_spec() -> FaultSpec {
    FaultSpec {
        shards: SHARDS,
        targeted_shardcrashes: vec![(1, 2)],
        ..FaultSpec::none(23)
    }
}

fn run(cfg: &FederationConfig, spec: &FaultSpec) -> (Federation, TrainingHistory) {
    let inj = FaultInjector::from_spec(spec, cfg.population, ROUNDS);
    let mut fed = scale_federation(cfg);
    let mut history = TrainingHistory::new();
    for _ in 0..ROUNDS {
        history.push(fed.run_round_with(Some(&inj)).expect("round completes"));
    }
    (fed, history)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("photon-hier-scale-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

#[test]
fn shard_crash_at_registry_scale_degrades_one_shard_and_replays_bit_identically() {
    let cfg = scale_cfg(REGISTERED, SAMPLED);
    let dir = tmp_dir("e2e");

    // Faulted run A, traced under the sim clock.
    let trace_a = dir.join("run-a.jsonl");
    photon_trace::reset_for_tests();
    photon_trace::init(TraceConfig {
        jsonl: Some(trace_a.clone()),
        prometheus: None,
        kernel_events: false,
        clock: ClockMode::Sim,
    })
    .expect("tracing initializes");
    let (fed_a, hist_a) = run(&cfg, &crash_spec());
    photon_trace::flush().expect("trace flushes");

    // Identical faulted run B.
    let trace_b = dir.join("run-b.jsonl");
    photon_trace::reset_for_tests();
    photon_trace::init(TraceConfig {
        jsonl: Some(trace_b.clone()),
        prometheus: None,
        kernel_events: false,
        clock: ClockMode::Sim,
    })
    .expect("tracing initializes");
    let (fed_b, hist_b) = run(&cfg, &crash_spec());
    photon_trace::flush().expect("trace flushes");
    photon_trace::reset_for_tests();

    // Bit-identical replay: parameters, history, and the trace bytes.
    assert_eq!(
        fed_a.aggregator.params(),
        fed_b.aggregator.params(),
        "faulted scale run must replay bit-identically"
    );
    assert_eq!(hist_a, hist_b);
    let bytes_a = fs::read(&trace_a).expect("trace A written");
    let bytes_b = fs::read(&trace_b).expect("trace B written");
    assert!(!bytes_a.is_empty(), "sim-clock trace must record events");
    assert_eq!(bytes_a, bytes_b, "sim-clock traces must be byte-identical");

    // Every round ran the full sampled cohort over the shard tree within
    // the streaming residency bound.
    for r in &hist_a.rounds {
        assert_eq!(r.cohort.len(), SAMPLED, "round {} cohort", r.round);
        // `shards` reports the live tree width: the full tree until the
        // round-1 crash, one fewer from round 2 on.
        let live = if r.round >= 2 { SHARDS - 1 } else { SHARDS };
        assert_eq!(r.shards, live, "round {} tree width", r.round);
        assert!(
            r.peak_resident > 0 && r.peak_resident <= MAX_RESIDENT,
            "round {}: peak resident {} outside (0, {MAX_RESIDENT}]",
            r.round,
            r.peak_resident
        );
        assert!(r.mean_client_loss.is_finite());
        assert!(!r.neutralized, "no watchdog rollback may fire");
    }

    // Round 1: the pinned shardcrash fires and degrades only that shard —
    // the round still commits (not globally degraded) off the surviving
    // shards' aggregates.
    let r1 = &hist_a.rounds[1];
    assert_eq!(r1.shard_crashes, 1, "the pinned shardcrash must fire");
    assert_eq!(r1.shard_hangs, 0);
    assert!(
        !r1.degraded,
        "one dead shard of {SHARDS} must not degrade the whole round"
    );

    // Round 2: the dead shard's orphans re-parent onto live siblings.
    let r2 = &hist_a.rounds[2];
    assert!(
        r2.reparented > 0,
        "round 2 must foster the dead shard's clients"
    );
    assert_eq!(r2.shard_crashes, 0);

    // Zero rollbacks end to end.
    let counters = fed_a.aggregator.telemetry().fault_counters();
    assert_eq!(counters.rollbacks, 0, "a shard crash is never a rollback");
    assert_eq!(counters.shard_crashes, 1);
    assert!(counters.reparented > 0);

    // The crash costs one shard's slice for one round; the final loss must
    // stay within 10% of the fault-free trajectory.
    let quiet = FaultSpec::none(23);
    let (_, hist_q) = run(&cfg, &quiet);
    let faulted_loss = hist_a.rounds.last().unwrap().mean_client_loss;
    let quiet_loss = hist_q.rounds.last().unwrap().mean_client_loss;
    let rel = (faulted_loss - quiet_loss).abs() / quiet_loss;
    assert!(
        rel < 0.10,
        "faulted loss {faulted_loss} strays {rel:.3} from fault-free {quiet_loss}"
    );
    // Fault-free rounds route without fostering.
    assert!(hist_q.rounds.iter().all(|r| r.reparented == 0));

    let _ = fs::remove_dir_all(&dir);
}

/// Peak RSS high-water mark of this process, in MiB.
fn peak_rss_mb() -> u64 {
    let status = fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().strip_suffix("kB"))
        .and_then(|l| l.trim().parse::<u64>().ok())
        .map_or(0, |kb| kb / 1024)
}

/// The scale suite behind CI's `scale-suite` job: round latency and peak
/// RSS at 10^3 / 10^4 / 10^5 registered clients with a fixed sampled
/// cohort, written to `BENCH_scale.json`. Round cost must track the
/// *active* cohort, not the registry — sub-linear in registered count —
/// and RSS must stay bounded.
#[test]
#[ignore = "scale suite: run with --release -- --ignored"]
fn scale_bench_emits_bench_json() {
    const BENCH_SAMPLED: usize = 256;
    const BENCH_ROUNDS: u64 = 2;
    let sizes = [1_000usize, 10_000, 100_000];
    let mut entries = Vec::new();
    for &registered in &sizes {
        let cfg = scale_cfg(registered, BENCH_SAMPLED);
        let inj = FaultInjector::from_spec(&FaultSpec::none(23), cfg.population, BENCH_ROUNDS);
        let mut fed = scale_federation(&cfg);
        let mut round_ms = Vec::new();
        let mut peak_resident = 0usize;
        for _ in 0..BENCH_ROUNDS {
            let t = std::time::Instant::now();
            let record = fed.run_round_with(Some(&inj)).expect("round completes");
            round_ms.push(t.elapsed().as_secs_f64() * 1e3);
            peak_resident = peak_resident.max(record.peak_resident);
        }
        let mean_ms = round_ms.iter().sum::<f64>() / round_ms.len() as f64;
        assert!(
            peak_resident > 0 && peak_resident <= MAX_RESIDENT,
            "residency bound violated at {registered} registered"
        );
        entries.push((registered, mean_ms, peak_rss_mb(), peak_resident));
    }

    let lat_small = entries[0].1;
    let lat_large = entries[entries.len() - 1].1;
    let registered_growth = sizes[sizes.len() - 1] as f64 / sizes[0] as f64;
    let latency_growth = lat_large / lat_small;
    assert!(
        latency_growth < registered_growth / 2.0,
        "round latency grew {latency_growth:.1}x over a {registered_growth:.0}x \
         registry increase — round cost is not O(active)"
    );
    let rss = entries.last().unwrap().2;
    assert!(rss < 4096, "peak RSS {rss} MiB exceeds the 4 GiB bound");

    let rows: Vec<String> = entries
        .iter()
        .map(|(n, ms, rss, resident)| {
            format!(
                "    {{\"registered\": {n}, \"sampled\": {BENCH_SAMPLED}, \
                 \"mean_round_ms\": {ms:.1}, \"peak_rss_mb\": {rss}, \
                 \"peak_resident\": {resident}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"suite\": \"hierarchy_scale\",\n  \"shards\": {SHARDS},\n  \
         \"max_resident\": {MAX_RESIDENT},\n  \"rounds_per_size\": {BENCH_ROUNDS},\n  \
         \"entries\": [\n{}\n  ],\n  \"registered_growth\": {registered_growth:.0},\n  \
         \"latency_growth\": {latency_growth:.2}\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("BENCH_SCALE_OUT")
        .unwrap_or_else(|_| format!("{}/../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));
    fs::write(&out, json).expect("BENCH_scale.json written");
}
