//! End-to-end observability: a seeded chaos run with every sink enabled
//! must produce a line-parseable JSONL trace, a lint-clean Prometheus
//! snapshot and a phase profile whose group shares sum to ~100% with
//! nonzero compute/comms/aggregation buckets; the JSONL trace must replay
//! byte-identically for a fixed seed; and a watchdog rollback must leave
//! `rounds_committed` strictly behind `rounds_seen` (the overcounting
//! regression).

use photon_core::experiments::{build_iid_federation, RunOptions};
use photon_core::{run_training, FaultInjector, FaultSpec, TrainingOptions};
use photon_tests::tiny_federation;
use photon_trace::{ClockMode, Phase, PhaseGroup, TraceConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The trace recorder is process-global; every test that touches it runs
/// under this lock and resets it afterwards.
static RECORDER: Mutex<()> = Mutex::new(());

const ROUNDS: u64 = 4;
const TOKENS: usize = 3_000;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("photon-obs-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// A short faulted run: crashes, corrupt frames and a straggler over a
/// 3-client federation with partial results allowed.
fn chaos_run(dir: &Path, metrics_json: Option<PathBuf>) -> photon_core::TrainingOutcome {
    let mut cfg = tiny_federation(3);
    cfg.seed = 29;
    cfg.allow_partial_results = true;
    let spec = FaultSpec::parse("crash=0.2,corrupt=0.3,straggle=0.2,straggle-ms=400,seed=9")
        .expect("fault spec parses");
    let injector = FaultInjector::from_spec(&spec, cfg.population, ROUNDS);
    let opts = TrainingOptions {
        run: RunOptions {
            rounds: ROUNDS,
            eval_every: 2,
            eval_windows: 4,
            stop_below: None,
        },
        checkpoint_dir: Some(dir.join("ckpt")),
        checkpoint_every: 2,
        recovery_budget: 2,
        resume: false,
        metrics_json,
    };
    run_training(
        || build_iid_federation(&cfg, TOKENS),
        &opts,
        Some(&injector),
    )
    .expect("chaos run completes")
}

#[test]
fn chaos_trace_sinks_parse_lint_and_profile() {
    let _guard = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    photon_trace::reset_for_tests();
    let dir = tmp_dir("sinks");
    let jsonl = dir.join("trace.jsonl");
    let prom = dir.join("metrics.prom");
    let mjson = dir.join("metrics.json");
    photon_trace::init(TraceConfig {
        jsonl: Some(jsonl.clone()),
        prometheus: Some(prom.clone()),
        kernel_events: false,
        clock: ClockMode::Sim,
    })
    .expect("tracing initializes");

    let outcome = chaos_run(&dir, Some(mjson.clone()));
    let summary = photon_trace::flush().expect("final flush succeeds");

    // Every JSONL line is standalone valid JSON with the chrome://tracing
    // core fields.
    let trace = fs::read_to_string(&jsonl).expect("trace file exists");
    let mut lines = 0usize;
    for line in trace.lines() {
        let value = serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        let obj = format!("{value:?}");
        for field in ["name", "ph", "ts", "pid", "tid"] {
            assert!(obj.contains(field), "trace line misses {field:?}: {line}");
        }
        lines += 1;
    }
    assert!(
        lines > 10,
        "expected a substantial trace, got {lines} lines"
    );
    assert_eq!(summary.events_dropped, 0, "ring buffer overflowed");

    // The Prometheus snapshot passes the format lint and carries the
    // committed-round gauge.
    let prom_text = fs::read_to_string(&prom).expect("prom file exists");
    photon_trace::lint_prometheus(&prom_text).expect("prometheus snapshot lints");
    assert!(prom_text.contains("photon_gauge{name=\"rounds_committed\"}"));

    // Phase profile: group shares sum to ~100% with nonzero
    // compute/comms/aggregation buckets.
    let total: f64 = PhaseGroup::ALL
        .iter()
        .map(|&g| summary.profile.group_fraction(g))
        .sum();
    assert!((total - 1.0).abs() < 1e-9, "group shares sum to {total}");
    for group in [
        PhaseGroup::Compute,
        PhaseGroup::Comms,
        PhaseGroup::Aggregation,
    ] {
        assert!(
            summary.profile.group_fraction(group) > 0.0,
            "{group:?} bucket is empty"
        );
    }
    assert!(
        summary
            .profile
            .get(Phase::Round)
            .is_some_and(|s| s.count == ROUNDS),
        "expected one round span per round"
    );

    // The live metrics JSON is valid JSON and carries the satellite
    // fields.
    let metrics = fs::read_to_string(&mjson).expect("metrics json exists");
    serde_json::from_str_value(&metrics).expect("metrics json parses");
    for field in [
        "\"compute_threads\"",
        "\"participation_skew\"",
        "\"rounds_committed\"",
        "\"fault_counters\"",
    ] {
        assert!(metrics.contains(field), "metrics json misses {field}");
    }
    assert!(outcome.history.rounds.len() == ROUNDS as usize);

    photon_trace::reset_for_tests();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn same_seed_chaos_traces_are_byte_identical() {
    let _guard = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    let mut traces = Vec::new();
    for run in 0..2 {
        photon_trace::reset_for_tests();
        let dir = tmp_dir(&format!("identical-{run}"));
        let jsonl = dir.join("trace.jsonl");
        photon_trace::init(TraceConfig {
            jsonl: Some(jsonl.clone()),
            prometheus: None,
            kernel_events: false,
            clock: ClockMode::Sim,
        })
        .expect("tracing initializes");
        chaos_run(&dir, None);
        photon_trace::flush().expect("final flush succeeds");
        photon_trace::reset_for_tests();
        traces.push(fs::read_to_string(&jsonl).expect("trace file exists"));
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(!traces[0].is_empty());
    assert_eq!(traces[0], traces[1], "same-seed traces differ");
}

#[test]
fn watchdog_rollback_does_not_overcount_committed_rounds() {
    let _guard = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    photon_trace::reset_for_tests();
    let dir = tmp_dir("rollback-count");
    let rounds = 5u64;
    // One all-NaN update under plain mean aggregation: the watchdog's
    // non-finite check fires at round 2, rolls back and neutralizes it.
    let mut cfg = tiny_federation(3);
    cfg.seed = 17;
    let spec = FaultSpec::parse("nan-update@r2c0,seed=5").expect("fault spec parses");
    let injector = FaultInjector::from_spec(&spec, cfg.population, rounds);
    let opts = TrainingOptions {
        run: RunOptions {
            rounds,
            eval_every: 0,
            eval_windows: 4,
            stop_below: None,
        },
        checkpoint_dir: Some(dir.join("ckpt")),
        checkpoint_every: 1,
        recovery_budget: 2,
        resume: false,
        metrics_json: None,
    };
    let outcome = run_training(
        || build_iid_federation(&cfg, TOKENS),
        &opts,
        Some(&injector),
    )
    .expect("run completes through the rollback");
    assert_eq!(outcome.rollbacks, 1, "expected exactly one rollback");
    let telemetry = outcome.federation.aggregator.telemetry();
    assert_eq!(telemetry.rounds_seen(), rounds);
    // The regression: the neutralized round is seen but never committed.
    assert_eq!(telemetry.rounds_committed(), rounds - 1);
    let _ = fs::remove_dir_all(&dir);
}
