//! Checkpoint cross-version matrix: every on-disk format the project
//! ever wrote — v1 (bare manifest), v2 (+ server optimizer state),
//! v3 (+ elastic membership), v4 (+ storage dtype) — must restore into
//! the *current* aggregator and keep training. Older formats are
//! reconstructed by downgrading a freshly saved checkpoint the same way
//! the historical writers shaped them: dropping the fields (and side
//! files) that did not exist yet.

use photon_core::experiments::build_iid_federation;
use photon_core::{
    load_checkpoint, load_elastic_state, load_server_opt_state, save_checkpoint_full, ElasticState,
    MembershipConfig, MembershipRegistry, CHECKPOINT_FORMAT_VERSION,
};
use photon_tests::tiny_federation;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("photon-ckpt-matrix").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Rewrites `manifest.json` as an older writer would have produced it:
/// top-level `drop` fields removed, `format_version` forced to
/// `version` (or removed entirely for v1, which predates the field).
///
/// Only top-level manifest lines (`  "key": ...` at depth one) are
/// touched — the nested `config` object keeps every field, exactly like
/// a real old manifest whose config schema the current reader fills in
/// via serde defaults.
fn downgrade_manifest(dir: &Path, version: u32, drop: &[&str]) {
    let path = dir.join("manifest.json");
    let mut lines: Vec<String> = fs::read_to_string(&path)
        .unwrap()
        .lines()
        .filter(|line| {
            !drop
                .iter()
                .any(|key| line.starts_with(&format!("  \"{key}\"")))
        })
        .map(|line| {
            if line.starts_with("  \"format_version\"") {
                format!("  \"format_version\": {version},")
            } else {
                line.to_string()
            }
        })
        .collect();
    // The dropped fields were at the tail; strip the now-dangling comma
    // off whichever top-level field is last.
    let last_field = lines.len() - 2;
    lines[last_field] = lines[last_field].trim_end_matches(',').to_string();
    fs::write(&path, lines.join("\n")).unwrap();
}

/// One matrix row: a checkpoint dir shaped like `version` wrote it.
fn make_checkpoint(name: &str, version: u32) -> PathBuf {
    let mut cfg = tiny_federation(3);
    cfg.seed = 77;
    if version >= 3 {
        cfg.membership = Some(MembershipConfig::default());
    }
    let (fed, _) = build_iid_federation(&cfg, 2_000).unwrap();
    let params: Vec<f32> = fed.aggregator.params().to_vec();
    let opt = fed.aggregator.server_opt_state();
    let elastic = (version >= 3).then(|| ElasticState {
        membership: MembershipRegistry::new(MembershipConfig::default(), 3).snapshot(),
        buffer: None,
    });

    let dir = tmp_dir(name);
    save_checkpoint_full(
        &dir,
        &cfg,
        5,
        &params,
        (version >= 2).then_some(&opt),
        elastic.as_ref(),
        None,
    )
    .unwrap();

    match version {
        1 => {
            downgrade_manifest(
                &dir,
                0,
                &[
                    "format_version",
                    "has_server_opt",
                    "has_membership",
                    "dtype",
                ],
            );
            fs::remove_file(dir.join("server_opt.bin")).ok();
            fs::remove_file(dir.join("membership.bin")).ok();
        }
        2 => {
            downgrade_manifest(&dir, 2, &["has_membership", "dtype"]);
            fs::remove_file(dir.join("membership.bin")).ok();
        }
        3 => downgrade_manifest(&dir, 3, &["dtype"]),
        _ => {}
    }
    dir
}

/// Restores a checkpoint of any vintage into a current aggregator and
/// proves the run keeps training from it.
fn restore_and_train(dir: &Path, expect_version: u32, expect_opt: bool, expect_elastic: bool) {
    let (manifest, params) = load_checkpoint(dir).unwrap();
    assert_eq!(manifest.round, 5);
    assert_eq!(manifest.format_version, expect_version);

    let opt = load_server_opt_state(dir).unwrap();
    assert_eq!(
        opt.is_some(),
        expect_opt,
        "server-opt presence (v{expect_version})"
    );
    let elastic = load_elastic_state(dir).unwrap();
    assert_eq!(
        elastic.is_some(),
        expect_elastic,
        "elastic-state presence (v{expect_version})"
    );

    let (mut fed, _) = build_iid_federation(&manifest.config, 2_000).unwrap();
    fed.aggregator
        .restore_with_opt(manifest.round, params.clone(), opt.as_ref())
        .unwrap();
    if let Some(elastic) = &elastic {
        fed.aggregator.restore_elastic(elastic).unwrap();
    }
    assert_eq!(fed.aggregator.round(), 5);
    assert_eq!(fed.aggregator.params(), &params[..]);

    let record = fed.aggregator.run_round(&mut fed.clients).unwrap();
    assert_eq!(record.round, 5);
    assert!(record.mean_client_loss.is_finite());
    assert_eq!(fed.aggregator.round(), 6);
    assert_ne!(
        fed.aggregator.params(),
        &params[..],
        "training must advance past the restored parameters"
    );
}

#[test]
fn v1_bare_checkpoint_restores_into_current_aggregator() {
    let dir = make_checkpoint("v1", 1);
    restore_and_train(&dir, 0, false, false);
}

#[test]
fn v2_opt_state_checkpoint_restores_into_current_aggregator() {
    let dir = make_checkpoint("v2", 2);
    restore_and_train(&dir, 2, true, false);
}

#[test]
fn v3_elastic_checkpoint_restores_into_current_aggregator() {
    let dir = make_checkpoint("v3", 3);
    restore_and_train(&dir, 3, true, true);
}

#[test]
fn v4_current_checkpoint_restores_into_current_aggregator() {
    let dir = make_checkpoint("v4", 4);
    restore_and_train(&dir, CHECKPOINT_FORMAT_VERSION, true, true);
}

#[test]
fn v4_bf16_storage_restores_within_half_precision() {
    // The dtype column of the matrix: a v4 checkpoint stored in bf16
    // widens back to f32 master weights within bf16's resolution.
    let mut cfg = tiny_federation(3);
    cfg.seed = 78;
    cfg.dtype = photon_tensor::Dtype::Bf16;
    let (fed, _) = build_iid_federation(&cfg, 2_000).unwrap();
    let params: Vec<f32> = fed.aggregator.params().to_vec();
    let dir = tmp_dir("v4-bf16");
    save_checkpoint_full(&dir, &cfg, 2, &params, None, None, None).unwrap();

    let (manifest, loaded) = load_checkpoint(&dir).unwrap();
    assert_eq!(manifest.dtype, photon_tensor::Dtype::Bf16);
    assert_eq!(loaded.len(), params.len());
    for (a, b) in loaded.iter().zip(&params) {
        let tolerance = b.abs().max(1e-3) * 0.01; // bf16: ~8 mantissa bits
        assert!(
            (a - b).abs() <= tolerance,
            "bf16 roundtrip drift: {a} vs {b}"
        );
    }

    let (mut fed2, _) = build_iid_federation(&cfg, 2_000).unwrap();
    fed2.aggregator.restore(manifest.round, loaded).unwrap();
    let record = fed2.aggregator.run_round(&mut fed2.clients).unwrap();
    assert!(record.mean_client_loss.is_finite());
}
