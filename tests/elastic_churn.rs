//! Elastic-membership integration tests: heavy client churn (seeded joins,
//! permanent leaves, lease expiries and warm rejoins) keeps training finite
//! and close to the static-cohort baseline, replays bit-identically,
//! survives a checkpoint restore with a roster that changed since the
//! checkpoint, and composes buffered semi-synchronous aggregation with the
//! admission guard and Byzantine-robust merging.

use photon_core::experiments::{build_iid_federation, RunOptions};
use photon_core::{
    load_checkpoint, load_elastic_state, load_server_opt_state, run_training, save_checkpoint_full,
    FaultInjector, FaultSpec, FederationConfig, MembershipConfig, TargetedFault, TrainingHistory,
    TrainingOptions,
};
use photon_fedopt::{AggregationKind, BufferConfig, GuardConfig};
use photon_tests::tiny_federation;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("photon-churn-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A federation with elastic membership over the tiny test model.
fn elastic_cfg(n: usize) -> FederationConfig {
    let mut cfg = tiny_federation(n);
    cfg.membership = Some(MembershipConfig::default()); // 3 s lease, 1 s rounds
    cfg.allow_partial_results = true;
    cfg.seed = 17;
    cfg
}

/// Heavy churn: random joins and leaves, plus a pinned crash chain on
/// client 0 long enough (rounds 1..=4 against a 3-round lease) to expire
/// its lease and warm-rejoin it afterwards.
fn churn_spec() -> FaultSpec {
    FaultSpec {
        p_crash: 0.08,
        p_join: 0.2,
        p_leave: 0.04,
        targeted: vec![
            TargetedFault::parse("crash@r1c0").unwrap(),
            TargetedFault::parse("crash@r2c0").unwrap(),
            TargetedFault::parse("crash@r3c0").unwrap(),
            TargetedFault::parse("crash@r4c0").unwrap(),
        ],
        targeted_joins: vec![2],
        targeted_leaves: vec![(6, 1)],
        ..FaultSpec::none(7)
    }
}

fn run_churn(cfg: &FederationConfig, spec: &FaultSpec, rounds: u64) -> (TrainingHistory, Vec<f32>) {
    let inj = FaultInjector::from_spec(spec, cfg.population, rounds);
    let (mut fed, _) = build_iid_federation(cfg, 3_000).unwrap();
    let mut history = TrainingHistory::new();
    for _ in 0..rounds {
        history.push(fed.run_round_with(Some(&inj)).unwrap());
    }
    (history, fed.aggregator.params().to_vec())
}

#[test]
fn heavy_churn_stays_finite_and_near_the_static_baseline() {
    let rounds = 10;
    let cfg = elastic_cfg(4);
    let (history, params) = run_churn(&cfg, &churn_spec(), rounds);

    // Every membership event class actually fired.
    let joined: usize = history.rounds.iter().map(|r| r.joined).sum();
    let departed: usize = history.rounds.iter().map(|r| r.departed).sum();
    let expired: usize = history.rounds.iter().map(|r| r.lease_expired).sum();
    let rejoined: usize = history.rounds.iter().map(|r| r.rejoined).sum();
    assert!(joined > 0, "no warm join fired");
    assert!(departed > 0, "no permanent leave fired");
    assert!(expired > 0, "the pinned crash chain must expire a lease");
    assert!(rejoined > 0, "the expired member must warm-rejoin");

    // The run stays finite under churn.
    assert!(params.iter().all(|p| p.is_finite()));
    for r in &history.rounds {
        assert!(r.mean_client_loss.is_finite(), "round {} diverged", r.round);
    }

    // And lands within 10% of a static-cohort run of the same length.
    let mut static_cfg = cfg.clone();
    static_cfg.membership = None;
    let (mut baseline, _) = build_iid_federation(&static_cfg, 3_000).unwrap();
    let mut base_loss = f32::NAN;
    for _ in 0..rounds {
        base_loss = baseline
            .aggregator
            .run_round(&mut baseline.clients)
            .unwrap()
            .mean_client_loss;
    }
    let churn_loss = history.rounds.last().unwrap().mean_client_loss;
    let rel = (churn_loss - base_loss).abs() / base_loss;
    assert!(
        rel < 0.10,
        "churn final loss {churn_loss} strays {rel:.3} from baseline {base_loss}"
    );
}

#[test]
fn churn_runs_replay_bit_identically() {
    let cfg = elastic_cfg(4);
    let (history_a, params_a) = run_churn(&cfg, &churn_spec(), 8);
    let (history_b, params_b) = run_churn(&cfg, &churn_spec(), 8);
    assert_eq!(params_a, params_b, "elastic replay must be bit-identical");
    assert_eq!(history_a, history_b);
}

#[test]
fn restore_resumes_with_a_roster_that_changed_since_the_checkpoint() {
    // Joins land both before (round 2) and after (round 5) the checkpoint
    // taken at round 4, so the restored run must both re-provision a
    // mid-run joiner recorded in the snapshot and keep admitting new ones.
    let spec = FaultSpec {
        targeted_joins: vec![2, 5],
        targeted_leaves: vec![(3, 1)],
        targeted: vec![
            TargetedFault::parse("crash@r1c0").unwrap(),
            TargetedFault::parse("crash@r2c0").unwrap(),
            TargetedFault::parse("crash@r3c0").unwrap(),
            TargetedFault::parse("crash@r4c0").unwrap(),
        ],
        ..FaultSpec::none(5)
    };
    let rounds = 8u64;
    let cfg = elastic_cfg(4);
    let inj = FaultInjector::from_spec(&spec, cfg.population, rounds);

    // Uninterrupted reference run, checkpointing at round 4.
    let dir = tmp_dir("roster-restore");
    let (mut straight, _) = build_iid_federation(&cfg, 3_000).unwrap();
    for round in 0..rounds {
        straight.run_round_with(Some(&inj)).unwrap();
        if round == 3 {
            save_checkpoint_full(
                &dir,
                straight.aggregator.config(),
                straight.aggregator.round(),
                straight.aggregator.params(),
                Some(&straight.aggregator.server_opt_state()),
                straight.aggregator.elastic_state().as_ref(),
                None,
            )
            .unwrap();
        }
    }
    assert!(
        straight.aggregator.roster_len().unwrap() > 4,
        "the roster must have grown mid-run"
    );

    // Fresh world + restore: the snapshot carries the changed roster and
    // sync_roster re-provisions the mid-run joiner deterministically.
    let (mut resumed, _) = build_iid_federation(&cfg, 3_000).unwrap();
    let (manifest, params) = load_checkpoint(&dir).unwrap();
    assert_eq!(manifest.round, 4);
    let opt = load_server_opt_state(&dir).unwrap();
    resumed
        .aggregator
        .restore_with_opt(manifest.round, params, opt.as_ref())
        .unwrap();
    let elastic = load_elastic_state(&dir).unwrap().expect("v3 checkpoint");
    assert!(
        elastic.membership.next_id > 4,
        "snapshot must carry the grown roster"
    );
    resumed.aggregator.restore_elastic(&elastic).unwrap();
    resumed.sync_roster().unwrap();
    for _ in 4..rounds {
        resumed.run_round_with(Some(&inj)).unwrap();
    }

    assert_eq!(
        straight.aggregator.params(),
        resumed.aggregator.params(),
        "resume with a changed roster must replay the crashed rounds exactly"
    );
    assert_eq!(
        straight.aggregator.roster_len(),
        resumed.aggregator.roster_len()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_driver_replays_churn_through_an_aggregator_crash() {
    // The full crash-recovery driver over an elastic run: an aggregator
    // crash mid-run restores the v3 checkpoint (roster + buffer) and the
    // replayed rounds land on the crash-free trajectory bit-for-bit.
    let spec = FaultSpec {
        p_agg_crash: 0.5,
        targeted_joins: vec![2],
        ..FaultSpec::none(13)
    };
    let cfg = elastic_cfg(3);
    let rounds = 6u64;
    let inj = FaultInjector::from_spec(&spec, cfg.population, rounds);
    let opts = TrainingOptions {
        run: RunOptions {
            rounds,
            eval_every: 0,
            eval_windows: 4,
            stop_below: None,
        },
        checkpoint_dir: Some(tmp_dir("churn-agg-crash")),
        checkpoint_every: 2,
        recovery_budget: 5,
        resume: false,
        metrics_json: None,
    };
    let outcome = run_training(|| build_iid_federation(&cfg, 3_000), &opts, Some(&inj)).unwrap();
    assert!(outcome.recoveries > 0, "the seeded agg crash must fire");

    let (no_crash_history, no_crash_params) = {
        let quiet = FaultSpec {
            p_agg_crash: 0.0,
            ..spec.clone()
        };
        run_churn(&cfg, &quiet, rounds)
    };
    assert_eq!(
        outcome.federation.aggregator.params(),
        &no_crash_params[..],
        "recovery must reproduce the crash-free elastic run exactly"
    );
    assert_eq!(outcome.history, no_crash_history);
    let _ = fs::remove_dir_all(opts.checkpoint_dir.unwrap());
}

#[test]
fn buffered_mode_composes_with_guard_and_trimmed_mean() {
    // FedBuff-style commits under churn, stragglers, a Byzantine client,
    // the admission guard and trimmed-mean merging: no panics, finite
    // losses, at least one deferred round and one commit, bit-identical
    // replay.
    let mut cfg = elastic_cfg(5);
    cfg.buffer = Some(BufferConfig {
        quorum: 7,
        staleness_decay: 0.6,
    });
    cfg.guard = GuardConfig::on();
    cfg.aggregation = AggregationKind::TrimmedMean { trim_ratio: 0.2 };
    cfg.round_deadline_ms = Some(150);
    let spec = FaultSpec {
        p_straggle: 0.3,
        straggle_ms_max: 2_500,
        p_crash: 0.05,
        p_join: 0.15,
        p_leave: 0.04,
        targeted: vec![TargetedFault::parse("nan-update@r2c1").unwrap()],
        ..FaultSpec::none(11)
    };
    let run = || run_churn(&cfg, &spec, 10);
    let (history_a, params_a) = run();
    let (history_b, params_b) = run();
    assert_eq!(params_a, params_b, "buffered replay must be bit-identical");
    assert_eq!(history_a, history_b);

    assert!(params_a.iter().all(|p| p.is_finite()));
    let commits = history_a
        .rounds
        .iter()
        .filter(|r| !r.commit_deferred)
        .count();
    let deferrals = history_a
        .rounds
        .iter()
        .filter(|r| r.commit_deferred)
        .count();
    assert!(commits > 0, "no buffered commit fired");
    assert!(
        deferrals > 0,
        "quorum 7 over 5 clients must defer some rounds"
    );
    let stragglers: usize = history_a.rounds.iter().map(|r| r.stragglers).sum();
    assert!(stragglers > 0, "straggler schedule must fire");
    let rejected: usize = history_a.rounds.iter().map(|r| r.guard_rejected).sum();
    assert!(rejected > 0, "the guard must reject the NaN update");
}
