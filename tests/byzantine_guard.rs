//! End-to-end Byzantine robustness: seeded Byzantine faults on a minority
//! of the cohort must not poison the global model under the robust
//! aggregation rules (guard + trimmed-mean/median), the poisoned runs must
//! replay bit-identically, and a forced divergence under plain mean
//! aggregation must trigger exactly one watchdog rollback while the run
//! still completes.

use photon_core::experiments::{build_iid_federation, RunOptions};
use photon_core::{
    run_training, FaultCounters, FaultInjector, FaultSpec, Federation, FederationConfig,
    TrainingOptions,
};
use photon_data::{EvalStream, TokenCorpus};
use photon_fedopt::{AggregationKind, GuardConfig};
use photon_nn::evaluate_perplexity;
use photon_tests::tiny_federation;
use std::fs;
use std::path::PathBuf;

const ROUNDS: u64 = 5;
const TOKENS: usize = 3_000;

/// One Byzantine client per round on a 4-client cohort (25% < 50%),
/// covering every fault kind: an all-NaN update, a sign flip, and a 50x
/// rescale.
fn byzantine_spec() -> FaultSpec {
    FaultSpec::parse("nan-update@r1c0,sign-flip@r2c1,scale:50@r3c2,seed=21").unwrap()
}

fn guarded_cfg(aggregation: AggregationKind) -> FederationConfig {
    let mut cfg = tiny_federation(4);
    cfg.seed = 33;
    cfg.aggregation = aggregation;
    cfg.guard = GuardConfig::on();
    cfg
}

fn eval_ppl(fed: &Federation, val: &TokenCorpus) -> f64 {
    let seq = fed.aggregator.config().model.seq_len.clamp(8, 64);
    let mut stream = EvalStream::new(val, seq);
    evaluate_perplexity(&fed.aggregator.global_model(), &mut stream, 8).perplexity
}

/// Runs `ROUNDS` rounds, asserting every global parameter stays finite
/// after every round; returns the final parameters, the final validation
/// perplexity and the telemetry fault counters.
fn run_guarded(
    cfg: &FederationConfig,
    injector: Option<&FaultInjector>,
) -> (Vec<f32>, f64, FaultCounters) {
    let (mut fed, val) = build_iid_federation(cfg, TOKENS).expect("federation builds");
    for _ in 0..ROUNDS {
        fed.aggregator
            .run_round_with(&mut fed.clients, injector)
            .expect("round succeeds");
        assert!(
            fed.aggregator.params().iter().all(|p| p.is_finite()),
            "non-finite global parameter after round {}",
            fed.aggregator.round()
        );
    }
    let ppl = eval_ppl(&fed, &val);
    let counters = fed.aggregator.telemetry().fault_counters();
    (fed.aggregator.params().to_vec(), ppl, counters)
}

#[test]
fn robust_rules_absorb_a_byzantine_minority() {
    let spec = byzantine_spec();
    for aggregation in [
        AggregationKind::TrimmedMean { trim_ratio: 0.2 },
        AggregationKind::Median,
    ] {
        let cfg = guarded_cfg(aggregation);
        let injector = FaultInjector::from_spec(&spec, cfg.population, ROUNDS);

        let (poisoned, poisoned_ppl, counters) = run_guarded(&cfg, Some(&injector));
        let (baseline, baseline_ppl, _) = run_guarded(&cfg, None);

        // (a) finiteness is asserted per-round inside run_guarded; the
        // final parameters must also differ from an untouched model only
        // by bounded amounts — compare losses, not raw params.
        let poisoned_loss = poisoned_ppl.ln();
        let baseline_loss = baseline_ppl.ln();
        assert!(
            (poisoned_loss - baseline_loss).abs() <= 0.10 * baseline_loss,
            "{aggregation:?}: poisoned loss {poisoned_loss:.4} strays more \
             than 10% from fault-free {baseline_loss:.4}"
        );
        assert_ne!(
            poisoned.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            baseline.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "{aggregation:?}: faults should leave some trace on the run"
        );

        // The guard saw each attack: the NaN update is rejected for
        // non-finiteness, the sign flip as a direction outlier, and the
        // rescale is clipped back to the median norm envelope.
        assert!(counters.rejected_nonfinite >= 1, "{aggregation:?}: nan");
        assert!(counters.rejected_outliers >= 1, "{aggregation:?}: flip");
        assert!(counters.norm_clipped >= 1, "{aggregation:?}: scale");

        // (c) the poisoned run replays bit-identically from the same seed.
        let (replay, replay_ppl, _) = run_guarded(&cfg, Some(&injector));
        assert_eq!(
            poisoned.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            replay.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "{aggregation:?}: poisoned run is not replayable"
        );
        assert_eq!(poisoned_ppl.to_bits(), replay_ppl.to_bits());
    }
}

#[test]
fn forced_divergence_rolls_back_exactly_once() {
    let dir: PathBuf = std::env::temp_dir()
        .join("photon-byzantine-tests")
        .join("rollback");
    let _ = fs::remove_dir_all(&dir);

    // Plain mean with the guard off: the all-NaN update at round 2 reaches
    // the aggregate, the watchdog trips on the non-finite norm, and the
    // driver rolls back to the round-2 checkpoint with the round
    // neutralized.
    let mut cfg = tiny_federation(3);
    cfg.seed = 17;
    let spec = FaultSpec::parse("nan-update@r2c0,seed=5").unwrap();
    let injector = FaultInjector::from_spec(&spec, cfg.population, ROUNDS);
    let opts = TrainingOptions {
        run: RunOptions {
            rounds: ROUNDS,
            eval_every: 1,
            eval_windows: 4,
            stop_below: None,
        },
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        recovery_budget: 2,
        resume: false,
        metrics_json: None,
    };
    let outcome = run_training(
        || build_iid_federation(&cfg, TOKENS),
        &opts,
        Some(&injector),
    )
    .expect("run completes despite the divergence");

    assert_eq!(outcome.rollbacks, 1, "exactly one watchdog rollback");
    assert_eq!(outcome.recoveries, 0, "no plain crash recoveries");
    let counters = outcome.federation.aggregator.telemetry().fault_counters();
    assert_eq!(counters.rollbacks, 1);
    assert_eq!(outcome.history.len(), ROUNDS as usize);
    assert!(
        outcome.history.rounds[2].neutralized,
        "the diverged round is neutralized in the replay"
    );
    assert!(outcome
        .federation
        .aggregator
        .params()
        .iter()
        .all(|p| p.is_finite()));
    fs::remove_dir_all(&dir).ok();
}
