//! Resilience integration: client dropouts mid-round (§4's
//! parameter-server partial updates) and sporadic availability
//! (§2.1 / Appendix A).

use photon_core::experiments::{build_iid_federation, run_federation, RunOptions};
use photon_fedopt::AvailabilityModel;
use photon_tests::tiny_federation;

#[test]
fn dropouts_fail_the_round_by_default() {
    let cfg = tiny_federation(3);
    let (mut fed, _val) = build_iid_federation(&cfg, 3_000).unwrap();
    fed.clients[1].fail_on_rounds(vec![0]);
    let err = fed.aggregator.run_round(&mut fed.clients).unwrap_err();
    assert!(err.to_string().contains("allow_partial_results"), "{err}");
}

#[test]
fn partial_results_aggregate_survivors() {
    let mut cfg = tiny_federation(3);
    cfg.allow_partial_results = true;
    let (mut fed, val) = build_iid_federation(&cfg, 3_000).unwrap();
    fed.clients[1].fail_on_rounds(vec![0, 2]);

    let opts = RunOptions {
        rounds: 4,
        eval_every: 4,
        eval_windows: 16,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    assert_eq!(history.rounds[0].dropouts, 1);
    assert_eq!(history.rounds[1].dropouts, 0);
    assert_eq!(history.rounds[2].dropouts, 1);
    // Training still converges on the survivors' updates.
    assert!(history.final_ppl().unwrap() < 200.0);
    // Telemetry shows the flaky client participated in fewer rounds.
    let stats = fed.aggregator.telemetry().client_stats();
    assert_eq!(stats[1].1.rounds_participated, 2);
    assert_eq!(stats[0].1.rounds_participated, 4);
}

#[test]
fn all_clients_down_still_fails() {
    let mut cfg = tiny_federation(2);
    cfg.allow_partial_results = true;
    let (mut fed, _val) = build_iid_federation(&cfg, 3_000).unwrap();
    fed.clients[0].fail_on_rounds(vec![0]);
    fed.clients[1].fail_on_rounds(vec![0]);
    assert!(fed.aggregator.run_round(&mut fed.clients).is_err());
}

#[test]
fn secure_agg_with_partial_rejected() {
    let mut cfg = tiny_federation(2);
    cfg.secure_agg = true;
    cfg.allow_partial_results = true;
    assert!(cfg.validate().is_err());
}

#[test]
fn sporadic_availability_shapes_cohorts() {
    let mut cfg = tiny_federation(8);
    cfg.availability = Some(AvailabilityModel {
        p_down: 0.4,
        p_up: 0.4,
    });
    cfg.seed = 17;
    let (mut fed, val) = build_iid_federation(&cfg, 3_000).unwrap();
    let opts = RunOptions {
        rounds: 10,
        eval_every: 0,
        eval_windows: 0,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    // Cohort sizes vary with availability (full participation nominal, but
    // down clients are excluded).
    let sizes: Vec<usize> = history.rounds.iter().map(|r| r.cohort.len()).collect();
    assert!(
        sizes.iter().any(|&s| s < 8),
        "availability never removed a client: {sizes:?}"
    );
    assert!(sizes.iter().all(|&s| s >= 1));
    // And the run is reproducible.
    let (mut fed2, val2) = build_iid_federation(&cfg, 3_000).unwrap();
    let history2 = run_federation(&mut fed2, &val2, &opts).unwrap();
    let sizes2: Vec<usize> = history2.rounds.iter().map(|r| r.cohort.len()).collect();
    assert_eq!(sizes, sizes2);
}

#[test]
fn availability_with_sampling_respects_k() {
    use photon_core::CohortSpec;
    let mut cfg = tiny_federation(8);
    cfg.cohort = CohortSpec::Sample { k: 3 };
    cfg.availability = Some(AvailabilityModel {
        p_down: 0.2,
        p_up: 0.8,
    });
    let (mut fed, _val) = build_iid_federation(&cfg, 3_000).unwrap();
    for _ in 0..6 {
        let rec = fed.aggregator.run_round(&mut fed.clients).unwrap();
        assert!(rec.cohort.len() <= 3);
        assert!(!rec.cohort.is_empty());
    }
}
