//! End-to-end federation tests spanning every crate: data generation,
//! tokenization, model training, Link framing, aggregation, server
//! optimization, checkpointing and recovery.

use photon_core::experiments::{
    build_heterogeneous_federation, build_iid_federation, run_federation, RunOptions,
};
use photon_core::{load_checkpoint, save_checkpoint, Aggregator, CohortSpec};
use photon_fedopt::ServerOptKind;
use photon_tests::tiny_federation;

#[test]
fn iid_federation_converges_end_to_end() {
    let cfg = tiny_federation(4);
    let (mut fed, val) = build_iid_federation(&cfg, 4_000).unwrap();
    let opts = RunOptions {
        rounds: 8,
        eval_every: 1,
        eval_windows: 16,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    let first = history.rounds[0].eval_ppl.unwrap();
    let last = history.final_ppl().unwrap();
    assert!(
        last < first * 0.7,
        "federation failed to converge: {first} -> {last}"
    );
    // Every round exchanged real Link traffic.
    assert!(history.rounds.iter().all(|r| r.wire_bytes > 0));
}

#[test]
fn full_feature_stack_trains_together() {
    // Heterogeneous data + compression + secure aggregation + FedMom, all
    // at once — the paper's full §4 feature set in a single run.
    let mut cfg = tiny_federation(4);
    cfg.compress_link = true;
    cfg.secure_agg = true;
    cfg.server_opt = ServerOptKind::FedMom {
        lr: 1.0,
        momentum: 0.3,
    };
    cfg.post.clip_update_norm = Some(100.0);
    let (mut fed, val) = build_heterogeneous_federation(&cfg, 8_000).unwrap();
    let opts = RunOptions {
        rounds: 6,
        eval_every: 2,
        eval_windows: 16,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    let evals: Vec<f64> = history.rounds.iter().filter_map(|r| r.eval_ppl).collect();
    assert!(evals.len() >= 2);
    assert!(evals.last().unwrap() < evals.first().unwrap(), "{evals:?}");
}

#[test]
fn checkpoint_recovery_resumes_training() {
    let dir = std::env::temp_dir().join("photon-e2e-ckpt");
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = tiny_federation(2);
    let (mut fed, val) = build_iid_federation(&cfg, 4_000).unwrap();
    let opts = RunOptions {
        rounds: 3,
        eval_every: 1,
        eval_windows: 8,
        stop_below: None,
    };
    let before = run_federation(&mut fed, &val, &opts).unwrap();
    save_checkpoint(&dir, &cfg, fed.aggregator.round(), fed.aggregator.params()).unwrap();

    // A "crashed" aggregator comes back from the checkpoint and keeps
    // improving with the surviving clients.
    let (manifest, params) = load_checkpoint(&dir).unwrap();
    assert_eq!(manifest.round, 3);
    let mut revived = Aggregator::new(manifest.config).unwrap();
    revived.restore(manifest.round, params).unwrap();
    assert_eq!(revived.params(), fed.aggregator.params());

    fed.aggregator = revived;
    let after = run_federation(&mut fed, &val, &opts).unwrap();
    assert!(after.final_ppl().unwrap() <= before.final_ppl().unwrap() * 1.1);
    assert_eq!(fed.aggregator.round(), 6);
}

#[test]
fn partial_participation_covers_population_over_time() {
    let mut cfg = tiny_federation(8);
    cfg.cohort = CohortSpec::Sample { k: 2 };
    let (mut fed, val) = build_iid_federation(&cfg, 4_000).unwrap();
    let opts = RunOptions {
        rounds: 12,
        eval_every: 0,
        eval_windows: 0,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    let mut seen = [false; 8];
    for r in &history.rounds {
        assert_eq!(r.cohort.len(), 2);
        for &c in &r.cohort {
            seen[c] = true;
        }
    }
    assert!(
        seen.iter().filter(|&&s| s).count() >= 6,
        "sampling failed to spread across the population: {seen:?}"
    );
}

#[test]
fn diloco_converges_slower_than_photon_per_round() {
    // Table 3's mechanism, end to end: identical data and seeds, only the
    // server optimizer differs.
    let run = |server_opt: ServerOptKind| {
        let mut cfg = tiny_federation(4);
        cfg.server_opt = server_opt;
        cfg.seed = 555;
        let (mut fed, val) = build_iid_federation(&cfg, 4_000).unwrap();
        let opts = RunOptions {
            rounds: 8,
            eval_every: 1,
            eval_windows: 16,
            stop_below: None,
        };
        run_federation(&mut fed, &val, &opts).unwrap()
    };
    let photon = run(ServerOptKind::photon_default());
    let diloco = run(ServerOptKind::diloco_default());
    assert!(
        photon.final_ppl().unwrap() < diloco.final_ppl().unwrap(),
        "photon {:?} vs diloco {:?}",
        photon.final_ppl(),
        diloco.final_ppl()
    );
}
