//! Consistency between the analytic Appendix-B.1 wall-time model, the real
//! threaded collectives, and the Table 2 reproduction inputs.

use photon_cluster::{PaperModel, Region, RegionGraph, ThroughputSetting};
use photon_comms::{
    bytes_on_wire, comm_time_seconds, ring_allreduce_group, Topology, WallTimeModel,
};

/// The threaded ring-allreduce moves exactly the bytes the analytic model
/// charges, for several group sizes.
#[test]
fn threaded_rar_matches_analytic_volume() {
    for n in [2usize, 4, 8] {
        let len = 4096usize; // divisible by all group sizes
        let workers = ring_allreduce_group(n);
        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut w| {
                std::thread::spawn(move || {
                    let mut data = vec![1.0f32; len];
                    w.allreduce_sum(&mut data);
                    w.bytes_sent()
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, bytes_on_wire(Topology::RingAllReduce, n, len * 4));
    }
}

/// Table 2 reproduction: with the paper's measured throughputs and compute
/// budgets, the analytic model reproduces the paper's communication hours
/// and speedups for every billion-scale row.
#[test]
fn table2_comm_times_reproduce() {
    // (model, K silos, fed compute h, cen compute h, paper fed comm h,
    //  paper cen comm h)
    let rows = [
        (PaperModel::B1_3, 8usize, 18.0, 6.5, 0.02, 20.2),
        (PaperModel::B3, 4, 25.1, 16.1, 0.05, 40.48),
        (PaperModel::B7, 4, 95.5, 50.7, 0.1, 97.2),
    ];
    let bw_mbps = 1250.0; // 10 Gbps
    for (model, k, fed_h, cen_h, paper_fed_comm, paper_cen_comm) in rows {
        let s_mb = model.config().param_bytes(2) as f64 / 1e6;
        let rar = comm_time_seconds(Topology::RingAllReduce, k, s_mb, bw_mbps);

        // Federated: one aggregation per tau = 500 steps.
        let fed_steps = fed_h * 3600.0 * model.nu(ThroughputSetting::Federated);
        let fed_rounds = fed_steps / 500.0;
        let fed_comm_h = fed_rounds * rar / 3600.0;
        assert!(
            (fed_comm_h - paper_fed_comm).abs() < paper_fed_comm * 0.5 + 0.01,
            "{model}: fed comm {fed_comm_h:.3}h vs paper {paper_fed_comm}h"
        );

        // Centralized: one gradient aggregation per step.
        let cen_steps = cen_h * 3600.0 * model.nu(ThroughputSetting::Centralized);
        let cen_comm_h = cen_steps * rar / 3600.0;
        assert!(
            (cen_comm_h - paper_cen_comm).abs() < paper_cen_comm * 0.25,
            "{model}: cen comm {cen_comm_h:.1}h vs paper {paper_cen_comm}h"
        );

        // The headline claim: federated total wall time beats centralized.
        let fed_wall = fed_h + fed_comm_h;
        let cen_wall = cen_h + cen_comm_h;
        assert!(
            fed_wall < cen_wall,
            "{model}: fed {fed_wall:.1}h !< cen {cen_wall:.1}h"
        );
    }
}

/// Fig. 2 semantics: the ring topology is gated by Maharashtra–Quebec, the
/// parameter server by England's slowest spoke, and under those real
/// bandwidths RAR still ends up fastest for billion-scale payloads.
#[test]
fn region_bottlenecks_drive_topology_choice() {
    let graph = RegionGraph::paper();
    let ring = Region::all();
    let k = ring.len();
    let s_mb = PaperModel::B7.config().param_bytes(2) as f64 / 1e6;

    let rar_bw = graph.slowest_ring_link(&ring) * 125.0; // Gbps -> MB/s
    let ps_bw = graph.slowest_star_link(Region::England, &ring) * 125.0;

    let rar = comm_time_seconds(Topology::RingAllReduce, k, s_mb, rar_bw);
    let ps = comm_time_seconds(Topology::ParameterServer, k, s_mb, ps_bw);
    assert!(rar < ps, "rar {rar:.0}s !< ps {ps:.0}s");
}

/// Communication percentage falls as local work grows — the Figs. 9–10
/// relationship, via the model.
#[test]
fn more_local_steps_reduce_comm_fraction() {
    let s_mb = PaperModel::M125.config().param_bytes(2) as f64 / 1e6;
    let fractions: Vec<f64> = [64u64, 128, 512]
        .iter()
        .map(|&tau| {
            WallTimeModel::new(2.0, tau, s_mb, 1250.0, Topology::ParameterServer)
                .round_time(16)
                .comm_fraction()
        })
        .collect();
    assert!(fractions[0] > fractions[1] && fractions[1] > fractions[2]);
}
