//! Seeded chaos and crash-recovery integration tests: fault schedules
//! replay bit-identically, training under faults stays close to the
//! fault-free trajectory, and checkpoint/restore — including the server
//! optimizer's state and full aggregator crashes — reproduces the
//! uninterrupted run exactly.

use photon_core::experiments::{build_iid_federation, RunOptions};
use photon_core::{
    load_checkpoint, load_server_opt_state, run_training, save_checkpoint_with_opt, FaultInjector,
    FaultSpec, TrainingOptions,
};
use photon_fedopt::ServerOptKind;
use photon_tests::tiny_federation;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("photon-chaos-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn chaos_spec() -> FaultSpec {
    FaultSpec {
        p_crash: 0.15,
        p_straggle: 0.15,
        straggle_ms_max: 200,
        p_corrupt: 0.1,
        corrupt_attempts_max: 2,
        p_agg_crash: 0.0,
        ..FaultSpec::none(9)
    }
}

#[test]
fn diloco_resume_requires_server_opt_state() {
    // DiLoCo's outer Nesterov momentum is part of the training state: a
    // restore that carries it reproduces the uninterrupted run exactly,
    // and one that drops it (the legacy v1 restore) diverges.
    let mut cfg = tiny_federation(3);
    cfg.server_opt = ServerOptKind::diloco_default();
    cfg.seed = 33;

    let (mut straight, _) = build_iid_federation(&cfg, 3_000).unwrap();
    for _ in 0..6 {
        straight
            .aggregator
            .run_round(&mut straight.clients)
            .unwrap();
    }

    let (mut first_half, _) = build_iid_federation(&cfg, 3_000).unwrap();
    for _ in 0..3 {
        first_half
            .aggregator
            .run_round(&mut first_half.clients)
            .unwrap();
    }
    let dir = tmp_dir("diloco-resume");
    save_checkpoint_with_opt(
        &dir,
        &cfg,
        first_half.aggregator.round(),
        first_half.aggregator.params(),
        Some(&first_half.aggregator.server_opt_state()),
    )
    .unwrap();

    // Restore WITH optimizer state into a freshly built federation.
    let (manifest, params) = load_checkpoint(&dir).unwrap();
    let opt = load_server_opt_state(&dir).unwrap();
    assert!(opt.is_some(), "checkpoint should carry optimizer state");
    let (mut resumed, _) = build_iid_federation(&cfg, 3_000).unwrap();
    resumed
        .aggregator
        .restore_with_opt(manifest.round, params.clone(), opt.as_ref())
        .unwrap();
    for _ in 0..3 {
        resumed.aggregator.run_round(&mut resumed.clients).unwrap();
    }
    assert_eq!(
        straight.aggregator.params(),
        resumed.aggregator.params(),
        "resume with optimizer state must be bit-identical"
    );

    // Restore WITHOUT optimizer state: momentum resets, trajectory drifts.
    let (mut amnesiac, _) = build_iid_federation(&cfg, 3_000).unwrap();
    amnesiac.aggregator.restore(manifest.round, params).unwrap();
    for _ in 0..3 {
        amnesiac
            .aggregator
            .run_round(&mut amnesiac.clients)
            .unwrap();
    }
    assert_ne!(
        straight.aggregator.params(),
        amnesiac.aggregator.params(),
        "dropping DiLoCo momentum should change the trajectory"
    );
}

#[test]
fn chaos_runs_replay_bit_identically() {
    let mut cfg = tiny_federation(4);
    cfg.allow_partial_results = true;
    cfg.round_deadline_ms = Some(50);
    cfg.seed = 21;
    let injector = FaultInjector::from_spec(&chaos_spec(), cfg.population, 6);
    assert!(injector.plan().client_fault_count() > 0);

    let run = |_: ()| {
        let (mut fed, _) = build_iid_federation(&cfg, 3_000).unwrap();
        let mut records = Vec::new();
        for _ in 0..6 {
            records.push(
                fed.aggregator
                    .run_round_with(&mut fed.clients, Some(&injector))
                    .unwrap(),
            );
        }
        (fed.aggregator.params().to_vec(), records)
    };
    let (params_a, records_a) = run(());
    let (params_b, records_b) = run(());
    assert_eq!(params_a, params_b, "chaos replay must be bit-identical");
    assert_eq!(records_a, records_b);
    let turbulence: usize = records_a
        .iter()
        .map(|r| r.dropouts + r.stragglers + r.retransmits as usize)
        .sum();
    assert!(turbulence > 0, "chaos schedule injected nothing observable");
}

#[test]
fn training_under_faults_converges_near_fault_free() {
    let mut cfg = tiny_federation(4);
    cfg.allow_partial_results = true;
    cfg.round_deadline_ms = Some(50);
    cfg.seed = 5;
    let (mut clean, val) = build_iid_federation(&cfg, 3_000).unwrap();
    let (mut faulted, _) = build_iid_federation(&cfg, 3_000).unwrap();
    let injector = FaultInjector::from_spec(&chaos_spec(), cfg.population, 8);

    for _ in 0..8 {
        clean.aggregator.run_round(&mut clean.clients).unwrap();
        faulted
            .aggregator
            .run_round_with(&mut faulted.clients, Some(&injector))
            .unwrap();
    }
    let seq = 16;
    let eval = |fed: &photon_core::Federation| {
        let mut stream = photon_data::EvalStream::new(&val, seq);
        photon_nn::evaluate_perplexity(&fed.aggregator.global_model(), &mut stream, 16).perplexity
    };
    let clean_ppl = eval(&clean);
    let faulted_ppl = eval(&faulted);
    assert!(clean_ppl.is_finite() && faulted_ppl.is_finite());
    // Dropped and late clients cost some progress but must not derail
    // training: the faulted run stays within 2x of fault-free perplexity.
    assert!(
        faulted_ppl < clean_ppl * 2.0,
        "faulted {faulted_ppl} vs clean {clean_ppl}"
    );
}

#[test]
fn corruption_within_retransmit_budget_is_transparent() {
    // Corrupt-only faults within the retry budget are fully absorbed by
    // the Link: the run's parameters match a fault-free run exactly, and
    // the retries are visible in the round records.
    let mut cfg = tiny_federation(3);
    cfg.seed = 12;
    let spec = FaultSpec {
        p_crash: 0.0,
        p_straggle: 0.0,
        straggle_ms_max: 1,
        p_corrupt: 0.5,
        corrupt_attempts_max: 2,
        p_agg_crash: 0.0,
        ..FaultSpec::none(4)
    };
    let injector = FaultInjector::from_spec(&spec, cfg.population, 4);
    assert!(injector.plan().client_fault_count() > 0);

    let (mut clean, _) = build_iid_federation(&cfg, 3_000).unwrap();
    let (mut noisy, _) = build_iid_federation(&cfg, 3_000).unwrap();
    let mut retransmits = 0u64;
    let mut wire_overhead = 0i128;
    for _ in 0..4 {
        let c = clean.aggregator.run_round(&mut clean.clients).unwrap();
        let n = noisy
            .aggregator
            .run_round_with(&mut noisy.clients, Some(&injector))
            .unwrap();
        assert_eq!(n.dropouts, 0);
        retransmits += n.retransmits;
        wire_overhead += n.wire_bytes as i128 - c.wire_bytes as i128;
    }
    assert!(retransmits > 0, "no corruption was scheduled");
    assert!(wire_overhead > 0, "retries must cost wire bytes");
    assert_eq!(clean.aggregator.params(), noisy.aggregator.params());
}

#[test]
fn retransmit_budget_exhaustion_becomes_dropout() {
    let mut cfg = tiny_federation(4);
    cfg.allow_partial_results = true;
    cfg.retransmit.max_retries = 1;
    cfg.seed = 12;
    let spec = FaultSpec {
        p_crash: 0.0,
        p_straggle: 0.0,
        straggle_ms_max: 1,
        p_corrupt: 0.35,
        // More corrupted transmissions than the budget allows.
        corrupt_attempts_max: 5,
        p_agg_crash: 0.0,
        ..FaultSpec::none(11)
    };
    let injector = FaultInjector::from_spec(&spec, cfg.population, 6);
    let (mut fed, _) = build_iid_federation(&cfg, 3_000).unwrap();
    let mut dropouts = 0usize;
    for _ in 0..6 {
        let rec = fed
            .aggregator
            .run_round_with(&mut fed.clients, Some(&injector))
            .unwrap();
        dropouts += rec.dropouts;
    }
    assert!(dropouts > 0, "exhausted budgets should surface as dropouts");
    let faults = fed.aggregator.telemetry().fault_counters();
    assert_eq!(faults.link_dropouts as usize, dropouts);
}

#[test]
fn aggregator_crash_recovery_matches_uninterrupted_run() {
    let mut cfg = tiny_federation(3);
    cfg.allow_partial_results = true;
    cfg.round_deadline_ms = Some(50);
    cfg.server_opt = ServerOptKind::diloco_default();
    cfg.seed = 8;
    let rounds = 5;

    // The crashing schedule kills the aggregator after every round; the
    // control schedule shares every client fault but never crashes.
    let mut crashing = chaos_spec();
    crashing.p_agg_crash = 1.0;
    let mut control = crashing.clone();
    control.p_agg_crash = 0.0;
    let crash_inj = FaultInjector::from_spec(&crashing, cfg.population, rounds);
    let control_inj = FaultInjector::from_spec(&control, cfg.population, rounds);
    assert_eq!(crash_inj.plan().agg_crash_count(), rounds as usize);

    let run = |injector: &FaultInjector, dir: PathBuf, budget: u32| {
        let opts = TrainingOptions {
            run: RunOptions {
                rounds,
                eval_every: 0,
                eval_windows: 0,
                stop_below: None,
            },
            checkpoint_dir: Some(dir),
            checkpoint_every: 2,
            recovery_budget: budget,
            resume: false,
            metrics_json: None,
        };
        run_training(|| build_iid_federation(&cfg, 3_000), &opts, Some(injector)).unwrap()
    };
    let crashed = run(&crash_inj, tmp_dir("agg-crash"), 16);
    let control_run = run(&control_inj, tmp_dir("agg-control"), 0);

    assert_eq!(crashed.recoveries, rounds as u32);
    assert_eq!(control_run.recoveries, 0);
    assert_eq!(
        crashed.federation.aggregator.params(),
        control_run.federation.aggregator.params(),
        "recovery must replay the destroyed rounds bit-identically"
    );
    assert_eq!(crashed.history, control_run.history);
}

#[test]
fn driver_resume_matches_uninterrupted_run() {
    let mut cfg = tiny_federation(3);
    cfg.server_opt = ServerOptKind::FedMom {
        lr: 1.0,
        momentum: 0.9,
    };
    cfg.seed = 44;
    let opts = |rounds: u64, dir: PathBuf, resume: bool| TrainingOptions {
        run: RunOptions {
            rounds,
            eval_every: 3,
            eval_windows: 8,
            stop_below: None,
        },
        checkpoint_dir: Some(dir),
        checkpoint_every: 3,
        recovery_budget: 0,
        resume,
        metrics_json: None,
    };

    let full = run_training(
        || build_iid_federation(&cfg, 3_000),
        &opts(6, tmp_dir("resume-full"), false),
        None,
    )
    .unwrap();

    // Simulated process death after 3 rounds: a second driver invocation
    // resumes from the checkpoint directory.
    let dir = tmp_dir("resume-split");
    run_training(
        || build_iid_federation(&cfg, 3_000),
        &opts(3, dir.clone(), false),
        None,
    )
    .unwrap();
    let resumed = run_training(
        || build_iid_federation(&cfg, 3_000),
        &opts(6, dir, true),
        None,
    )
    .unwrap();

    assert_eq!(
        full.federation.aggregator.params(),
        resumed.federation.aggregator.params(),
        "driver resume must be bit-identical to the uninterrupted run"
    );
    // The final round's record (including its evaluation) matches too.
    assert_eq!(full.history.rounds.last(), resumed.history.rounds.last());
}
