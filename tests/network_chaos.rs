//! Network chaos integration tests: the deterministic link model and
//! partition schedule must keep training on track. A minority partition
//! costs little and heals cleanly; a below-quorum partition drives the
//! aggregator into degraded mode and back out; duplicating/reordering
//! links never double-apply an update; jittered retransmit exhaustion
//! surfaces as counted dropouts without stalling the round; a torn
//! checkpoint falls back to a clean restart; and the whole chaos stack
//! replays byte-identically under the simulated clock.

use photon_core::experiments::{build_iid_federation, RunOptions};
use photon_core::{
    run_training, AdaptiveDeadlineConfig, FaultInjector, FaultSpec, FederationConfig, LinkProfile,
    MembershipConfig, NetworkConfig, TrainingOptions,
};
use photon_fedopt::BufferConfig;
use photon_tests::tiny_federation;
use photon_trace::{ClockMode, TraceConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// The trace recorder is process-global; tests touching it serialize
/// behind this lock and reset it afterwards.
static RECORDER: Mutex<()> = Mutex::new(());

const TOKENS: usize = 3_000;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("photon-netchaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn run_opts(rounds: u64, metrics_json: Option<PathBuf>) -> TrainingOptions {
    TrainingOptions {
        run: RunOptions {
            rounds,
            eval_every: 0,
            eval_windows: 0,
            stop_below: None,
        },
        checkpoint_dir: None,
        checkpoint_every: 5,
        recovery_budget: 0,
        resume: false,
        metrics_json,
    }
}

/// Acceptance (a): a healing minority partition (1 of 4 clients, 25%)
/// finishes within 10% of the fault-free loss with zero rollbacks, and
/// the per-link stats land in the live metrics JSON.
#[test]
fn minority_partition_converges_near_fault_free() {
    let rounds = 6u64;
    let mut cfg = tiny_federation(4);
    cfg.seed = 31;
    cfg.allow_partial_results = true;
    cfg.network = Some(NetworkConfig {
        profile: LinkProfile {
            base_latency_ms: 20,
            jitter_ms: 10,
            ..LinkProfile::default()
        },
        ..NetworkConfig::default()
    });

    let clean = run_training(
        || build_iid_federation(&cfg, TOKENS),
        &run_opts(rounds, None),
        None,
    )
    .expect("fault-free run completes");

    let spec = FaultSpec::parse("partition@r1-r4:*|3,seed=7").expect("partition spec parses");
    let injector = FaultInjector::from_spec(&spec, cfg.population, rounds);
    assert_eq!(injector.plan().partition_count(), 1);
    let dir = tmp_dir("minority");
    let mjson = dir.join("metrics.json");
    let part = run_training(
        || build_iid_federation(&cfg, TOKENS),
        &run_opts(rounds, Some(mjson.clone())),
        Some(&injector),
    )
    .expect("partitioned run completes");

    assert_eq!(part.rollbacks, 0, "minority partition must not roll back");
    let unreachable: usize = part.history.rounds.iter().map(|r| r.unreachable).sum();
    assert_eq!(unreachable, 3, "client 3 unreachable in rounds 1-3");
    assert!(
        part.history.rounds.iter().all(|r| !r.degraded),
        "a 25% partition stays above the 50% quorum"
    );
    let clean_loss = clean.history.rounds.last().unwrap().mean_client_loss;
    let part_loss = part.history.rounds.last().unwrap().mean_client_loss;
    assert!(
        (part_loss - clean_loss).abs() <= clean_loss * 0.10,
        "partitioned loss {part_loss} drifted over 10% from fault-free {clean_loss}"
    );

    // Satellite: per-link delivery stats in the live metrics JSON.
    let metrics = fs::read_to_string(&mjson).expect("metrics json exists");
    for field in [
        "\"network\"",
        "\"latency_p50_ms\"",
        "\"latency_p99_ms\"",
        "\"deliveries\"",
        // Transport health counters ride in the same snapshot. A pure
        // Sim-mode run keeps them present-but-zero: the schema is shared
        // with `photon serve`, which fills them in for real.
        "\"transport\"",
        "\"reconnects\"",
        "\"heartbeat_misses\"",
        "\"session_resumes\"",
        "\"coordinator_restarts\"",
        "\"reconnects_by_client\"",
    ] {
        assert!(metrics.contains(field), "metrics json misses {field}");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Acceptance (b): a below-quorum partition (3 of 4 clients severed)
/// drives the aggregator into degraded mode — rounds record telemetry
/// but commit nothing — and it recovers automatically on heal, with the
/// counters matching. An unhealed partition stays degraded for good.
#[test]
fn below_quorum_partition_degrades_and_recovers() {
    let mut cfg = tiny_federation(4);
    cfg.seed = 13;
    cfg.allow_partial_results = true;
    cfg.network = Some(NetworkConfig::default());

    let spec = FaultSpec::parse("partition@r1-r3:0|1.2.3,seed=5").expect("partition spec parses");
    let injector = FaultInjector::from_spec(&spec, cfg.population, 5);
    let (mut fed, _) = build_iid_federation(&cfg, TOKENS).unwrap();
    let mut records = Vec::new();
    let mut params_after = Vec::new();
    for _ in 0..5 {
        records.push(
            fed.aggregator
                .run_round_with(&mut fed.clients, Some(&injector))
                .unwrap(),
        );
        params_after.push(fed.aggregator.params().to_vec());
    }
    assert!(!records[0].degraded);
    assert!(records[1].degraded && records[2].degraded);
    assert!(!records[3].degraded && !records[4].degraded);
    assert_eq!(records[1].unreachable, 3);
    // Degraded rounds commit nothing: params frozen until quorum returns.
    assert_eq!(
        params_after[0], params_after[2],
        "degraded rounds must not commit"
    );
    assert_ne!(
        params_after[2], params_after[3],
        "healed round resumes training"
    );
    let faults = fed.aggregator.telemetry().fault_counters();
    assert_eq!(faults.degraded_rounds, 2);
    assert_eq!(faults.degraded_recoveries, 1);
    assert_eq!(faults.partition_drops, 6, "3 severed clients over 2 rounds");

    // Without a heal round the aggregator never recovers.
    let spec = FaultSpec::parse("partition@r1:*|1.2.3,seed=5").expect("partition spec parses");
    let injector = FaultInjector::from_spec(&spec, cfg.population, 4);
    let (mut fed, _) = build_iid_federation(&cfg, TOKENS).unwrap();
    for _ in 0..4 {
        fed.aggregator
            .run_round_with(&mut fed.clients, Some(&injector))
            .unwrap();
    }
    let faults = fed.aggregator.telemetry().fault_counters();
    assert_eq!(faults.degraded_rounds, 3);
    assert_eq!(faults.degraded_recoveries, 0);
}

fn duplicating_network(dup_rate: f64) -> FederationConfig {
    let mut cfg = tiny_federation(4);
    cfg.seed = 37;
    cfg.allow_partial_results = true;
    cfg.network = Some(NetworkConfig {
        profile: LinkProfile {
            base_latency_ms: 15,
            jitter_ms: 5,
            bandwidth_kbps: 64,
            loss_rate: 0.15,
            dup_rate,
            reorder_window_ms: 40,
        },
        ..NetworkConfig::default()
    });
    cfg
}

/// Acceptance (c): a lossy, duplicating, reordering link never
/// double-applies an update. Toggling the duplication rate perturbs
/// nothing but the duplicates (fixed per-link draw count), so the
/// parameter trajectory matches the duplicate-free run bit for bit.
#[test]
fn duplicating_links_never_double_apply() {
    let run = |cfg: &FederationConfig| {
        let (mut fed, _) = build_iid_federation(cfg, TOKENS).unwrap();
        for _ in 0..5 {
            fed.aggregator.run_round(&mut fed.clients).unwrap();
        }
        let faults = fed.aggregator.telemetry().fault_counters();
        (fed.aggregator.params().to_vec(), faults)
    };
    let (clean_params, clean_faults) = run(&duplicating_network(0.0));
    let (dup_params, dup_faults) = run(&duplicating_network(0.6));
    assert_eq!(clean_faults.link_duplicates, 0);
    assert!(
        dup_faults.link_duplicates > 0,
        "no duplicates were generated"
    );
    assert_eq!(
        dup_faults.dup_drops, dup_faults.link_duplicates,
        "every duplicate delivery must be dropped by dedup"
    );
    assert_eq!(
        clean_params, dup_params,
        "duplicate deliveries must never double-apply an update"
    );
    assert_eq!(
        clean_faults.link_losses, dup_faults.link_losses,
        "toggling duplication must not perturb the loss draws"
    );
}

/// The buffered semi-sync path is equally immune: duplicate deliveries
/// are rejected before entering the staleness-weighted buffer.
#[test]
fn buffered_path_rejects_duplicate_deliveries() {
    let base = |dup_rate: f64| {
        let mut cfg = duplicating_network(dup_rate);
        cfg.seed = 41;
        cfg.membership = Some(MembershipConfig::default());
        cfg.buffer = Some(BufferConfig {
            quorum: 4,
            ..BufferConfig::default()
        });
        cfg
    };
    let run = |cfg: &FederationConfig| {
        let (mut fed, _) = build_iid_federation(cfg, TOKENS).unwrap();
        for _ in 0..5 {
            fed.aggregator.run_round(&mut fed.clients).unwrap();
        }
        (
            fed.aggregator.params().to_vec(),
            fed.aggregator.telemetry().fault_counters(),
        )
    };
    let (clean_params, _) = run(&base(0.0));
    let (dup_params, dup_faults) = run(&base(0.6));
    assert!(
        dup_faults.link_duplicates > 0,
        "no duplicates were generated"
    );
    assert_eq!(
        clean_params, dup_params,
        "buffered duplicates must never double-apply an update"
    );
}

/// Satellite: a client burning through the jittered retransmit budget is
/// counted in the fault counters, dropped into the partial-update path,
/// and the round still commits.
#[test]
fn jittered_retransmit_exhaustion_counts_and_commits() {
    let rounds = 6u64;
    let mut cfg = tiny_federation(4);
    cfg.seed = 19;
    cfg.allow_partial_results = true;
    cfg.retransmit.max_retries = 1;
    cfg.retransmit.jitter_pct = 50;
    cfg.retransmit.max_backoff_ms = 60;
    let spec = FaultSpec {
        p_corrupt: 0.35,
        // More corrupted transmissions than the budget allows.
        corrupt_attempts_max: 5,
        ..FaultSpec::none(11)
    };
    let injector = FaultInjector::from_spec(&spec, cfg.population, rounds);
    let outcome = run_training(
        || build_iid_federation(&cfg, TOKENS),
        &run_opts(rounds, None),
        Some(&injector),
    )
    .expect("run completes despite exhausted links");
    let dropouts: usize = outcome.history.rounds.iter().map(|r| r.dropouts).sum();
    assert!(dropouts > 0, "exhausted budgets should surface as dropouts");
    let faults = outcome.federation.aggregator.telemetry().fault_counters();
    assert_eq!(faults.link_dropouts as usize, dropouts);
    assert_eq!(
        outcome.history.rounds.len(),
        rounds as usize,
        "every round must commit"
    );
    assert_eq!(outcome.rollbacks, 0);
}

/// Satellite: a torn checkpoint (truncated params file) must not kill a
/// resume — the driver detects the corruption and falls back to a clean
/// start, reproducing the uninterrupted run exactly.
#[test]
fn corrupt_checkpoint_resume_restarts_cleanly() {
    let mut cfg = tiny_federation(3);
    cfg.seed = 23;
    let opts = |rounds: u64, dir: PathBuf, resume: bool| TrainingOptions {
        run: RunOptions {
            rounds,
            eval_every: 0,
            eval_windows: 0,
            stop_below: None,
        },
        checkpoint_dir: Some(dir),
        checkpoint_every: 2,
        recovery_budget: 2,
        resume,
        metrics_json: None,
    };
    let dir = tmp_dir("torn-resume");
    run_training(
        || build_iid_federation(&cfg, TOKENS),
        &opts(3, dir.clone(), false),
        None,
    )
    .expect("first leg completes");
    // Tear the checkpoint: a half-written params file.
    let params_path = dir.join("params.bin");
    let bytes = fs::read(&params_path).expect("params file exists");
    fs::write(&params_path, &bytes[..bytes.len() / 2]).expect("truncate params");

    let resumed = run_training(
        || build_iid_federation(&cfg, TOKENS),
        &opts(5, dir.clone(), true),
        None,
    )
    .expect("resume falls back instead of failing");
    let straight = run_training(
        || build_iid_federation(&cfg, TOKENS),
        &opts(5, tmp_dir("torn-straight"), false),
        None,
    )
    .expect("control run completes");
    assert_eq!(
        resumed.federation.aggregator.params(),
        straight.federation.aggregator.params(),
        "fallback restart must match an uninterrupted run"
    );
    assert_eq!(resumed.history.rounds.len(), 5);
    let _ = fs::remove_dir_all(&dir);
}

/// Acceptance (d): the full chaos stack — partitions, lossy links,
/// pinned slow links, duplication, reordering and the adaptive deadline
/// — replays byte-identically under the simulated clock.
#[test]
fn same_seed_network_chaos_traces_are_byte_identical() {
    let _guard = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    let mut traces = Vec::new();
    for run in 0..2 {
        photon_trace::reset_for_tests();
        let dir = tmp_dir(&format!("net-trace-{run}"));
        let jsonl = dir.join("trace.jsonl");
        photon_trace::init(TraceConfig {
            jsonl: Some(jsonl.clone()),
            prometheus: None,
            kernel_events: false,
            clock: ClockMode::Sim,
        })
        .expect("tracing initializes");

        let mut cfg = tiny_federation(4);
        cfg.seed = 29;
        cfg.allow_partial_results = true;
        cfg.network = Some(NetworkConfig {
            profile: LinkProfile {
                base_latency_ms: 25,
                jitter_ms: 10,
                bandwidth_kbps: 32,
                loss_rate: 0.2,
                dup_rate: 0.3,
                reorder_window_ms: 30,
            },
            ..NetworkConfig::default()
        });
        cfg.adaptive_deadline = Some(AdaptiveDeadlineConfig {
            percentile: 0.9,
            floor_ms: 50,
            ceiling_ms: 2_000,
            window: 32,
        });
        let spec = FaultSpec::parse(
            "partition@r1-r3:*|~2,lossy=0.2,slowlink@r1c0,straggle=0.15,straggle-ms=300,seed=13",
        )
        .expect("chaos spec parses");
        let injector = FaultInjector::from_spec(&spec, cfg.population, 4);
        let opts = TrainingOptions {
            run: RunOptions {
                rounds: 4,
                eval_every: 2,
                eval_windows: 4,
                stop_below: None,
            },
            checkpoint_dir: Some(dir.join("ckpt")),
            checkpoint_every: 2,
            recovery_budget: 2,
            resume: false,
            metrics_json: None,
        };
        run_training(
            || build_iid_federation(&cfg, TOKENS),
            &opts,
            Some(&injector),
        )
        .expect("chaos run completes");
        photon_trace::flush().expect("final flush succeeds");
        photon_trace::reset_for_tests();
        traces.push(fs::read_to_string(&jsonl).expect("trace file exists"));
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(
        traces[0].contains("net_partition"),
        "partition instants missing from the trace"
    );
    assert_eq!(traces[0], traces[1], "same-seed chaos traces differ");
}
