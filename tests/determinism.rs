//! Whole-system reproducibility: identical seeds produce identical runs,
//! different seeds do not — across threads, Link framing and aggregation.

use photon_core::experiments::{build_iid_federation, run_federation, RunOptions};
use photon_tests::tiny_federation;

fn run(seed: u64, rounds: u64) -> (Vec<f32>, Vec<f32>) {
    let mut cfg = tiny_federation(4);
    cfg.seed = seed;
    let (mut fed, val) = build_iid_federation(&cfg, 3_000).unwrap();
    let opts = RunOptions {
        rounds,
        eval_every: 0,
        eval_windows: 0,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    let losses = history.rounds.iter().map(|r| r.mean_client_loss).collect();
    (fed.aggregator.params().to_vec(), losses)
}

#[test]
fn same_seed_is_bit_identical_despite_threading() {
    let (params_a, losses_a) = run(777, 3);
    let (params_b, losses_b) = run(777, 3);
    assert_eq!(losses_a, losses_b);
    assert_eq!(params_a, params_b, "multi-threaded run not reproducible");
}

#[test]
fn different_seeds_differ() {
    let (params_a, _) = run(1, 2);
    let (params_b, _) = run(2, 2);
    assert_ne!(params_a, params_b);
}

#[test]
fn partial_participation_is_also_reproducible() {
    use photon_core::CohortSpec;
    let run = |seed: u64| {
        let mut cfg = tiny_federation(6);
        cfg.seed = seed;
        cfg.cohort = CohortSpec::Sample { k: 2 };
        let (mut fed, val) = build_iid_federation(&cfg, 3_000).unwrap();
        let opts = RunOptions {
            rounds: 4,
            eval_every: 0,
            eval_windows: 0,
            stop_below: None,
        };
        let history = run_federation(&mut fed, &val, &opts).unwrap();
        let cohorts: Vec<Vec<usize>> = history.rounds.iter().map(|r| r.cohort.clone()).collect();
        (fed.aggregator.params().to_vec(), cohorts)
    };
    let (pa, ca) = run(42);
    let (pb, cb) = run(42);
    assert_eq!(ca, cb, "client sampling not reproducible");
    assert_eq!(pa, pb);
}
