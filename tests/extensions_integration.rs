//! Integration tests for the §6 extension features: TIES aggregation,
//! telemetry (AggMetrics), and int8 update quantization.

use photon_comms::{dequantize_i8, quantize_i8};
use photon_core::experiments::{build_heterogeneous_federation, run_federation, RunOptions};
use photon_fedopt::AggregationKind;
use photon_tests::tiny_federation;

#[test]
fn ties_aggregation_trains_heterogeneous_federation() {
    let mut cfg = tiny_federation(4);
    cfg.aggregation = AggregationKind::Ties { density: 0.5 };
    let (mut fed, val) = build_heterogeneous_federation(&cfg, 8_000).unwrap();
    let opts = RunOptions {
        rounds: 6,
        eval_every: 2,
        eval_windows: 16,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts).unwrap();
    let evals: Vec<f64> = history.rounds.iter().filter_map(|r| r.eval_ppl).collect();
    assert!(
        evals.last().unwrap() < evals.first().unwrap(),
        "TIES-aggregated training failed to converge: {evals:?}"
    );
}

#[test]
fn ties_and_mean_agree_when_clients_agree() {
    // With IID data and identical seeds per run, TIES at full density and
    // mean aggregation should produce similar (not identical) trajectories;
    // both must converge.
    use photon_core::experiments::build_iid_federation;
    let run = |aggregation: AggregationKind| {
        let mut cfg = tiny_federation(2);
        cfg.aggregation = aggregation;
        cfg.seed = 11;
        let (mut fed, val) = build_iid_federation(&cfg, 4_000).unwrap();
        let opts = RunOptions {
            rounds: 6,
            eval_every: 6,
            eval_windows: 16,
            stop_below: None,
        };
        run_federation(&mut fed, &val, &opts)
            .unwrap()
            .final_ppl()
            .unwrap()
    };
    let mean = run(AggregationKind::Mean);
    let ties = run(AggregationKind::Ties { density: 1.0 });
    assert!(mean < 200.0 && ties < 200.0);
    assert!((mean - ties).abs() / mean < 0.5, "mean={mean} ties={ties}");
}

#[test]
fn telemetry_tracks_every_round() {
    let cfg = tiny_federation(3);
    let (mut fed, val) = build_heterogeneous_federation(&tiny_federation(4), 8_000)
        .or_else(|_| {
            // fall back: heterogeneous needs multiples of 4
            photon_core::experiments::build_iid_federation(&cfg, 4_000)
        })
        .unwrap();
    let opts = RunOptions {
        rounds: 5,
        eval_every: 0,
        eval_windows: 0,
        stop_below: None,
    };
    run_federation(&mut fed, &val, &opts).unwrap();

    let telemetry = fed.aggregator.telemetry();
    assert_eq!(telemetry.rounds_seen(), 5);
    let stats = telemetry.client_stats();
    assert_eq!(stats.len(), fed.clients.len());
    let cfg = fed.aggregator.config();
    let expect_tokens = 5 * cfg.local_steps * (cfg.local_batch * cfg.model.seq_len) as u64;
    for (_, s) in &stats {
        assert_eq!(s.rounds_participated, 5);
        assert_eq!(s.tokens, expect_tokens);
        assert!(s.mean_loss.is_finite() && s.mean_loss > 0.0);
    }
    // Full participation => perfectly balanced.
    assert_eq!(telemetry.participation_skew(), 1.0);
}

#[test]
fn quantized_updates_preserve_aggregation_quality() {
    // Simulate the §6 cross-device path: quantize each client's delta to
    // int8 before aggregation and verify the aggregate barely moves.
    use photon_fedopt::{aggregate_deltas, ClientUpdate};
    use photon_tensor::SeedStream;
    let mut rng = SeedStream::new(4);
    let updates: Vec<ClientUpdate> = (0..4)
        .map(|_| {
            ClientUpdate::new((0..5_000).map(|_| rng.next_normal() * 1e-2).collect(), 1.0).unwrap()
        })
        .collect();
    let exact = aggregate_deltas(&updates);
    let quantized: Vec<ClientUpdate> = updates
        .iter()
        .map(|u| {
            ClientUpdate::new(dequantize_i8(quantize_i8(&u.delta)).unwrap(), u.weight).unwrap()
        })
        .collect();
    let approx = aggregate_deltas(&quantized);

    let exact_norm = photon_tensor::ops::l2_norm(&exact);
    let err_norm = photon_tensor::ops::l2_norm(
        &exact
            .iter()
            .zip(&approx)
            .map(|(a, b)| a - b)
            .collect::<Vec<f32>>(),
    );
    assert!(
        err_norm < exact_norm * 0.05,
        "quantization error {err_norm} vs signal {exact_norm}"
    );
    // And the payload is ~4x smaller than raw f32.
    let raw = updates[0].delta.len() * 4;
    let q = quantize_i8(&updates[0].delta).len();
    assert!(q * 3 < raw, "quantized {q} vs raw {raw}");
}
