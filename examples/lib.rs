//! Support library for the Photon-RS examples.
//!
//! The runnable binaries live as `[[example]]` targets in this package:
//! `quickstart`, `heterogeneous_silos`, `cross_datacenter`,
//! `diloco_comparison` and `secure_link`. Run any of them with
//! `cargo run --release -p photon-examples --example <name>`.
