//! Secure aggregation and Link compression (paper §4).
//!
//! Runs three configurations of the same two-round federation — plain,
//! with lossless Link compression, and with secure aggregation — and
//! verifies that all three produce the same global model while the secure
//! variant hides every individual client update behind pairwise masks.
//!
//! Run with:
//! ```text
//! cargo run --release -p photon-examples --example secure_link
//! ```

use photon_comms::{compress_f32s, mask_update};
use photon_core::experiments::{build_iid_federation, run_federation, RunOptions};
use photon_core::FederationConfig;
use photon_nn::ModelConfig;
use photon_tensor::SeedStream;

fn train(compress: bool, secure: bool) -> Result<(Vec<f32>, u64), Box<dyn std::error::Error>> {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
    cfg.local_steps = 8;
    cfg.local_batch = 4;
    cfg.seed = 2024;
    cfg.compress_link = compress;
    cfg.secure_agg = secure;
    let (mut fed, val) = build_iid_federation(&cfg, 10_000)?;
    let opts = RunOptions {
        rounds: 2,
        eval_every: 0,
        eval_windows: 0,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts)?;
    Ok((fed.aggregator.params().to_vec(), history.total_wire_bytes()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("photon secure link example\n");
    let (plain, plain_bytes) = train(false, false)?;
    let (compressed, compressed_bytes) = train(true, false)?;
    let (secure, secure_bytes) = train(false, true)?;

    println!("configuration       | link traffic | max |Δparam| vs plain");
    println!("--------------------+--------------+-------------------------");
    let max_diff = |a: &[f32], b: &[f32]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    };
    println!(
        "plain               | {:>9.1} KB | {:>23}",
        plain_bytes as f64 / 1024.0,
        "-"
    );
    println!(
        "compressed link     | {:>9.1} KB | {:>23.2e}",
        compressed_bytes as f64 / 1024.0,
        max_diff(&plain, &compressed)
    );
    println!(
        "secure aggregation  | {:>9.1} KB | {:>23.2e}",
        secure_bytes as f64 / 1024.0,
        max_diff(&plain, &secure)
    );
    assert_eq!(plain, compressed, "compression must be lossless");
    assert!(
        max_diff(&plain, &secure) < 1e-2,
        "pairwise masks must cancel in aggregate"
    );

    // Show what the aggregator actually sees under secure aggregation.
    let mut update = vec![0.01f32; 6];
    let original = update.clone();
    mask_update(&mut update, 0, &[0, 1, 2], 7)?;
    println!("\none client's true update:   {original:?}");
    println!("what leaves the client:     {update:?}");

    // And how parameter payloads shrink on the wire.
    let mut rng = SeedStream::new(1);
    let params: Vec<f32> = (0..50_000).map(|_| rng.next_normal() * 0.02).collect();
    let compressed = compress_f32s(&params);
    println!(
        "\nlossless payload compression: {} KB -> {} KB ({:.1}%)",
        params.len() * 4 / 1024,
        compressed.len() / 1024,
        100.0 * compressed.len() as f64 / (params.len() * 4) as f64
    );
    println!("\nall three runs converged to the same global model.");
    Ok(())
}
