//! Text generation from a federated-trained model.
//!
//! Trains a tiny model across four heterogeneous silos, then samples
//! continuations in each domain's style — the qualitative counterpart of
//! the paper's downstream-utility evaluation (Appendix D.1). Since the
//! tokenizer is byte-level, the model's output is directly readable text.
//!
//! Run with:
//! ```text
//! cargo run --release -p photon-examples --example text_generation
//! ```

use photon_core::experiments::{build_heterogeneous_federation, run_federation, RunOptions};
use photon_core::FederationConfig;
use photon_nn::{generate, ModelConfig, SampleConfig};
use photon_optim::LrSchedule;
use photon_tensor::SeedStream;
use photon_tokenizer::{ByteTokenizer, Tokenizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
    cfg.local_steps = 16;
    cfg.local_batch = 8;
    cfg.schedule = LrSchedule::paper_cosine(6e-3, 10, 800);
    cfg.seed = 606;

    println!("training a tiny model across 4 heterogeneous silos (~50 rounds)...");
    let (mut fed, val) = build_heterogeneous_federation(&cfg, 40_000)?;
    let opts = RunOptions {
        rounds: 50,
        eval_every: 10,
        eval_windows: 32,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts)?;
    println!(
        "validation perplexity: {:.1} (vocab = 257, so random ≈ 257)\n",
        history.final_ppl().unwrap()
    );

    let model = fed.aggregator.global_model();
    let tokenizer = ByteTokenizer::new();
    let mut rng = SeedStream::new(9);
    let sample_cfg = SampleConfig {
        temperature: 0.7,
        top_k: 12,
    };

    for prompt in ["The ", "We ", "In the "] {
        let prompt_ids = tokenizer.encode(prompt);
        let continuation = generate(&model, &prompt_ids, 160, &sample_cfg, &mut rng);
        let text = tokenizer.decode(&continuation);
        println!("prompt {prompt:?}:");
        println!("  {prompt}{text}\n");
    }
    println!(
        "The model has learned the domains' letter statistics and word\n\
         shapes from federated training alone (the synthetic inventories\n\
         are letter-sampled words like 'gtal' or 'lhla'); longer training\n\
         at this scale recovers whole words and sentence punctuation."
    );
    Ok(())
}
