//! Cross-datacenter planning (paper Table 1, Fig. 2, Table 2).
//!
//! Walks the paper's five-region deployment: for each Table 1 silo it runs
//! Photon's hardware-aware strategy selection and batch autotuning, then
//! uses the Appendix B.1 wall-time model to compare aggregation topologies
//! for 7B-model training over the real inter-region bandwidths.
//!
//! Run with:
//! ```text
//! cargo run --release -p photon-examples --example cross_datacenter
//! ```

use photon_cluster::{
    autotune_batch, paper_silos, select_strategy, PaperModel, Region, RegionGraph,
    ThroughputSetting,
};
use photon_comms::{comm_time_seconds, Topology, WallTimeModel};

fn main() {
    println!("photon cross-datacenter planner\n");
    let graph = RegionGraph::paper();

    println!("inter-region bandwidth (Gbps, Fig. 2):");
    print!("{:>14}", "");
    for b in Region::all() {
        print!("{:>13}", b.name());
    }
    println!();
    for a in Region::all() {
        print!("{:>14}", a.name());
        for b in Region::all() {
            if a == b {
                print!("{:>13}", "-");
            } else {
                print!("{:>13.1}", graph.bandwidth_gbps(a, b));
            }
        }
        println!();
    }

    for model in [PaperModel::B7, PaperModel::B3] {
        let cfg = model.config();
        let silos = paper_silos(model.label());
        println!("\n=== {} model: Table 1 silos ===", model.label());
        println!(
            " {:<16} {:>5} {:>18} {:>12} {:>10}",
            "silo", "gpus", "strategy", "batch/gpu", "act-ckpt"
        );
        for silo in &silos {
            let strategy = select_strategy(&cfg, silo);
            let tune = autotune_batch(&cfg, silo.gpu(), strategy, 64);
            println!(
                " {:<16} {:>5} {:>18} {:>12} {:>10}",
                silo.name,
                silo.total_gpus(),
                strategy.to_string(),
                tune.per_gpu_batch,
                tune.activation_ckpt
            );
        }

        // Wall-time comparison of aggregation topologies over the real
        // region bandwidths (slowest link bound, Fig. 2 caption).
        let regions: Vec<Region> = silos.iter().map(|s| s.region).collect();
        let model_mb = cfg.param_bytes(2) as f64 / 1e6;
        let k = silos.len();
        let nu = model.nu(ThroughputSetting::Federated);
        println!(
            "\n model payload: {model_mb:.0} MB bf16 | K = {k} silos | nu = {nu} batches/s | tau = 500"
        );
        println!(
            " {:<20} {:>14} {:>14} {:>12}",
            "topology", "bottleneck", "comm/round", "% of round"
        );
        for topology in Topology::all() {
            let gbps = match topology {
                Topology::ParameterServer => graph.slowest_star_link(Region::England, &regions),
                _ => graph.slowest_ring_link(&regions),
            };
            let mbps = gbps * 1000.0 / 8.0;
            let wt = WallTimeModel::new(nu, 500, model_mb, mbps, topology);
            let round = wt.round_time(k);
            println!(
                " {:<20} {:>10.1} Gbps {:>12.1} s {:>11.2}%",
                topology.to_string(),
                gbps,
                round.comm_s,
                100.0 * round.comm_fraction()
            );
        }
        let _ = comm_time_seconds(Topology::RingAllReduce, k, model_mb, 1250.0);
    }

    println!(
        "\nAs in the paper, Ring-AllReduce pays the Maharashtra–Quebec\n\
         bottleneck but still moves the least data, while the parameter\n\
         server is gated by England's slowest spoke."
    );
}
