//! Quickstart: federated pre-training of a tiny LLM with Photon-RS.
//!
//! Builds a four-client federation over IID shards of synthetic web text,
//! trains for a handful of rounds, and prints the global model's
//! validation perplexity after each round.
//!
//! Run with:
//! ```text
//! cargo run --release -p photon-examples --example quickstart
//! ```

use photon_core::experiments::{build_iid_federation, run_federation, RunOptions};
use photon_core::FederationConfig;
use photon_nn::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CPU-trainable proxy model (~42k parameters; see DESIGN.md for the
    // mapping onto the paper's 125M-7B families).
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
    cfg.local_steps = 16; // tau: local steps per round
    cfg.local_batch = 8; // B_l: hardware-determined local batch size
    println!(
        "photon quickstart: {} | {} clients",
        cfg.model, cfg.population
    );
    println!(
        "global batch B_g = N x B_l = {} | server opt: FedAvg",
        cfg.global_batch()
    );

    let (mut fed, val) = build_iid_federation(&cfg, 20_000)?;
    let opts = RunOptions {
        rounds: 12,
        eval_every: 1,
        eval_windows: 48,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts)?;

    println!("\n round | client loss | val ppl  | pseudo-grad norm | wire KB");
    println!(" ------+-------------+----------+------------------+--------");
    for r in &history.rounds {
        println!(
            " {:>5} | {:>11.4} | {:>8.3} | {:>16.4} | {:>6.1}",
            r.round,
            r.mean_client_loss,
            r.eval_ppl.unwrap_or(f64::NAN),
            r.pseudo_grad_norm,
            r.wire_bytes as f64 / 1024.0
        );
    }
    println!(
        "\nbest validation perplexity: {:.3} (started near {:.0} = vocab size)",
        history.best_ppl().unwrap(),
        cfg.model.vocab_size as f64
    );
    println!(
        "total Link traffic: {:.1} KB",
        history.total_wire_bytes() as f64 / 1024.0
    );
    Ok(())
}
