//! Heterogeneous cross-silo federation (paper §5.5 / Fig. 7).
//!
//! Sixteen clients hold Pile-style heterogeneous data (four synthetic
//! domains: arxiv, web, wiki, prose — four clients each). We train once
//! with full participation and once sampling 25% of clients per round, and
//! compare convergence on the union validation set.
//!
//! Run with:
//! ```text
//! cargo run --release -p photon-examples --example heterogeneous_silos
//! ```

use photon_core::experiments::{build_heterogeneous_federation, run_federation, RunOptions};
use photon_core::{CohortSpec, FederationConfig};
use photon_nn::ModelConfig;

fn run(sample_frac: Option<f64>) -> Result<Vec<Option<f64>>, Box<dyn std::error::Error>> {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 16);
    cfg.local_steps = 8;
    cfg.local_batch = 4;
    cfg.seed = 1234;
    if let Some(frac) = sample_frac {
        let k = ((16.0 * frac).round() as usize).max(1);
        cfg.cohort = CohortSpec::Sample { k };
    }
    let (mut fed, val) = build_heterogeneous_federation(&cfg, 40_000)?;
    println!(
        "  cohort: {} of 16 clients/round | domains: {:?}",
        cfg.cohort_size(),
        fed.clients
            .iter()
            .take(4)
            .map(|c| c.data_source().name().to_string())
            .collect::<Vec<_>>()
    );
    let opts = RunOptions {
        rounds: 10,
        eval_every: 1,
        eval_windows: 32,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts)?;
    Ok(history.rounds.iter().map(|r| r.eval_ppl).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("photon heterogeneous-silos example (Pile-style domains)\n");
    println!("full participation (100%):");
    let full = run(None)?;
    println!("partial participation (25%):");
    let partial = run(Some(0.25))?;

    println!("\n round | full-part ppl | 25%-part ppl");
    println!(" ------+---------------+-------------");
    for (i, (f, p)) in full.iter().zip(&partial).enumerate() {
        println!(
            " {:>5} | {:>13.3} | {:>11.3}",
            i,
            f.unwrap_or(f64::NAN),
            p.unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nAs in the paper (Fig. 7), partial participation fluctuates more\n\
         across rounds because the global model only intermittently sees\n\
         each domain, while full participation tracks the IID behaviour."
    );
    Ok(())
}
