//! Continual pre-training & personalization (paper §6).
//!
//! The paper argues a Photon-pre-trained global model is a strong
//! initialization for per-client personalization. This example pre-trains
//! a global model across four heterogeneous silos, then lets each client
//! fine-tune its own copy on its private domain, and compares each
//! domain's perplexity under (a) the shared global model and (b) the
//! personalized one — from-scratch local training is shown for contrast.
//!
//! Run with:
//! ```text
//! cargo run --release -p photon-examples --example personalization
//! ```

use photon_core::experiments::{build_heterogeneous_federation, run_federation, RunOptions};
use photon_core::{CentralizedTrainer, FederationConfig};
use photon_data::EvalStream;
use photon_nn::{evaluate_perplexity, Gpt, ModelConfig};
use photon_optim::LrSchedule;
use photon_tensor::SeedStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
    cfg.local_steps = 12;
    cfg.local_batch = 8;
    cfg.schedule = LrSchedule::paper_cosine(6e-3, 10, 600);
    cfg.seed = 31;

    println!("phase 1: federated pre-training across 4 heterogeneous silos...");
    let (mut fed, val) = build_heterogeneous_federation(&cfg, 30_000)?;
    let opts = RunOptions {
        rounds: 14,
        eval_every: 7,
        eval_windows: 32,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts)?;
    println!(
        "  global model union-validation ppl: {:.2}",
        history.final_ppl().unwrap()
    );

    println!("\nphase 2: per-client personalization (fine-tune on own domain)...");
    println!(
        "\n {:<10} {:>12} {:>14} {:>14}",
        "domain", "global ppl", "personal ppl", "scratch ppl"
    );
    let fine_tune_steps = 60u64;
    for client in &fed.clients {
        let ds = client.data_source();
        let domain = ds.name().split('-').next().unwrap_or("?").to_string();

        // Build a domain-specific validation stream from the client's own
        // shard tail (held out from fine-tuning by sampling windows).
        let val_tokens: Vec<u32> = {
            let mut stream = ds.bind_stream(SeedStream::new(999));
            let mut batch = photon_data::Batch::zeros(1, 32);
            let mut v = Vec::new();
            for _ in 0..40 {
                stream.next_batch(&mut batch);
                v.extend_from_slice(&batch.inputs);
            }
            v
        };
        let val_corpus = photon_data::TokenCorpus::new(format!("{domain}-val"), val_tokens);
        let mut eval = EvalStream::new(&val_corpus, 32);

        // (a) the shared global model.
        let global = fed.aggregator.global_model();
        let global_ppl = evaluate_perplexity(&global, &mut eval, 24).perplexity;

        // (b) personalization: continue training from the global weights.
        let personalized = fine_tune(
            Gpt::from_params(cfg.model, fed.aggregator.params().to_vec()),
            client,
            fine_tune_steps,
            &cfg,
        );
        let personal_ppl = evaluate_perplexity(&personalized, &mut eval, 24).perplexity;

        // (c) from-scratch local training with the same budget.
        let scratch = fine_tune(
            Gpt::new(cfg.model, &mut SeedStream::new(1)),
            client,
            fine_tune_steps,
            &cfg,
        );
        let scratch_ppl = evaluate_perplexity(&scratch, &mut eval, 24).perplexity;

        println!(
            " {:<10} {:>12.2} {:>14.2} {:>14.2}",
            domain, global_ppl, personal_ppl, scratch_ppl
        );
    }
    println!(
        "\nAs §6 predicts, starting personalization from the federated\n\
         model beats the same budget spent from scratch, and usually\n\
         improves on the shared global model for the client's own domain."
    );
    Ok(())
}

fn fine_tune(
    model: Gpt,
    client: &photon_core::LlmClient,
    steps: u64,
    cfg: &FederationConfig,
) -> Gpt {
    let stream = client.data_source().bind_stream(SeedStream::new(7));
    let mut trainer = CentralizedTrainer::new(
        cfg.model,
        cfg.local_batch,
        cfg.adamw,
        LrSchedule::paper_cosine(2e-3, 5, steps),
        cfg.grad_clip,
        stream,
        11,
    );
    // Seed the trainer with the provided weights rather than fresh init.
    trainer.set_params(model.params());
    trainer.train_steps(steps);
    trainer.model().clone()
}
