//! Photon vs DiLoCo (paper §5.3, Table 3, Fig. 8).
//!
//! Trains the same federation twice — once with Photon's FedAvg server
//! optimizer (lr 1.0) and once with DiLoCo's outer Nesterov SGD at the
//! paper's tuned η_s = 0.1 — and reports perplexity round by round.
//!
//! Run with:
//! ```text
//! cargo run --release -p photon-examples --example diloco_comparison
//! ```

use photon_core::experiments::{build_iid_federation, run_federation, RunOptions};
use photon_core::FederationConfig;
use photon_fedopt::ServerOptKind;
use photon_nn::ModelConfig;

fn run(server_opt: ServerOptKind) -> Result<Vec<Option<f64>>, Box<dyn std::error::Error>> {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
    cfg.local_steps = 16;
    cfg.local_batch = 8;
    cfg.server_opt = server_opt;
    cfg.seed = 99;
    let (mut fed, val) = build_iid_federation(&cfg, 20_000)?;
    let opts = RunOptions {
        rounds: 12,
        eval_every: 1,
        eval_windows: 32,
        stop_below: None,
    };
    let history = run_federation(&mut fed, &val, &opts)?;
    Ok(history.rounds.iter().map(|r| r.eval_ppl).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("photon vs diloco (N = 4 clients, identical data and seeds)\n");
    let photon = run(ServerOptKind::photon_default())?;
    let diloco = run(ServerOptKind::diloco_default())?;

    println!(" round | photon ppl | diloco ppl (eta_s = 0.1)");
    println!(" ------+------------+--------------------------");
    for (i, (p, d)) in photon.iter().zip(&diloco).enumerate() {
        println!(
            " {:>5} | {:>10.3} | {:>10.3}",
            i,
            p.unwrap_or(f64::NAN),
            d.unwrap_or(f64::NAN)
        );
    }

    // Rounds each method needs to reach the same milestone.
    let target = photon
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .max(
            diloco
                .iter()
                .flatten()
                .copied()
                .fold(f64::INFINITY, f64::min),
        )
        * 1.15;
    let first_below = |xs: &[Option<f64>]| {
        xs.iter()
            .position(|p| p.is_some_and(|p| p <= target))
            .map(|i| i + 1)
    };
    println!(
        "\nrounds to reach ppl {:.2}: photon = {:?}, diloco = {:?}",
        target,
        first_below(&photon),
        first_below(&diloco)
    );
    println!(
        "DiLoCo's tuned eta_s = 0.1 discounts each round's aggregated\n\
         update, so it needs roughly twice the rounds (and wall time) of\n\
         Photon's FedAvg — the paper's Table 3."
    );
    Ok(())
}
