//! Bounded retransmit with deterministic jittered backoff for the Link
//! layer.
//!
//! Photon's Link (§4) must absorb transient corruption and loss: a result
//! frame whose CRC check fails — or that never arrives — is re-requested
//! instead of failing the round. This module simulates that delivery loop
//! deterministically: corruption and loss are injected by caller-supplied
//! schedules (normally seeded fault-plan / network-model entries from the
//! federation engine), every corrupted attempt is *actually* decoded so
//! the CRC path is exercised, and the retry budget, capped exponential
//! backoff, seeded jitter and per-delivery timeout are fixed policy, so a
//! chaos run replays bit-identically.

use crate::{decode_frame, WireError};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Retransmission policy for a Link endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetransmitPolicy {
    /// Retransmissions allowed after the first attempt (so a frame is
    /// transmitted at most `1 + max_retries` times).
    pub max_retries: u32,
    /// Backoff before retry `n` (1-based) is `backoff_base_ms << (n - 1)`,
    /// simulated wall-clock only — nothing sleeps.
    pub backoff_base_ms: u64,
    /// Jitter as a percentage of each backoff: retry `n` backs off
    /// `backoff_ms(n) + U[0, backoff_ms(n) * jitter_pct / 100]`, the draw
    /// keyed off the delivery seed. `0` (the default) disables jitter and
    /// reproduces the legacy fixed schedule bit-for-bit.
    #[serde(default)]
    pub jitter_pct: u32,
    /// Cap on any single (jittered) backoff in simulated ms; `0` means
    /// uncapped.
    #[serde(default)]
    pub max_backoff_ms: u64,
    /// Per-delivery timeout over accumulated simulated time (latency of
    /// every attempt plus all backoff) in ms; `0` disables it. A delivery
    /// that would exceed the timeout gives up even with retries left.
    #[serde(default)]
    pub timeout_ms: u64,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            max_retries: 3,
            backoff_base_ms: 10,
            jitter_pct: 0,
            max_backoff_ms: 0,
            timeout_ms: 0,
        }
    }
}

impl RetransmitPolicy {
    /// Simulated backoff before the `n`-th retry (1-based, deterministic
    /// exponential, saturating), before jitter and capping.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        self.backoff_base_ms.saturating_mul(
            1u64.checked_shl(retry.saturating_sub(1))
                .unwrap_or(u64::MAX),
        )
    }

    /// Backoff before the `n`-th retry with seeded jitter applied and the
    /// `max_backoff_ms` cap enforced. With `jitter_pct == 0` this equals
    /// [`RetransmitPolicy::backoff_ms`] (modulo the cap), so legacy
    /// configurations replay unchanged.
    pub fn jittered_backoff_ms(&self, retry: u32, seed: u64) -> u64 {
        let base = self.backoff_ms(retry);
        let jittered = if self.jitter_pct == 0 {
            base
        } else {
            let span = base
                .saturating_mul(self.jitter_pct as u64)
                .saturating_div(100)
                .saturating_add(1);
            // One splitmix-style mix of (seed, retry): deterministic,
            // uniform enough for backoff de-synchronisation.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(retry as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            base.saturating_add((z ^ (z >> 31)) % span)
        };
        if self.max_backoff_ms > 0 {
            jittered.min(self.max_backoff_ms)
        } else {
            jittered
        }
    }
}

/// Delivery failed even after exhausting the retransmit budget (or the
/// per-delivery timeout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkExhausted {
    /// Total transmission attempts made.
    pub attempts: u32,
    /// The decode error from the final attempt.
    pub last_error: WireError,
    /// `true` when the per-delivery timeout fired before the retry budget
    /// was exhausted.
    pub timed_out: bool,
}

impl fmt::Display for LinkExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.timed_out {
            write!(
                f,
                "link delivery timed out after {} attempt(s): {}",
                self.attempts, self.last_error
            )
        } else {
            write!(
                f,
                "link delivery failed after {} attempt(s): {}",
                self.attempts, self.last_error
            )
        }
    }
}

impl std::error::Error for LinkExhausted {}

/// What one delivery cost: attempts, total bytes pushed on the wire
/// (every attempt re-sends the whole frame), accumulated simulated
/// backoff and in-flight latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Transmission attempts (1 = clean first try).
    pub attempts: u32,
    /// Bytes transmitted across all attempts.
    pub wire_bytes: u64,
    /// Simulated milliseconds spent backing off between attempts.
    pub backoff_ms: u64,
    /// Simulated milliseconds spent in flight (per-attempt link latency
    /// summed over every attempt; 0 without a network model).
    pub latency_ms: u64,
}

/// Flips one payload bit of `frame`, position derived deterministically
/// from `seed` — the corruption the CRC is designed to catch. Frames too
/// short to carry a payload get one of their header bytes flipped through
/// the same position arithmetic; empty frames pass through untouched
/// (there is nothing to corrupt, and `decode_frame` already rejects them
/// as truncated).
pub fn corrupt_frame(frame: &Bytes, seed: u64) -> Bytes {
    let mut raw = frame.to_vec();
    if raw.is_empty() {
        return Bytes::new();
    }
    // Header is 24 bytes; corrupt within the payload when there is one,
    // otherwise anywhere in the (short) frame.
    let (lo, span) = if raw.len() > 24 {
        (24, raw.len() - 24)
    } else {
        (0, raw.len())
    };
    let pos = lo + (seed as usize) % span;
    let bit = (seed >> 32) % 8;
    raw[pos] ^= 1 << bit;
    Bytes::from(raw)
}

/// Delivers `frame` across a lossy link: attempt `a` (0-based) transmits a
/// corrupted copy whenever `a < corrupt_first`, the receiver decodes (CRC
/// check) and requests a retransmission on failure, up to
/// `policy.max_retries` times.
///
/// `seed` keys the injected bit flips so a replay corrupts the same bits.
/// Returns the first frame that decoded cleanly plus the delivery cost.
///
/// # Errors
/// Returns [`LinkExhausted`] when every allowed attempt was corrupted.
pub fn deliver(
    frame: &Bytes,
    corrupt_first: u32,
    seed: u64,
    policy: &RetransmitPolicy,
) -> (Result<Bytes, LinkExhausted>, DeliveryReport) {
    deliver_chaos(frame, corrupt_first, 0, 0, seed, policy)
}

/// Delivers `frame` across a chaotic link: the first `lost_first` attempts
/// vanish in flight (the receiver times out and requests a retransmit),
/// the next `corrupt_first` attempts arrive corrupted and fail the CRC
/// check, and each attempt costs `latency_ms` of simulated in-flight time.
/// Retries follow `policy`'s capped, jittered exponential backoff, and the
/// per-delivery timeout (when set) bounds the total simulated time spent.
///
/// `deliver` is the special case `lost_first == 0, latency_ms == 0`.
///
/// # Errors
/// Returns [`LinkExhausted`] when every allowed attempt failed or the
/// timeout fired first.
pub fn deliver_chaos(
    frame: &Bytes,
    corrupt_first: u32,
    lost_first: u32,
    latency_ms: u64,
    seed: u64,
    policy: &RetransmitPolicy,
) -> (Result<Bytes, LinkExhausted>, DeliveryReport) {
    let mut link_span = photon_trace::span(photon_trace::Phase::LinkDeliver);
    let (result, report) =
        deliver_inner(frame, corrupt_first, lost_first, latency_ms, seed, policy);
    link_span.set_arg("attempts", report.attempts as u64);
    link_span.set_arg("wire_bytes", report.wire_bytes);
    link_span.set_sim_dur_us(
        report
            .backoff_ms
            .saturating_add(report.latency_ms)
            .saturating_mul(1_000),
    );
    photon_trace::counter_add("link.deliveries", 1);
    photon_trace::counter_add("link.wire_bytes", report.wire_bytes);
    photon_trace::observe("link.frame_bytes", frame.len() as u64);
    if lost_first > 0 {
        photon_trace::counter_add("link.losses", lost_first.min(report.attempts) as u64);
    }
    if report.attempts > 1 {
        photon_trace::counter_add("link.retransmits", (report.attempts - 1) as u64);
        for retry in 1..report.attempts {
            photon_trace::instant(
                photon_trace::Phase::LinkRetransmit,
                "link_retransmit",
                &[
                    ("retry", retry as u64),
                    ("backoff_ms", policy.jittered_backoff_ms(retry, seed)),
                ],
            );
        }
    }
    (result, report)
}

fn deliver_inner(
    frame: &Bytes,
    corrupt_first: u32,
    lost_first: u32,
    latency_ms: u64,
    seed: u64,
    policy: &RetransmitPolicy,
) -> (Result<Bytes, LinkExhausted>, DeliveryReport) {
    let mut report = DeliveryReport::default();
    let mut last_error = WireError::Truncated;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            let backoff = policy.jittered_backoff_ms(attempt, seed);
            // A retry that would blow the per-delivery timeout gives up
            // before waiting out the backoff or re-sending.
            let elapsed = report
                .backoff_ms
                .saturating_add(backoff)
                .saturating_add(report.latency_ms)
                .saturating_add(latency_ms);
            if policy.timeout_ms > 0 && elapsed > policy.timeout_ms {
                return (
                    Err(LinkExhausted {
                        attempts: report.attempts,
                        last_error,
                        timed_out: true,
                    }),
                    report,
                );
            }
            report.backoff_ms += backoff;
        }
        report.attempts += 1;
        report.wire_bytes += frame.len() as u64;
        report.latency_ms = report.latency_ms.saturating_add(latency_ms);
        if attempt < lost_first {
            // Lost in flight: nothing reaches the receiver; its timeout
            // triggers the retransmit request.
            last_error = WireError::Truncated;
            continue;
        }
        let sent = if attempt < lost_first + corrupt_first {
            corrupt_frame(frame, seed.wrapping_add(attempt as u64))
        } else {
            frame.clone()
        };
        // Receiver-side integrity check: a corrupted frame MUST fail here;
        // anything that decodes is delivered as-is.
        match decode_frame(sent.clone()) {
            Ok(_) => return (Ok(sent), report),
            Err(e) => last_error = e,
        }
    }
    (
        Err(LinkExhausted {
            attempts: report.attempts,
            last_error,
            timed_out: false,
        }),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_frame;

    fn frame() -> Bytes {
        encode_frame(b"pseudo-gradient payload bytes", false)
    }

    #[test]
    fn clean_delivery_is_one_attempt() {
        let f = frame();
        let (out, report) = deliver(&f, 0, 7, &RetransmitPolicy::default());
        assert_eq!(out.unwrap(), f);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.wire_bytes, f.len() as u64);
        assert_eq!(report.backoff_ms, 0);
    }

    #[test]
    fn corruption_within_budget_recovers() {
        let f = frame();
        let policy = RetransmitPolicy::default(); // 3 retries
        let (out, report) = deliver(&f, 2, 7, &policy);
        assert_eq!(out.unwrap(), f);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.wire_bytes, 3 * f.len() as u64);
        // Backoff 10ms then 20ms.
        assert_eq!(report.backoff_ms, 10 + 20);
    }

    #[test]
    fn budget_exhaustion_reports_the_crc_error() {
        let f = frame();
        let policy = RetransmitPolicy {
            max_retries: 2,
            backoff_base_ms: 5,
            ..RetransmitPolicy::default()
        };
        let (out, report) = deliver(&f, 99, 7, &policy);
        let err = out.unwrap_err();
        assert_eq!(err.attempts, 3);
        assert!(matches!(err.last_error, WireError::BadChecksum { .. }));
        assert!(!err.timed_out);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.backoff_ms, 5 + 10);
        assert!(err.to_string().contains("3 attempt(s)"));
    }

    #[test]
    fn delivery_is_deterministic() {
        let f = frame();
        let policy = RetransmitPolicy::default();
        let a = deliver(&f, 2, 99, &policy);
        let b = deliver(&f, 2, 99, &policy);
        assert_eq!(a.0.is_ok(), b.0.is_ok());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn corrupt_frame_always_fails_decode() {
        let f = frame();
        for seed in 0..64u64 {
            let bad = corrupt_frame(&f, seed);
            assert_ne!(bad, f);
            assert!(decode_frame(bad).is_err(), "seed {seed} slipped through");
        }
    }

    #[test]
    fn corrupt_frame_handles_empty_and_short_frames() {
        // 0–32-byte frames: no underflow, no panic; non-empty frames must
        // actually differ from the input.
        for len in 0usize..=32 {
            let raw = Bytes::from(vec![0xA5u8; len]);
            for seed in [0u64, 1, 23, u64::MAX, 0x1234_5678_9abc_def0] {
                let out = corrupt_frame(&raw, seed);
                assert_eq!(out.len(), raw.len());
                if len == 0 {
                    assert_eq!(out, raw, "empty frames pass through");
                } else {
                    assert_ne!(out, raw, "len {len} seed {seed} unchanged");
                }
            }
        }
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let p = RetransmitPolicy {
            max_retries: 80,
            backoff_base_ms: 10,
            ..RetransmitPolicy::default()
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(5), 160);
        assert_eq!(p.backoff_ms(70), u64::MAX); // shift overflow saturates
    }

    #[test]
    fn jitter_is_seeded_bounded_and_off_by_default() {
        let plain = RetransmitPolicy::default();
        for retry in 1..6 {
            assert_eq!(
                plain.jittered_backoff_ms(retry, 42),
                plain.backoff_ms(retry),
                "jitter_pct 0 must reproduce the legacy schedule"
            );
        }
        let jittery = RetransmitPolicy {
            jitter_pct: 50,
            ..RetransmitPolicy::default()
        };
        let mut saw_jitter = false;
        for seed in 0..32u64 {
            for retry in 1..5 {
                let base = jittery.backoff_ms(retry);
                let j = jittery.jittered_backoff_ms(retry, seed);
                assert!(j >= base && j <= base + base / 2 + 1);
                assert_eq!(j, jittery.jittered_backoff_ms(retry, seed));
                saw_jitter |= j != base;
            }
        }
        assert!(saw_jitter, "50% jitter never moved a backoff");
    }

    #[test]
    fn backoff_cap_clamps_the_schedule() {
        let p = RetransmitPolicy {
            max_retries: 10,
            backoff_base_ms: 10,
            jitter_pct: 25,
            max_backoff_ms: 35,
            timeout_ms: 0,
        };
        for retry in 1..10 {
            assert!(p.jittered_backoff_ms(retry, 7) <= 35);
        }
        assert_eq!(p.jittered_backoff_ms(9, 7), 35);
    }

    #[test]
    fn lost_attempts_consume_budget_then_recover() {
        let f = frame();
        let policy = RetransmitPolicy::default();
        let (out, report) = deliver_chaos(&f, 0, 2, 30, 7, &policy);
        assert_eq!(out.unwrap(), f);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.latency_ms, 90, "every attempt pays link latency");
        assert_eq!(report.backoff_ms, 10 + 20);
    }

    #[test]
    fn loss_and_corruption_chain_before_the_clean_attempt() {
        let f = frame();
        let policy = RetransmitPolicy {
            max_retries: 4,
            ..RetransmitPolicy::default()
        };
        let (out, report) = deliver_chaos(&f, 1, 1, 0, 7, &policy);
        assert_eq!(out.unwrap(), f);
        assert_eq!(report.attempts, 3, "1 lost + 1 corrupt + 1 clean");
    }

    #[test]
    fn per_delivery_timeout_fires_before_budget_exhaustion() {
        let f = frame();
        let policy = RetransmitPolicy {
            max_retries: 50,
            backoff_base_ms: 10,
            jitter_pct: 0,
            max_backoff_ms: 0,
            timeout_ms: 100,
        };
        let (out, report) = deliver_chaos(&f, 99, 0, 0, 7, &policy);
        let err = out.unwrap_err();
        assert!(err.timed_out);
        assert!(err.to_string().contains("timed out"));
        // Backoff 10+20+40 = 70 fits; +80 would exceed 100.
        assert_eq!(report.attempts, 4);
        assert!(report.backoff_ms <= policy.timeout_ms);
    }

    #[test]
    fn chaos_delivery_is_deterministic() {
        let f = frame();
        let policy = RetransmitPolicy {
            jitter_pct: 30,
            timeout_ms: 500,
            ..RetransmitPolicy::default()
        };
        let a = deliver_chaos(&f, 1, 1, 25, 99, &policy);
        let b = deliver_chaos(&f, 1, 1, 25, 99, &policy);
        assert_eq!(a.0.is_ok(), b.0.is_ok());
        assert_eq!(a.1, b.1);
    }
}
