//! Bounded retransmit with deterministic backoff for the Link layer.
//!
//! Photon's Link (§4) must absorb transient corruption: a result frame
//! whose CRC check fails is re-requested instead of failing the round.
//! This module simulates that delivery loop deterministically — corruption
//! is injected by a caller-supplied schedule (normally a seeded fault-plan
//! entry from the federation engine), every corrupted attempt is
//! *actually* decoded so the CRC path is exercised, and the retry budget
//! and exponential backoff are fixed policy, so a chaos run replays
//! bit-identically.

use crate::{decode_frame, WireError};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Retransmission policy for a Link endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetransmitPolicy {
    /// Retransmissions allowed after the first attempt (so a frame is
    /// transmitted at most `1 + max_retries` times).
    pub max_retries: u32,
    /// Backoff before retry `n` (1-based) is `backoff_base_ms << (n - 1)`,
    /// simulated wall-clock only — nothing sleeps.
    pub backoff_base_ms: u64,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            max_retries: 3,
            backoff_base_ms: 10,
        }
    }
}

impl RetransmitPolicy {
    /// Simulated backoff before the `n`-th retry (1-based, deterministic
    /// exponential, saturating).
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        self.backoff_base_ms.saturating_mul(
            1u64.checked_shl(retry.saturating_sub(1))
                .unwrap_or(u64::MAX),
        )
    }
}

/// Delivery failed even after exhausting the retransmit budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkExhausted {
    /// Total transmission attempts made.
    pub attempts: u32,
    /// The decode error from the final attempt.
    pub last_error: WireError,
}

impl fmt::Display for LinkExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "link delivery failed after {} attempt(s): {}",
            self.attempts, self.last_error
        )
    }
}

impl std::error::Error for LinkExhausted {}

/// What one delivery cost: attempts, total bytes pushed on the wire
/// (every attempt re-sends the whole frame) and accumulated simulated
/// backoff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Transmission attempts (1 = clean first try).
    pub attempts: u32,
    /// Bytes transmitted across all attempts.
    pub wire_bytes: u64,
    /// Simulated milliseconds spent backing off between attempts.
    pub backoff_ms: u64,
}

/// Flips one payload bit of `frame`, position derived deterministically
/// from `seed` — the corruption the CRC is designed to catch. Frames too
/// short to carry a payload get their last header byte flipped instead.
pub fn corrupt_frame(frame: &Bytes, seed: u64) -> Bytes {
    let mut raw = frame.to_vec();
    // Header is 24 bytes; corrupt within the payload when there is one.
    let (lo, span) = if raw.len() > 24 {
        (24, raw.len() - 24)
    } else {
        (raw.len() - 1, 1)
    };
    let pos = lo + (seed as usize) % span;
    let bit = (seed >> 32) % 8;
    raw[pos] ^= 1 << bit;
    Bytes::from(raw)
}

/// Delivers `frame` across a lossy link: attempt `a` (0-based) transmits a
/// corrupted copy whenever `a < corrupt_first`, the receiver decodes (CRC
/// check) and requests a retransmission on failure, up to
/// `policy.max_retries` times.
///
/// `seed` keys the injected bit flips so a replay corrupts the same bits.
/// Returns the first frame that decoded cleanly plus the delivery cost.
///
/// # Errors
/// Returns [`LinkExhausted`] when every allowed attempt was corrupted.
pub fn deliver(
    frame: &Bytes,
    corrupt_first: u32,
    seed: u64,
    policy: &RetransmitPolicy,
) -> (Result<Bytes, LinkExhausted>, DeliveryReport) {
    let mut link_span = photon_trace::span(photon_trace::Phase::LinkDeliver);
    let (result, report) = deliver_inner(frame, corrupt_first, seed, policy);
    link_span.set_arg("attempts", report.attempts as u64);
    link_span.set_arg("wire_bytes", report.wire_bytes);
    link_span.set_sim_dur_us(report.backoff_ms.saturating_mul(1_000));
    photon_trace::counter_add("link.deliveries", 1);
    photon_trace::counter_add("link.wire_bytes", report.wire_bytes);
    photon_trace::observe("link.frame_bytes", frame.len() as u64);
    if report.attempts > 1 {
        photon_trace::counter_add("link.retransmits", (report.attempts - 1) as u64);
        for retry in 1..report.attempts {
            photon_trace::instant(
                photon_trace::Phase::LinkRetransmit,
                "link_retransmit",
                &[
                    ("retry", retry as u64),
                    ("backoff_ms", policy.backoff_ms(retry)),
                ],
            );
        }
    }
    (result, report)
}

fn deliver_inner(
    frame: &Bytes,
    corrupt_first: u32,
    seed: u64,
    policy: &RetransmitPolicy,
) -> (Result<Bytes, LinkExhausted>, DeliveryReport) {
    let mut report = DeliveryReport::default();
    let mut last_error = WireError::Truncated;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            report.backoff_ms += policy.backoff_ms(attempt);
        }
        report.attempts += 1;
        report.wire_bytes += frame.len() as u64;
        let sent = if attempt < corrupt_first {
            corrupt_frame(frame, seed.wrapping_add(attempt as u64))
        } else {
            frame.clone()
        };
        // Receiver-side integrity check: a corrupted frame MUST fail here;
        // anything that decodes is delivered as-is.
        match decode_frame(sent.clone()) {
            Ok(_) => return (Ok(sent), report),
            Err(e) => last_error = e,
        }
    }
    (
        Err(LinkExhausted {
            attempts: report.attempts,
            last_error,
        }),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_frame;

    fn frame() -> Bytes {
        encode_frame(b"pseudo-gradient payload bytes", false)
    }

    #[test]
    fn clean_delivery_is_one_attempt() {
        let f = frame();
        let (out, report) = deliver(&f, 0, 7, &RetransmitPolicy::default());
        assert_eq!(out.unwrap(), f);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.wire_bytes, f.len() as u64);
        assert_eq!(report.backoff_ms, 0);
    }

    #[test]
    fn corruption_within_budget_recovers() {
        let f = frame();
        let policy = RetransmitPolicy::default(); // 3 retries
        let (out, report) = deliver(&f, 2, 7, &policy);
        assert_eq!(out.unwrap(), f);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.wire_bytes, 3 * f.len() as u64);
        // Backoff 10ms then 20ms.
        assert_eq!(report.backoff_ms, 10 + 20);
    }

    #[test]
    fn budget_exhaustion_reports_the_crc_error() {
        let f = frame();
        let policy = RetransmitPolicy {
            max_retries: 2,
            backoff_base_ms: 5,
        };
        let (out, report) = deliver(&f, 99, 7, &policy);
        let err = out.unwrap_err();
        assert_eq!(err.attempts, 3);
        assert!(matches!(err.last_error, WireError::BadChecksum { .. }));
        assert_eq!(report.attempts, 3);
        assert_eq!(report.backoff_ms, 5 + 10);
        assert!(err.to_string().contains("3 attempt(s)"));
    }

    #[test]
    fn delivery_is_deterministic() {
        let f = frame();
        let policy = RetransmitPolicy::default();
        let a = deliver(&f, 2, 99, &policy);
        let b = deliver(&f, 2, 99, &policy);
        assert_eq!(a.0.is_ok(), b.0.is_ok());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn corrupt_frame_always_fails_decode() {
        let f = frame();
        for seed in 0..64u64 {
            let bad = corrupt_frame(&f, seed);
            assert_ne!(bad, f);
            assert!(decode_frame(bad).is_err(), "seed {seed} slipped through");
        }
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let p = RetransmitPolicy {
            max_retries: 80,
            backoff_base_ms: 10,
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(5), 160);
        assert_eq!(p.backoff_ms(70), u64::MAX); // shift overflow saturates
    }
}
