//! Lossless float compression: byte-plane shuffle, per-plane XOR delta,
//! and escape-coded zero run-length encoding.
//!
//! Model parameters and pseudo-gradients are floats whose sign/exponent
//! bytes cluster around a handful of values. Transposing the buffer into
//! four byte planes groups those structured bytes together (the classic
//! HDF5/Blosc "shuffle" filter); XOR-ing each plane with its predecessor
//! turns repeated bytes into zeros; and an escape-coded RLE then removes
//! zero runs without ever expanding isolated literals. The codec is exact
//! (bit-for-bit), matching Photon's default of "lossless compression
//! techniques without pruning" (§4).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Escape byte for the RLE layer: `ESC 0x00` encodes a literal `ESC`;
/// `ESC n` (n ≥ 1) encodes a run of `n` zero bytes.
const ESC: u8 = 0xF7;

/// Compresses a float buffer. The output always starts with the element
/// count, so an empty input is valid.
pub fn compress_f32s(xs: &[f32]) -> Bytes {
    let n = xs.len();
    let mut planes = vec![0u8; 4 * n];
    for (i, &x) in xs.iter().enumerate() {
        let b = x.to_le_bytes();
        planes[i] = b[0];
        planes[n + i] = b[1];
        planes[2 * n + i] = b[2];
        planes[3 * n + i] = b[3];
    }
    // XOR delta within each plane: repeated bytes become zero.
    for p in 0..4 {
        let plane = &mut planes[p * n..(p + 1) * n];
        for i in (1..plane.len()).rev() {
            plane[i] ^= plane[i - 1];
        }
    }

    let mut out = BytesMut::with_capacity(4 * n / 2 + 16);
    out.put_u64_le(n as u64);
    let mut i = 0usize;
    while i < planes.len() {
        match planes[i] {
            0 => {
                let mut run = 1usize;
                while i + run < planes.len() && planes[i + run] == 0 && run < 254 {
                    run += 1;
                }
                if run == 1 {
                    // An isolated zero stays a 1-byte literal.
                    out.put_u8(0);
                } else {
                    out.put_u8(ESC);
                    out.put_u8(run as u8);
                }
                i += run;
            }
            ESC => {
                out.put_u8(ESC);
                out.put_u8(0);
                i += 1;
            }
            b => {
                out.put_u8(b);
                i += 1;
            }
        }
    }
    out.freeze()
}

/// Decompresses a buffer produced by [`compress_f32s`].
///
/// # Errors
/// Returns a description of the corruption if the stream is truncated or
/// inconsistent with its declared length.
pub fn decompress_f32s(mut buf: Bytes) -> Result<Vec<f32>, String> {
    if buf.remaining() < 8 {
        return Err("missing element count".into());
    }
    let n = buf.get_u64_le() as usize;
    let total = 4usize
        .checked_mul(n)
        .ok_or_else(|| "element count overflow".to_string())?;
    let mut planes = Vec::with_capacity(total);
    while planes.len() < total {
        if buf.remaining() < 1 {
            return Err(format!(
                "truncated stream: have {} of {} plane bytes",
                planes.len(),
                total
            ));
        }
        match buf.get_u8() {
            ESC => {
                if buf.remaining() < 1 {
                    return Err("truncated escape".into());
                }
                match buf.get_u8() {
                    0 => planes.push(ESC),
                    run => {
                        if planes.len() + run as usize > total {
                            return Err("zero run exceeds declared length".into());
                        }
                        planes.resize(planes.len() + run as usize, 0);
                    }
                }
            }
            b => planes.push(b),
        }
    }
    if buf.has_remaining() {
        return Err("trailing bytes after stream".into());
    }
    // Undo the XOR delta.
    for p in 0..4 {
        let plane = &mut planes[p * n..(p + 1) * n];
        for i in 1..plane.len() {
            plane[i] ^= plane[i - 1];
        }
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f32::from_le_bytes([
            planes[i],
            planes[n + i],
            planes[2 * n + i],
            planes[3 * n + i],
        ]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_tensor::SeedStream;

    #[test]
    fn roundtrip_random() {
        let mut rng = SeedStream::new(1);
        let xs: Vec<f32> = (0..2048).map(|_| rng.next_normal() * 0.02).collect();
        let c = compress_f32s(&xs);
        assert_eq!(decompress_f32s(c).unwrap(), xs);
    }

    #[test]
    fn roundtrip_edge_values() {
        let xs = vec![
            0.0,
            -0.0,
            f32::MIN,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1.0,
            -1.0,
        ];
        let c = compress_f32s(&xs);
        assert_eq!(decompress_f32s(c).unwrap(), xs);
    }

    #[test]
    fn roundtrip_escape_heavy_values() {
        // Floats whose bytes include the escape byte 0xF7.
        let xs: Vec<f32> = (0..64)
            .map(|i| f32::from_le_bytes([0xF7, 0xF7, (i as u8), 0x3C]))
            .collect();
        let c = compress_f32s(&xs);
        assert_eq!(decompress_f32s(c).unwrap(), xs);
    }

    #[test]
    fn empty_roundtrip() {
        let c = compress_f32s(&[]);
        assert!(decompress_f32s(c).unwrap().is_empty());
    }

    #[test]
    fn sparse_buffers_compress_well() {
        // A pruned/sparse pseudo-gradient: 90% zeros.
        let mut rng = SeedStream::new(2);
        let xs: Vec<f32> = (0..10_000)
            .map(|_| {
                if rng.next_f32() < 0.9 {
                    0.0
                } else {
                    rng.next_normal()
                }
            })
            .collect();
        let c = compress_f32s(&xs);
        let raw = xs.len() * 4;
        assert!(
            c.len() < raw / 2,
            "sparse compression too weak: {} vs {raw}",
            c.len()
        );
    }

    #[test]
    fn small_init_weights_compress_somewhat() {
        // Typical init-scale weights share exponent bytes; the shuffled
        // delta planes must yield a net reduction.
        let mut rng = SeedStream::new(3);
        let xs: Vec<f32> = (0..50_000).map(|_| rng.next_normal() * 0.02).collect();
        let c = compress_f32s(&xs);
        assert!(
            c.len() < xs.len() * 4,
            "no reduction: {} vs {}",
            c.len(),
            xs.len() * 4
        );
    }

    #[test]
    fn corrupt_streams_rejected() {
        let c = compress_f32s(&[1.0, 0.0, 3.0]);
        for cut in [0, 4, c.len() - 1] {
            assert!(decompress_f32s(c.slice(..cut)).is_err(), "cut={cut}");
        }
        let mut extended = BytesMut::from(&c[..]);
        extended.put_u8(0xAB);
        assert!(decompress_f32s(extended.freeze()).is_err());
    }
}
