//! Block-wise int8 quantization for model updates — the lossy companion to
//! the default lossless codec, implementing the "quantization" extension
//! the paper's §6 proposes for cross-device federations.
//!
//! Values are grouped into fixed-size blocks; each block stores an `f32`
//! absolute-maximum scale and one signed byte per value. The worst-case
//! per-value error is `scale / 127`, i.e. relative error ≤ 1/127 of the
//! block's largest magnitude — 4x smaller payloads at a quantization noise
//! well below typical pseudo-gradient noise.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Block size for quantization scales (values per f32 scale).
pub const QUANT_BLOCK: usize = 256;

/// Quantizes a float buffer into the block-int8 wire format:
/// `u64 count | per block: f32 scale + i8 values`.
pub fn quantize_i8(xs: &[f32]) -> Bytes {
    let mut out = BytesMut::with_capacity(8 + xs.len() + (xs.len() / QUANT_BLOCK + 1) * 4);
    out.put_u64_le(xs.len() as u64);
    for block in xs.chunks(QUANT_BLOCK) {
        let amax = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if amax == 0.0 { 1.0 } else { amax / 127.0 };
        out.put_f32_le(scale);
        for &v in block {
            let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            out.put_i8(q);
        }
    }
    out.freeze()
}

/// Reconstructs floats from [`quantize_i8`] output.
///
/// # Errors
/// Returns a description of the corruption on truncated input.
pub fn dequantize_i8(mut buf: Bytes) -> Result<Vec<f32>, String> {
    if buf.remaining() < 8 {
        return Err("missing element count".into());
    }
    let n = buf.get_u64_le() as usize;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if buf.remaining() < 4 {
            return Err("truncated block scale".into());
        }
        let scale = buf.get_f32_le();
        let take = QUANT_BLOCK.min(n - out.len());
        if buf.remaining() < take {
            return Err("truncated block values".into());
        }
        for _ in 0..take {
            // f64 intermediate: at extreme scales `127 * (MAX/127)` can
            // round above f32::MAX in f32 arithmetic.
            let v = buf.get_i8() as f64 * scale as f64;
            out.push(v.clamp(-f32::MAX as f64, f32::MAX as f64) as f32);
        }
    }
    if buf.has_remaining() {
        return Err("trailing bytes after stream".into());
    }
    Ok(out)
}

/// Maximum absolute reconstruction error bound for a buffer: half a
/// quantization step per block, i.e. `max |block| / 127 / 2` — useful for
/// asserting quantization noise stays below gradient noise.
pub fn quantization_error_bound(xs: &[f32]) -> f32 {
    xs.chunks(QUANT_BLOCK)
        .map(|b| b.iter().fold(0.0f32, |m, &v| m.max(v.abs())) / 127.0 / 2.0 + f32::EPSILON)
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_tensor::SeedStream;

    #[test]
    fn roundtrip_error_within_bound() {
        let mut rng = SeedStream::new(1);
        let xs: Vec<f32> = (0..2000).map(|_| rng.next_normal() * 0.02).collect();
        let q = quantize_i8(&xs);
        let back = dequantize_i8(q).unwrap();
        assert_eq!(back.len(), xs.len());
        let bound = quantization_error_bound(&xs) * 2.0; // full step conservatism
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn compresses_4x() {
        let xs = vec![0.5f32; 10_000];
        let q = quantize_i8(&xs);
        assert!(
            q.len() < xs.len() * 4 / 3,
            "{} vs {}",
            q.len(),
            xs.len() * 4
        );
    }

    #[test]
    fn zeros_and_empty() {
        assert!(dequantize_i8(quantize_i8(&[])).unwrap().is_empty());
        let zeros = vec![0.0f32; 300];
        assert_eq!(dequantize_i8(quantize_i8(&zeros)).unwrap(), zeros);
    }

    #[test]
    fn extreme_values_clamp_not_overflow() {
        let xs = vec![f32::MAX, -f32::MAX, 1.0, -1.0];
        let back = dequantize_i8(quantize_i8(&xs)).unwrap();
        assert!(back[0] > 0.0 && back[1] < 0.0);
        assert!(back.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn truncation_rejected() {
        let q = quantize_i8(&[1.0; 100]);
        for cut in [0usize, 4, 11, q.len() - 1] {
            assert!(dequantize_i8(q.slice(..cut)).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn per_block_scaling_preserves_small_blocks() {
        // A huge value in one block must not destroy precision elsewhere.
        let mut xs = vec![1e-4f32; QUANT_BLOCK * 2];
        xs[0] = 1000.0;
        let back = dequantize_i8(quantize_i8(&xs)).unwrap();
        // Second block (no outlier) keeps fine precision.
        assert!((back[QUANT_BLOCK] - 1e-4).abs() < 1e-5);
    }
}
