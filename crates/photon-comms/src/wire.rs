use crate::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 8] = b"PHTNLNK1";
const VERSION: u16 = 1;
const FLAG_COMPRESSED: u16 = 0b1;
const FLAG_BF16: u16 = 0b10;
const FLAG_TRACE: u16 = 0b100;

/// Size of the fixed Link frame header in bytes:
/// `magic(8) | version(2) | flags(2) | crc32(4) | len(8)`.
pub const FRAME_HEADER_LEN: usize = 24;

/// Default ceiling a streaming transport imposes on the declared payload
/// length before allocating a receive buffer (1 GiB). A hostile header can
/// declare any 64-bit length; honouring it blindly would let one bad frame
/// allocate the machine away. In-memory decoding ([`decode_frame_flags`])
/// needs no such cap — it only slices bytes it already holds.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// Per-frame flags carried in the Link header.
///
/// `bf16` marks float payloads stored as bf16 (2 bytes per element, see
/// `photon_tensor::dtype`); the decoder widens to f32. The two flags are
/// mutually exclusive in practice — config validation rejects bf16 wire
/// mode combined with the compressed-floats codec — but the format carries
/// them independently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameFlags {
    /// Payload floats went through the byte-shuffle/zero-RLE codec.
    pub compressed: bool,
    /// Payload floats are stored as bf16.
    pub bf16: bool,
    /// The last [`TRACE_CTX_LEN`] payload bytes are a [`TraceCtx`]
    /// span-context trailer (CRC-covered like the rest of the payload).
    pub trace: bool,
}

impl FrameFlags {
    fn encode(self) -> u16 {
        let mut bits = 0;
        if self.compressed {
            bits |= FLAG_COMPRESSED;
        }
        if self.bf16 {
            bits |= FLAG_BF16;
        }
        if self.trace {
            bits |= FLAG_TRACE;
        }
        bits
    }

    fn decode(bits: u16) -> FrameFlags {
        FrameFlags {
            compressed: bits & FLAG_COMPRESSED != 0,
            bf16: bits & FLAG_BF16 != 0,
            trace: bits & FLAG_TRACE != 0,
        }
    }
}

/// Size of an encoded [`TraceCtx`] trailer in bytes:
/// `trace_id(8) | origin(4) | seq(8) | ts_us(8)`.
pub const TRACE_CTX_LEN: usize = 28;

/// Per-frame span context for distributed tracing, appended to the payload
/// (inside the CRC) when [`FrameFlags::trace`] is set.
///
/// `trace_id` is derived from the run seed so every process in one run
/// agrees on it without coordination; `origin` is the sending actor id
/// (coordinator = 0, client `c` = `c + 1`); `seq` is a per-process
/// monotonically increasing frame counter; `ts_us` is the sender's trace
/// clock at send time, letting the receiver estimate a clock offset from
/// the handshake round trip. A receiver that does not understand the flag
/// still decodes the frame — the trailer is ordinary payload bytes to it —
/// which keeps mixed-version links working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Run-wide trace id (derived from the run seed).
    pub trace_id: u64,
    /// Sending actor: 0 for the coordinator, client id + 1 otherwise.
    pub origin: u32,
    /// Per-process frame sequence number (monotonic).
    pub seq: u64,
    /// Sender's trace-clock microseconds at send time.
    pub ts_us: u64,
}

impl TraceCtx {
    /// Serializes the context into its fixed [`TRACE_CTX_LEN`]-byte form.
    pub fn encode(&self) -> [u8; TRACE_CTX_LEN] {
        let mut out = [0u8; TRACE_CTX_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..12].copy_from_slice(&self.origin.to_le_bytes());
        out[12..20].copy_from_slice(&self.seq.to_le_bytes());
        out[20..28].copy_from_slice(&self.ts_us.to_le_bytes());
        out
    }

    /// Deserializes a fixed [`TRACE_CTX_LEN`]-byte trailer.
    pub fn decode(raw: &[u8; TRACE_CTX_LEN]) -> TraceCtx {
        TraceCtx {
            trace_id: u64::from_le_bytes(raw[0..8].try_into().unwrap()),
            origin: u32::from_le_bytes(raw[8..12].try_into().unwrap()),
            seq: u64::from_le_bytes(raw[12..20].try_into().unwrap()),
            ts_us: u64::from_le_bytes(raw[20..28].try_into().unwrap()),
        }
    }
}

/// Errors from frame decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Protocol version not understood.
    BadVersion(u16),
    /// Payload CRC mismatch (corruption in transit).
    BadChecksum {
        /// CRC computed over the received payload.
        computed: u32,
        /// CRC declared in the header.
        declared: u32,
    },
    /// The compressed payload failed to decompress.
    BadCompression(String),
    /// A streaming transport refused the declared payload length (hostile
    /// or corrupt header) before allocating a receive buffer.
    FrameTooLarge {
        /// Payload length the header declared.
        declared: u64,
        /// The transport's configured ceiling.
        max: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadChecksum { computed, declared } => {
                write!(
                    f,
                    "checksum mismatch: {computed:#x} vs declared {declared:#x}"
                )
            }
            WireError::BadCompression(msg) => write!(f, "payload decompression failed: {msg}"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "frame declares {declared} payload bytes (cap {max})")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed Link frame header — the fixed [`FRAME_HEADER_LEN`]-byte prefix
/// validated *before* any payload bytes are read. Streaming transports
/// (`photon-net`) parse this first so a hostile length field is rejected
/// before it can size an allocation; in-memory decoding goes straight
/// through [`decode_frame_flags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Per-frame payload flags.
    pub flags: FrameFlags,
    /// CRC32 declared over the payload.
    pub crc: u32,
    /// Declared payload length in bytes.
    pub len: u64,
}

impl FrameHeader {
    /// Parses and validates a header prefix (magic, version, and the
    /// payload-length cap `max_len`).
    ///
    /// # Errors
    /// Returns a [`WireError`] on bad magic/version or a declared length
    /// past `max_len`.
    pub fn parse(header: &[u8; FRAME_HEADER_LEN], max_len: u64) -> Result<FrameHeader, WireError> {
        let mut buf = &header[..];
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let flags = FrameFlags::decode(buf.get_u16_le());
        let crc = buf.get_u32_le();
        let len = buf.get_u64_le();
        if len > max_len {
            return Err(WireError::FrameTooLarge {
                declared: len,
                max: max_len,
            });
        }
        Ok(FrameHeader { flags, crc, len })
    }

    /// Verifies `payload` against the declared CRC.
    ///
    /// # Errors
    /// Returns [`WireError::BadChecksum`] on a mismatch.
    pub fn check_payload(&self, payload: &[u8]) -> Result<(), WireError> {
        let computed = crc32(payload);
        if computed != self.crc {
            return Err(WireError::BadChecksum {
                computed,
                declared: self.crc,
            });
        }
        Ok(())
    }
}

/// Encodes a payload into a Link frame:
/// `magic(8) | version(2) | flags(2) | crc32(4) | len(8) | payload`.
///
/// With `compress`, the payload is run through the byte-shuffle/zero-RLE
/// codec (treating it as raw bytes is unhelpful, so compression here means
/// the *caller* already serialized floats via [`crate::compress_f32s`];
/// this flag simply records that the payload is a compressed-floats stream
/// so the receiver knows to decode it).
pub fn encode_frame(payload: &[u8], compressed: bool) -> Bytes {
    encode_frame_with(
        payload,
        FrameFlags {
            compressed,
            ..FrameFlags::default()
        },
    )
}

/// [`encode_frame`] with the full flag set (bf16 float payloads included).
pub fn encode_frame_with(payload: &[u8], flags: FrameFlags) -> Bytes {
    let mut out = BytesMut::with_capacity(payload.len() + 24);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u16_le(flags.encode());
    out.put_u32_le(crc32(payload));
    out.put_u64_le(payload.len() as u64);
    out.put_slice(payload);
    out.freeze()
}

/// Decodes a Link frame, returning the payload and whether the compressed
/// flag was set.
///
/// # Errors
/// Returns a [`WireError`] on truncation, bad magic/version, or checksum
/// mismatch.
pub fn decode_frame(frame: Bytes) -> Result<(Bytes, bool), WireError> {
    let (payload, flags) = decode_frame_flags(frame)?;
    Ok((payload, flags.compressed))
}

/// [`decode_frame`] returning the full [`FrameFlags`] set.
///
/// # Errors
/// Returns a [`WireError`] on truncation, bad magic/version, or checksum
/// mismatch.
pub fn decode_frame_flags(mut frame: Bytes) -> Result<(Bytes, FrameFlags), WireError> {
    if frame.remaining() < 24 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 8];
    frame.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = frame.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let flags = frame.get_u16_le();
    let declared_crc = frame.get_u32_le();
    let len = frame.get_u64_le() as usize;
    if frame.remaining() < len {
        return Err(WireError::Truncated);
    }
    let payload = frame.slice(..len);
    let computed = crc32(&payload);
    if computed != declared_crc {
        return Err(WireError::BadChecksum {
            computed,
            declared: declared_crc,
        });
    }
    Ok((payload, FrameFlags::decode(flags)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let payload = b"hello federation".to_vec();
        let frame = encode_frame(&payload, false);
        let (got, compressed) = decode_frame(frame).unwrap();
        assert_eq!(&got[..], &payload[..]);
        assert!(!compressed);
    }

    #[test]
    fn compressed_flag_roundtrips() {
        let frame = encode_frame(b"x", true);
        let (_, compressed) = decode_frame(frame).unwrap();
        assert!(compressed);
    }

    #[test]
    fn bf16_flag_roundtrips() {
        let flags = FrameFlags {
            bf16: true,
            ..FrameFlags::default()
        };
        let frame = encode_frame_with(b"x", flags);
        let (_, got) = decode_frame_flags(frame).unwrap();
        assert_eq!(got, flags);
        // The legacy decoder still reports the compressed bit only.
        let (_, compressed) = decode_frame(encode_frame_with(b"x", flags)).unwrap();
        assert!(!compressed);
    }

    #[test]
    fn trace_flag_roundtrips() {
        let flags = FrameFlags {
            trace: true,
            ..FrameFlags::default()
        };
        let frame = encode_frame_with(b"x", flags);
        let (_, got) = decode_frame_flags(frame).unwrap();
        assert_eq!(got, flags);
        // The legacy decoder still reports the compressed bit only.
        let (_, compressed) = decode_frame(encode_frame_with(b"x", flags)).unwrap();
        assert!(!compressed);
    }

    #[test]
    fn trace_ctx_byte_roundtrip() {
        let ctx = TraceCtx {
            trace_id: 0xdead_beef_cafe_f00d,
            origin: 7,
            seq: u64::MAX - 3,
            ts_us: 123_456_789,
        };
        let raw = ctx.encode();
        assert_eq!(raw.len(), TRACE_CTX_LEN);
        assert_eq!(TraceCtx::decode(&raw), ctx);
    }

    #[test]
    fn corruption_detected() {
        let frame = encode_frame(b"model update bytes", false);
        let mut raw = frame.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        match decode_frame(Bytes::from(raw)) {
            Err(WireError::BadChecksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let frame = encode_frame(b"x", false);
        let mut raw = frame.to_vec();
        raw[0] = b'X';
        assert_eq!(
            decode_frame(Bytes::from(raw)).unwrap_err(),
            WireError::BadMagic
        );

        let mut raw = encode_frame(b"x", false).to_vec();
        raw[8] = 99;
        assert!(matches!(
            decode_frame(Bytes::from(raw)).unwrap_err(),
            WireError::BadVersion(_)
        ));
    }

    #[test]
    fn truncation_detected() {
        let frame = encode_frame(b"0123456789", false);
        for cut in [0, 10, 23, frame.len() - 1] {
            assert!(decode_frame(frame.slice(..cut)).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn empty_payload_ok() {
        let (p, _) = decode_frame(encode_frame(&[], false)).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn header_parse_matches_frame_decode() {
        let frame = encode_frame(b"streaming payload", true);
        let mut prefix = [0u8; FRAME_HEADER_LEN];
        prefix.copy_from_slice(&frame[..FRAME_HEADER_LEN]);
        let header = FrameHeader::parse(&prefix, MAX_FRAME_BYTES).unwrap();
        assert_eq!(header.len as usize, frame.len() - FRAME_HEADER_LEN);
        assert!(header.flags.compressed);
        header.check_payload(&frame[FRAME_HEADER_LEN..]).unwrap();
        assert!(matches!(
            header.check_payload(b"not the payload"),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn header_rejects_hostile_length_before_allocation() {
        let frame = encode_frame(b"x", false);
        let mut prefix = [0u8; FRAME_HEADER_LEN];
        prefix.copy_from_slice(&frame[..FRAME_HEADER_LEN]);
        // Overwrite the length field (offset 16) with u64::MAX.
        prefix[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        match FrameHeader::parse(&prefix, MAX_FRAME_BYTES) {
            Err(WireError::FrameTooLarge { declared, max }) => {
                assert_eq!(declared, u64::MAX);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Bad magic and version are caught before the length check.
        prefix[0] = b'X';
        assert_eq!(
            FrameHeader::parse(&prefix, MAX_FRAME_BYTES).unwrap_err(),
            WireError::BadMagic
        );
    }
}
