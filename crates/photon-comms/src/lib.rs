//! # photon-comms
//!
//! The communication substrate of Photon-RS, standing in for the paper's
//! `Link` module (§4) and its wall-time model (Appendix B.1):
//!
//! * a framed binary **wire format** with CRC32 integrity and optional
//!   lossless compression (byte-shuffle + zero run-length encoding — the
//!   "lossless compression techniques without pruning" Photon defaults to);
//! * typed **messages** between the aggregator and LLM clients (model
//!   broadcasts, pseudo-gradient updates, metrics);
//! * **secure aggregation** via cancelling pairwise masks
//!   (Bonawitz et al., simplified to the honest-but-curious case);
//! * the three **aggregation topologies** — parameter server, AllReduce,
//!   Ring-AllReduce — as (a) the paper's analytic communication-time model
//!   (Eqs. 2–7) and (b) real multi-threaded collective implementations used
//!   by the DDP baseline;
//! * the **wall-time model** combining local compute (Eq. 1) and
//!   communication into per-round and total times (Eqs. 5–6).
//!
//! ```
//! use photon_comms::{comm_time_seconds, Topology};
//! // 8 clients, 500 MB model, 10 Gbps (= 1250 MB/s): RAR beats PS.
//! let ps = comm_time_seconds(Topology::ParameterServer, 8, 500.0, 1250.0);
//! let rar = comm_time_seconds(Topology::RingAllReduce, 8, 500.0, 1250.0);
//! assert!(rar < ps);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod collective;
mod compress;
mod crc;
mod link;
mod message;
mod network;
mod quant;
mod secure;
mod sparse;
mod topology;
mod transport;
mod walltime;
mod wire;

pub use collective::{ring_allreduce_group, RingWorker};
pub use compress::{compress_f32s, decompress_f32s};
pub use crc::crc32;
pub use link::{
    corrupt_frame, deliver, deliver_chaos, DeliveryReport, LinkExhausted, RetransmitPolicy,
};
pub use message::{Message, TrainMetrics, WireOpts};
pub use network::{
    AdaptiveDeadlineConfig, LinkOutcome, LinkProfile, NetworkConfig, NetworkModel, PartitionKind,
    PartitionSchedule, PartitionSpec,
};
pub use quant::{dequantize_i8, quantization_error_bound, quantize_i8, QUANT_BLOCK};
pub use secure::{mask_update, pairwise_seed, SecureAggError};
pub use sparse::{densify, retained_mass, sparsify_top_k};
pub use topology::{aggregation_time_seconds, bytes_on_wire, comm_time_seconds, Topology};
pub use transport::{ChannelLink, Link, LinkError};
pub use walltime::{RoundTime, SimClock, WallTimeModel};
pub use wire::{
    decode_frame, decode_frame_flags, encode_frame, encode_frame_with, FrameFlags, FrameHeader,
    TraceCtx, WireError, FRAME_HEADER_LEN, MAX_FRAME_BYTES, TRACE_CTX_LEN,
};
