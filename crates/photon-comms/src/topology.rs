use serde::{Deserialize, Serialize};

/// Aggregation topology for pseudo-gradient exchange (§4, "Topology
/// Between Clients").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Central parameter server receives all updates: `O(K·M)` at the hub;
    /// required when privacy forbids peer-to-peer links.
    ParameterServer,
    /// Every worker exchanges with every other: `O(K²·M)` total.
    AllReduce,
    /// Bandwidth-optimal ring: each worker moves `O(M)`; bottlenecked by
    /// the slowest ring link and intolerant of dropouts.
    RingAllReduce,
}

impl Topology {
    /// All three variants.
    pub fn all() -> [Topology; 3] {
        [
            Topology::ParameterServer,
            Topology::AllReduce,
            Topology::RingAllReduce,
        ]
    }

    /// Short label used in figures ("PS", "AR", "RAR").
    pub fn label(&self) -> &'static str {
        match self {
            Topology::ParameterServer => "PS",
            Topology::AllReduce => "AR",
            Topology::RingAllReduce => "RAR",
        }
    }

    /// Whether the topology tolerates client dropouts mid-aggregation.
    pub fn tolerates_dropouts(&self) -> bool {
        !matches!(self, Topology::RingAllReduce)
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Communication time for one aggregation, per Appendix B.1:
///
/// * PS (Eq. 2): `T = K·S / B`
/// * AR (Eq. 3): `T = (K−1)·S / B`
/// * RAR (Eq. 4): `T = 2·S·(K−1) / (K·B)`
///
/// with `K` clients, model size `S` in MB and bottleneck bandwidth `B` in
/// MB/s. A single client needs no communication (Appendix B.1's
/// "exceptional cases").
///
/// # Panics
/// Panics if `bandwidth_mbps` is not positive or `k == 0`.
pub fn comm_time_seconds(topology: Topology, k: usize, model_mb: f64, bandwidth_mbps: f64) -> f64 {
    assert!(k > 0, "need at least one client");
    assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
    if k == 1 {
        return 0.0;
    }
    let (k_f, s, b) = (k as f64, model_mb, bandwidth_mbps);
    match topology {
        Topology::ParameterServer => k_f * s / b,
        Topology::AllReduce => (k_f - 1.0) * s / b,
        Topology::RingAllReduce => 2.0 * s * (k_f - 1.0) / (k_f * b),
    }
}

/// Server-side aggregation time (Eq. 7): `T_agg = K·S / ζ` with server
/// capacity ζ in MB/s-equivalent (default 5 TFLOP/s in the paper; callers
/// pass the corresponding byte-processing rate). The paper treats this as
/// negligible next to communication but models it for completeness.
///
/// # Panics
/// Panics if `zeta` is not positive.
pub fn aggregation_time_seconds(k: usize, model_mb: f64, zeta_mbps: f64) -> f64 {
    assert!(zeta_mbps > 0.0, "server capacity must be positive");
    k as f64 * model_mb / zeta_mbps
}

/// Total bytes crossing the wide-area network in one aggregation round
/// (up + down for PS; per-worker sends for the collectives). Used to
/// verify the threaded collective implementations move exactly the
/// volume the analytic model charges.
pub fn bytes_on_wire(topology: Topology, k: usize, model_bytes: usize) -> usize {
    if k <= 1 {
        return 0;
    }
    match topology {
        // Each client uploads its update and downloads the new model.
        Topology::ParameterServer => 2 * k * model_bytes,
        // Each of K workers sends its model to K-1 peers.
        Topology::AllReduce => k * (k - 1) * model_bytes,
        // Each worker sends 2 (K-1)/K of the model; K workers total.
        Topology::RingAllReduce => 2 * (k - 1) * model_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_appendix_b1() {
        // K = 8 clients, S = 500 MB, B = 1250 MB/s (10 Gbps).
        let (k, s, b) = (8usize, 500.0, 1250.0);
        assert!((comm_time_seconds(Topology::ParameterServer, k, s, b) - 3.2).abs() < 1e-9);
        assert!((comm_time_seconds(Topology::AllReduce, k, s, b) - 2.8).abs() < 1e-9);
        let rar = 2.0 * 500.0 * 7.0 / (8.0 * 1250.0);
        assert!((comm_time_seconds(Topology::RingAllReduce, k, s, b) - rar).abs() < 1e-9);
    }

    #[test]
    fn rar_is_fastest_ps_slowest_at_scale() {
        for k in [2usize, 4, 8, 16] {
            let ps = comm_time_seconds(Topology::ParameterServer, k, 100.0, 100.0);
            let ar = comm_time_seconds(Topology::AllReduce, k, 100.0, 100.0);
            let rar = comm_time_seconds(Topology::RingAllReduce, k, 100.0, 100.0);
            assert!(rar <= ar && ar <= ps, "k={k}: {rar} {ar} {ps}");
        }
    }

    #[test]
    fn rar_is_bandwidth_optimal_asymptotically() {
        // RAR time approaches 2 S / B regardless of K.
        let t1000 = comm_time_seconds(Topology::RingAllReduce, 1000, 100.0, 100.0);
        assert!((t1000 - 2.0).abs() < 0.01);
    }

    #[test]
    fn single_client_is_free() {
        for t in Topology::all() {
            assert_eq!(comm_time_seconds(t, 1, 1000.0, 1.0), 0.0);
            assert_eq!(bytes_on_wire(t, 1, 1000), 0);
        }
    }

    #[test]
    fn aggregation_time_linear_in_k() {
        let one = aggregation_time_seconds(1, 100.0, 1e6);
        let eight = aggregation_time_seconds(8, 100.0, 1e6);
        assert!((eight - 8.0 * one).abs() < 1e-12);
    }

    #[test]
    fn wire_volumes() {
        assert_eq!(bytes_on_wire(Topology::ParameterServer, 4, 10), 80);
        assert_eq!(bytes_on_wire(Topology::AllReduce, 4, 10), 120);
        assert_eq!(bytes_on_wire(Topology::RingAllReduce, 4, 10), 60);
    }

    #[test]
    fn labels_and_dropout_semantics() {
        assert_eq!(Topology::ParameterServer.label(), "PS");
        assert!(Topology::ParameterServer.tolerates_dropouts());
        assert!(Topology::AllReduce.tolerates_dropouts());
        assert!(!Topology::RingAllReduce.tolerates_dropouts());
    }
}
