use crate::{
    compress_f32s, decode_frame_flags, decompress_f32s, encode_frame_with, FrameFlags, TraceCtx,
    WireError, TRACE_CTX_LEN,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use photon_tensor::Dtype;
use serde::{Deserialize, Serialize};

/// Encoding options for float payloads on the Link.
///
/// `dtype = Bf16` stores update vectors as 2-byte bf16 on the wire (the
/// receiver widens back to f32 before any arithmetic — accumulation stays
/// f32). Compression and bf16 are carried as independent frame flags, but
/// config validation rejects enabling both: the byte-shuffle codec is
/// specified over 4-byte lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireOpts {
    /// Run float payloads through the byte-shuffle/zero-RLE codec.
    pub compress: bool,
    /// Storage precision for float payloads.
    pub dtype: Dtype,
}

impl WireOpts {
    fn flags(self) -> FrameFlags {
        FrameFlags {
            compressed: self.compress,
            bf16: self.dtype == Dtype::Bf16,
            trace: false,
        }
    }
}

/// Training metadata carried alongside model payloads ("message payloads
/// carry metadata, including training and evaluation instructions,
/// metrics", §4).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainMetrics {
    /// Mean training loss over the local steps.
    pub mean_loss: f32,
    /// Tokens processed locally.
    pub tokens: u64,
    /// Local optimizer steps taken.
    pub steps: u64,
}

/// A message on the aggregator <-> client Link.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server -> client: global parameters for a round.
    ModelBroadcast {
        /// Federated round index.
        round: u64,
        /// Flat global parameters.
        params: Vec<f32>,
    },
    /// Client -> server: pseudo-gradient plus metrics.
    ClientResult {
        /// Federated round index.
        round: u64,
        /// Client identifier.
        client_id: u32,
        /// Flat pseudo-gradient `θ_global − θ_local`.
        delta: Vec<f32>,
        /// Aggregation weight.
        weight: f64,
        /// Local training metrics.
        metrics: TrainMetrics,
    },
    /// Server -> client: end of training.
    Shutdown,
    /// Client -> server: membership handshake — a (re)joining client
    /// announces itself and asks for a lease. `birth_round` is the round
    /// the client first joined (0 for founding members), which the warm
    /// join path uses to sanity-check the roster.
    Hello {
        /// Client identifier (assigned by the aggregator on first join).
        client_id: u32,
        /// Round the client first joined the federation.
        birth_round: u64,
    },
    /// Server -> client: membership handshake reply — the aggregator
    /// grants (or renews) a liveness lease. The client must renew before
    /// `expires_ms` (simulated walltime) or be expired from the roster.
    LeaseGrant {
        /// Client the lease is granted to.
        client_id: u32,
        /// Absolute simulated-walltime expiry of the lease.
        expires_ms: u64,
    },
    /// Client -> coordinator (multi-process transport handshake): open or
    /// resume a session. A fresh client sends `client_id = u32::MAX` and
    /// `token = 0`; a reconnecting client presents the id and token from
    /// its previous [`Message::SessionGrant`] so the coordinator resumes
    /// its lease and in-flight round instead of re-admitting it.
    SessionHello {
        /// Previously granted client id, or `u32::MAX` for a new client.
        client_id: u32,
        /// Previously granted session token, or 0 for a new session.
        token: u64,
        /// Highest round whose result the coordinator has acknowledged
        /// (`u64::MAX` if none) — lets the coordinator spot in-flight
        /// results that need re-delivery.
        last_acked_round: u64,
    },
    /// Coordinator -> client: session opened (or resumed after a
    /// reconnect). The token is the client's proof of identity across
    /// reconnects and coordinator restarts.
    SessionGrant {
        /// Assigned client id.
        client_id: u32,
        /// Session token to present on every future [`Message::SessionHello`].
        token: u64,
        /// The coordinator's current round, so a resumed client rejoins
        /// the in-flight round instead of waiting for the next broadcast.
        round: u64,
        /// True when an existing session was resumed (lease carried over)
        /// rather than a new member admitted.
        resumed: bool,
    },
    /// Either direction: transport liveness heartbeat. A peer that misses
    /// enough consecutive heartbeats is declared dead and its connection
    /// torn down (the session survives for a later resume).
    Heartbeat {
        /// Sender's client id (`u32::MAX` from the coordinator).
        client_id: u32,
        /// Monotonic heartbeat sequence number per connection.
        seq: u64,
    },
    /// Coordinator -> client: the client's result for `round` was applied
    /// (or deduplicated away) — the client may drop its retained copy.
    /// Until this arrives the client re-sends the result on every
    /// reconnect; the coordinator's `(client, round)` dedup keys make the
    /// re-delivery idempotent.
    ResultAck {
        /// Client whose result is acknowledged.
        client_id: u32,
        /// Round the acknowledged result belongs to.
        round: u64,
    },
    /// Coordinator -> client: authoritative state re-synchronization, sent
    /// at admission and after a coordinator crash-restart. `state` is the
    /// coordinator state machine's discriminant; `config_json` carries the
    /// run configuration as opaque JSON bytes (opaque here so the wire
    /// format does not depend on higher-layer config types).
    RunSync {
        /// The coordinator's current round (post-restore).
        round: u64,
        /// Coordinator state machine discriminant.
        state: u8,
        /// Run configuration, JSON-encoded.
        config_json: Vec<u8>,
    },
}

const TAG_BROADCAST: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;
const TAG_HELLO: u8 = 4;
const TAG_LEASE_GRANT: u8 = 5;
const TAG_SESSION_HELLO: u8 = 6;
const TAG_SESSION_GRANT: u8 = 7;
const TAG_HEARTBEAT: u8 = 8;
const TAG_RESULT_ACK: u8 = 9;
const TAG_RUN_SYNC: u8 = 10;

impl Message {
    /// Serializes into a Link frame, optionally compressing float payloads
    /// (f32 storage; see [`Message::to_frame_opts`] for bf16).
    pub fn to_frame(&self, compress: bool) -> Bytes {
        self.to_frame_opts(WireOpts {
            compress,
            dtype: Dtype::F32,
        })
    }

    /// Serializes into a Link frame with explicit [`WireOpts`]; the chosen
    /// encoding is recorded in the frame flags so [`Message::from_frame`]
    /// decodes any mode without out-of-band context.
    pub fn to_frame_opts(&self, opts: WireOpts) -> Bytes {
        let body = self.encode_body(opts);
        encode_frame_with(&body, opts.flags())
    }

    /// [`Message::to_frame_opts`] with a [`TraceCtx`] span-context trailer
    /// appended to the payload (CRC-covered) and the trace flag set, so the
    /// receiver can recover the sender's causal edge via
    /// [`Message::from_frame_traced`].
    pub fn to_frame_traced(&self, opts: WireOpts, ctx: TraceCtx) -> Bytes {
        let mut body = self.encode_body(opts);
        body.put_slice(&ctx.encode());
        let mut flags = opts.flags();
        flags.trace = true;
        encode_frame_with(&body, flags)
    }

    fn encode_body(&self, opts: WireOpts) -> BytesMut {
        let mut body = BytesMut::new();
        match self {
            Message::ModelBroadcast { round, params } => {
                body.put_u8(TAG_BROADCAST);
                body.put_u64_le(*round);
                put_floats(&mut body, params, opts);
            }
            Message::ClientResult {
                round,
                client_id,
                delta,
                weight,
                metrics,
            } => {
                body.put_u8(TAG_RESULT);
                body.put_u64_le(*round);
                body.put_u32_le(*client_id);
                body.put_f64_le(*weight);
                body.put_f32_le(metrics.mean_loss);
                body.put_u64_le(metrics.tokens);
                body.put_u64_le(metrics.steps);
                put_floats(&mut body, delta, opts);
            }
            Message::Shutdown => {
                body.put_u8(TAG_SHUTDOWN);
            }
            Message::Hello {
                client_id,
                birth_round,
            } => {
                body.put_u8(TAG_HELLO);
                body.put_u32_le(*client_id);
                body.put_u64_le(*birth_round);
            }
            Message::LeaseGrant {
                client_id,
                expires_ms,
            } => {
                body.put_u8(TAG_LEASE_GRANT);
                body.put_u32_le(*client_id);
                body.put_u64_le(*expires_ms);
            }
            Message::SessionHello {
                client_id,
                token,
                last_acked_round,
            } => {
                body.put_u8(TAG_SESSION_HELLO);
                body.put_u32_le(*client_id);
                body.put_u64_le(*token);
                body.put_u64_le(*last_acked_round);
            }
            Message::SessionGrant {
                client_id,
                token,
                round,
                resumed,
            } => {
                body.put_u8(TAG_SESSION_GRANT);
                body.put_u32_le(*client_id);
                body.put_u64_le(*token);
                body.put_u64_le(*round);
                body.put_u8(u8::from(*resumed));
            }
            Message::Heartbeat { client_id, seq } => {
                body.put_u8(TAG_HEARTBEAT);
                body.put_u32_le(*client_id);
                body.put_u64_le(*seq);
            }
            Message::ResultAck { client_id, round } => {
                body.put_u8(TAG_RESULT_ACK);
                body.put_u32_le(*client_id);
                body.put_u64_le(*round);
            }
            Message::RunSync {
                round,
                state,
                config_json,
            } => {
                body.put_u8(TAG_RUN_SYNC);
                body.put_u64_le(*round);
                body.put_u8(*state);
                body.put_u64_le(config_json.len() as u64);
                body.put_slice(config_json);
            }
        }
        body
    }

    /// Parses a Link frame, discarding any trace-context trailer.
    ///
    /// # Errors
    /// Returns a [`WireError`] on framing/corruption errors or an unknown
    /// message tag.
    pub fn from_frame(frame: Bytes) -> Result<Message, WireError> {
        Self::from_frame_traced(frame).map(|(msg, _)| msg)
    }

    /// Parses a Link frame, returning the [`TraceCtx`] trailer when the
    /// sender set the trace flag (`None` for an untraced frame).
    ///
    /// # Errors
    /// Returns a [`WireError`] on framing/corruption errors, an unknown
    /// message tag, or a trace-flagged payload too short to hold the
    /// trailer.
    pub fn from_frame_traced(frame: Bytes) -> Result<(Message, Option<TraceCtx>), WireError> {
        let (mut body, flags) = decode_frame_flags(frame)?;
        let ctx = if flags.trace {
            if body.remaining() < TRACE_CTX_LEN {
                return Err(WireError::Truncated);
            }
            let split = body.len() - TRACE_CTX_LEN;
            let mut raw = [0u8; TRACE_CTX_LEN];
            raw.copy_from_slice(&body.slice(split..));
            body = body.slice(..split);
            Some(TraceCtx::decode(&raw))
        } else {
            None
        };
        Self::decode_body(body, flags).map(|msg| (msg, ctx))
    }

    fn decode_body(mut body: Bytes, flags: FrameFlags) -> Result<Message, WireError> {
        if body.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        match body.get_u8() {
            TAG_BROADCAST => {
                if body.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                let round = body.get_u64_le();
                let params = get_floats(&mut body, flags)?;
                Ok(Message::ModelBroadcast { round, params })
            }
            TAG_RESULT => {
                if body.remaining() < 8 + 4 + 8 + 4 + 8 + 8 {
                    return Err(WireError::Truncated);
                }
                let round = body.get_u64_le();
                let client_id = body.get_u32_le();
                let weight = body.get_f64_le();
                let metrics = TrainMetrics {
                    mean_loss: body.get_f32_le(),
                    tokens: body.get_u64_le(),
                    steps: body.get_u64_le(),
                };
                let delta = get_floats(&mut body, flags)?;
                Ok(Message::ClientResult {
                    round,
                    client_id,
                    delta,
                    weight,
                    metrics,
                })
            }
            TAG_SHUTDOWN => Ok(Message::Shutdown),
            TAG_HELLO => {
                if body.remaining() < 4 + 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::Hello {
                    client_id: body.get_u32_le(),
                    birth_round: body.get_u64_le(),
                })
            }
            TAG_LEASE_GRANT => {
                if body.remaining() < 4 + 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::LeaseGrant {
                    client_id: body.get_u32_le(),
                    expires_ms: body.get_u64_le(),
                })
            }
            TAG_SESSION_HELLO => {
                if body.remaining() < 4 + 8 + 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::SessionHello {
                    client_id: body.get_u32_le(),
                    token: body.get_u64_le(),
                    last_acked_round: body.get_u64_le(),
                })
            }
            TAG_SESSION_GRANT => {
                if body.remaining() < 4 + 8 + 8 + 1 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::SessionGrant {
                    client_id: body.get_u32_le(),
                    token: body.get_u64_le(),
                    round: body.get_u64_le(),
                    resumed: body.get_u8() != 0,
                })
            }
            TAG_HEARTBEAT => {
                if body.remaining() < 4 + 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::Heartbeat {
                    client_id: body.get_u32_le(),
                    seq: body.get_u64_le(),
                })
            }
            TAG_RESULT_ACK => {
                if body.remaining() < 4 + 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::ResultAck {
                    client_id: body.get_u32_le(),
                    round: body.get_u64_le(),
                })
            }
            TAG_RUN_SYNC => {
                if body.remaining() < 8 + 1 + 8 {
                    return Err(WireError::Truncated);
                }
                let round = body.get_u64_le();
                let state = body.get_u8();
                let len = body.get_u64_le() as usize;
                if body.remaining() < len {
                    return Err(WireError::Truncated);
                }
                let config_json = body.slice(..len).to_vec();
                body.advance(len);
                Ok(Message::RunSync {
                    round,
                    state,
                    config_json,
                })
            }
            tag => Err(WireError::BadCompression(format!("unknown tag {tag}"))),
        }
    }

    /// Size of the serialized frame in bytes (the quantity the wall-time
    /// model charges to the network).
    pub fn wire_bytes(&self, compress: bool) -> usize {
        self.to_frame(compress).len()
    }

    /// [`Message::wire_bytes`] under explicit [`WireOpts`].
    pub fn wire_bytes_opts(&self, opts: WireOpts) -> usize {
        self.to_frame_opts(opts).len()
    }
}

fn put_floats(out: &mut BytesMut, xs: &[f32], opts: WireOpts) {
    if opts.compress {
        let c = compress_f32s(xs);
        out.put_u64_le(c.len() as u64);
        out.put_slice(&c);
    } else {
        match opts.dtype {
            Dtype::F32 => photon_tensor::write_f32_slice(out, xs),
            Dtype::Bf16 => photon_tensor::write_bf16_slice(out, xs),
        }
    }
}

fn get_floats(body: &mut Bytes, flags: FrameFlags) -> Result<Vec<f32>, WireError> {
    if flags.compressed {
        if body.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let len = body.get_u64_le() as usize;
        if body.remaining() < len {
            return Err(WireError::Truncated);
        }
        let c = body.slice(..len);
        body.advance(len);
        decompress_f32s(c).map_err(WireError::BadCompression)
    } else if flags.bf16 {
        photon_tensor::read_bf16_slice(body).map_err(|e| WireError::BadCompression(e.to_string()))
    } else {
        photon_tensor::read_f32_slice(body).map_err(|e| WireError::BadCompression(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_tensor::SeedStream;

    fn sample_params(n: usize) -> Vec<f32> {
        let mut rng = SeedStream::new(3);
        (0..n).map(|_| rng.next_normal() * 0.02).collect()
    }

    #[test]
    fn broadcast_roundtrip_both_modes() {
        let msg = Message::ModelBroadcast {
            round: 7,
            params: sample_params(513),
        };
        for compress in [false, true] {
            let frame = msg.to_frame(compress);
            assert_eq!(Message::from_frame(frame).unwrap(), msg);
        }
    }

    #[test]
    fn result_roundtrip() {
        let msg = Message::ClientResult {
            round: 3,
            client_id: 11,
            delta: sample_params(64),
            weight: 2.5,
            metrics: TrainMetrics {
                mean_loss: 3.25,
                tokens: 4096,
                steps: 128,
            },
        };
        let frame = msg.to_frame(true);
        assert_eq!(Message::from_frame(frame).unwrap(), msg);
    }

    #[test]
    fn shutdown_roundtrip() {
        let frame = Message::Shutdown.to_frame(false);
        assert_eq!(Message::from_frame(frame).unwrap(), Message::Shutdown);
    }

    #[test]
    fn membership_handshake_roundtrips() {
        let hello = Message::Hello {
            client_id: 9,
            birth_round: 17,
        };
        let grant = Message::LeaseGrant {
            client_id: 9,
            expires_ms: 42_000,
        };
        for compress in [false, true] {
            assert_eq!(
                Message::from_frame(hello.to_frame(compress)).unwrap(),
                hello
            );
            assert_eq!(
                Message::from_frame(grant.to_frame(compress)).unwrap(),
                grant
            );
        }
        // Handshake frames are control-plane small: no float payload.
        assert!(hello.wire_bytes(false) < 64);
    }

    #[test]
    fn session_control_plane_roundtrips() {
        let msgs = [
            Message::SessionHello {
                client_id: u32::MAX,
                token: 0,
                last_acked_round: u64::MAX,
            },
            Message::SessionHello {
                client_id: 3,
                token: 0xDEAD_BEEF_CAFE_F00D,
                last_acked_round: 12,
            },
            Message::SessionGrant {
                client_id: 3,
                token: 0xDEAD_BEEF_CAFE_F00D,
                round: 13,
                resumed: true,
            },
            Message::Heartbeat {
                client_id: 3,
                seq: 999,
            },
            Message::ResultAck {
                client_id: 3,
                round: 13,
            },
            Message::RunSync {
                round: 13,
                state: 2,
                config_json: br#"{"rounds":16}"#.to_vec(),
            },
        ];
        for msg in &msgs {
            for compress in [false, true] {
                assert_eq!(
                    Message::from_frame(msg.to_frame(compress)).unwrap(),
                    *msg,
                    "roundtrip failed for {msg:?} (compress={compress})"
                );
            }
            // Control-plane frames stay small (no float payload).
            assert!(msg.wire_bytes(false) < 128);
        }
    }

    #[test]
    fn bf16_wire_roundtrip_and_size() {
        // Values exactly representable in bf16 round-trip bit-exactly.
        let params: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) * 0.25).collect();
        let msg = Message::ModelBroadcast { round: 5, params };
        let opts = WireOpts {
            compress: false,
            dtype: Dtype::Bf16,
        };
        let decoded = Message::from_frame(msg.to_frame_opts(opts)).unwrap();
        assert_eq!(decoded, msg);

        // Arbitrary floats roundtrip within bf16's relative-error bound, and
        // the frame shrinks ~2x vs f32 storage.
        let msg = Message::ModelBroadcast {
            round: 5,
            params: sample_params(4096),
        };
        let f32_bytes = msg.wire_bytes(false);
        let bf16_bytes = msg.wire_bytes_opts(opts);
        assert!(
            (bf16_bytes as f64) < 0.55 * f32_bytes as f64,
            "bf16 {bf16_bytes} vs f32 {f32_bytes}"
        );
        let Message::ModelBroadcast { params: got, .. } =
            Message::from_frame(msg.to_frame_opts(opts)).unwrap()
        else {
            panic!("wrong variant");
        };
        let Message::ModelBroadcast { params: want, .. } = msg else {
            panic!("wrong variant");
        };
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= w.abs() / 256.0 + 1e-12);
        }
    }

    #[test]
    fn traced_frame_roundtrips_and_legacy_decoder_ignores_ctx() {
        let ctx = TraceCtx {
            trace_id: 0x1234_5678_9abc_def0,
            origin: 3,
            seq: 42,
            ts_us: 1_000_000,
        };
        let msgs = [
            Message::ModelBroadcast {
                round: 2,
                params: sample_params(129),
            },
            Message::Heartbeat {
                client_id: 2,
                seq: 7,
            },
            Message::Shutdown,
        ];
        for msg in &msgs {
            for opts in [
                WireOpts::default(),
                WireOpts {
                    compress: true,
                    dtype: Dtype::F32,
                },
                WireOpts {
                    compress: false,
                    dtype: Dtype::Bf16,
                },
            ] {
                // bf16 storage perturbs floats; compare against the bf16
                // roundtrip of the untraced path instead of the original.
                let want = Message::from_frame(msg.to_frame_opts(opts)).unwrap();
                let frame = msg.to_frame_traced(opts, ctx);
                let (got, got_ctx) = Message::from_frame_traced(frame.clone()).unwrap();
                assert_eq!(got, want);
                assert_eq!(got_ctx, Some(ctx));
                // The trailer is invisible to the legacy decoder.
                assert_eq!(Message::from_frame(frame).unwrap(), want);
                // Untraced frames report no context.
                let (_, none_ctx) = Message::from_frame_traced(msg.to_frame_opts(opts)).unwrap();
                assert_eq!(none_ctx, None);
            }
        }
    }

    #[test]
    fn traced_frame_costs_exactly_the_trailer() {
        let msg = Message::Heartbeat {
            client_id: 0,
            seq: 1,
        };
        let ctx = TraceCtx {
            trace_id: 1,
            origin: 1,
            seq: 1,
            ts_us: 1,
        };
        let plain = msg.to_frame_opts(WireOpts::default()).len();
        let traced = msg.to_frame_traced(WireOpts::default(), ctx).len();
        assert_eq!(traced, plain + TRACE_CTX_LEN);
    }

    #[test]
    fn corrupted_frame_rejected() {
        let msg = Message::ModelBroadcast {
            round: 1,
            params: sample_params(32),
        };
        let mut raw = msg.to_frame(false).to_vec();
        raw[40] ^= 0xFF;
        assert!(Message::from_frame(Bytes::from(raw)).is_err());
    }

    #[test]
    fn wire_bytes_reflect_payload_size() {
        let small = Message::ModelBroadcast {
            round: 0,
            params: sample_params(16),
        };
        let large = Message::ModelBroadcast {
            round: 0,
            params: sample_params(1600),
        };
        assert!(large.wire_bytes(false) > small.wire_bytes(false) * 50);
    }
}
