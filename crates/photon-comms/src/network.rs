//! Deterministic simulated network: per-link chaos profiles, partition
//! schedules and the adaptive round deadline.
//!
//! Photon's failure-recovery story (§4) assumes clients on the open
//! internet behind heterogeneous, unreliable links. This module gives
//! every (aggregator, client) link a seeded [`LinkProfile`] — base latency
//! plus a jitter distribution, bandwidth for size-dependent transfer time,
//! loss, duplication and a reordering window — and a [`PartitionSchedule`]
//! of full and asymmetric partitions with heal rounds. Every draw is a
//! pure function of `(seed, round, client)` via a splitmix64 stream, so a
//! chaos run replays bit-identically under `ClockMode::Sim`; nothing here
//! touches a wall clock or global RNG. The real socket transport must
//! later satisfy this same contract unchanged.

use serde::{Deserialize, Serialize};

/// Leading transmission attempts a single loss event may swallow.
const MAX_LOSS_BURST: u64 = 2;

/// Static chaos profile shared by every (aggregator, client) link.
///
/// All fields default to zero, which makes the model a no-op: zero
/// latency, infinite bandwidth, no loss, no duplication, no reordering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Fixed one-way propagation delay in simulated milliseconds.
    #[serde(default)]
    pub base_latency_ms: u64,
    /// Per-delivery jitter drawn uniformly from `[0, jitter_ms]`.
    #[serde(default)]
    pub jitter_ms: u64,
    /// Link bandwidth in kilobits per second; `0` means infinite (the
    /// transfer-time term vanishes).
    #[serde(default)]
    pub bandwidth_kbps: u64,
    /// Probability that a delivery loses its leading transmission
    /// attempt(s), forcing timeout-driven retransmits.
    #[serde(default)]
    pub loss_rate: f64,
    /// Probability that the delivered frame arrives twice.
    #[serde(default)]
    pub dup_rate: f64,
    /// Maximum extra delay (simulated ms, uniform) a frame or its
    /// duplicate may pick up, letting arrivals overtake each other.
    #[serde(default)]
    pub reorder_window_ms: u64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            base_latency_ms: 0,
            jitter_ms: 0,
            bandwidth_kbps: 0,
            loss_rate: 0.0,
            dup_rate: 0.0,
            reorder_window_ms: 0,
        }
    }
}

impl LinkProfile {
    /// Checks rates are probabilities and magnitudes finite.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [("loss_rate", self.loss_rate), ("dup_rate", self.dup_rate)] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("network {name} must be in [0, 1], got {rate}"));
            }
        }
        Ok(())
    }

    /// Size-dependent transfer time for `bytes` at this link's bandwidth,
    /// in simulated milliseconds (`kbps` = kilobits/s = bits/ms).
    pub fn transfer_ms(&self, bytes: usize) -> u64 {
        if self.bandwidth_kbps == 0 {
            return 0;
        }
        ((bytes as u64).saturating_mul(8)) / self.bandwidth_kbps
    }
}

/// Network chaos layer configuration carried by the federation config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Chaos profile applied to every link.
    #[serde(default)]
    pub profile: LinkProfile,
    /// Fraction of the sampled cohort that must deliver results for the
    /// round to commit; below it the aggregator enters degraded mode.
    #[serde(default = "default_quorum_frac")]
    pub min_quorum_frac: f64,
    /// Latency multiplier applied to links pinned slow by the fault plan
    /// (`slowlink@rNcM`).
    #[serde(default = "default_slow_factor")]
    pub slow_factor: u64,
}

fn default_quorum_frac() -> f64 {
    0.5
}

fn default_slow_factor() -> u64 {
    10
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            profile: LinkProfile::default(),
            min_quorum_frac: default_quorum_frac(),
            slow_factor: default_slow_factor(),
        }
    }
}

impl NetworkConfig {
    /// Validates the profile and the quorum/slow-link knobs.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.profile.validate()?;
        if !self.min_quorum_frac.is_finite() || !(0.0..=1.0).contains(&self.min_quorum_frac) {
            return Err(format!(
                "network min_quorum_frac must be in [0, 1], got {}",
                self.min_quorum_frac
            ));
        }
        if self.slow_factor == 0 {
            return Err("network slow_factor must be >= 1".into());
        }
        Ok(())
    }
}

/// Adaptive round deadline: a percentile of recently observed per-client
/// delivery latencies, clamped to a floor/ceiling, replacing the static
/// `--deadline-ms`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveDeadlineConfig {
    /// Percentile of observed latencies to cut at (e.g. `0.95`).
    #[serde(default = "default_percentile")]
    pub percentile: f64,
    /// Lower clamp on the derived deadline (simulated ms).
    #[serde(default = "default_floor_ms")]
    pub floor_ms: u64,
    /// Upper clamp on the derived deadline, also used before any latency
    /// has been observed (simulated ms).
    #[serde(default = "default_ceiling_ms")]
    pub ceiling_ms: u64,
    /// Observations kept in the sliding window.
    #[serde(default = "default_window")]
    pub window: usize,
}

fn default_percentile() -> f64 {
    0.95
}

fn default_floor_ms() -> u64 {
    100
}

fn default_ceiling_ms() -> u64 {
    10_000
}

fn default_window() -> usize {
    128
}

impl Default for AdaptiveDeadlineConfig {
    fn default() -> Self {
        AdaptiveDeadlineConfig {
            percentile: default_percentile(),
            floor_ms: default_floor_ms(),
            ceiling_ms: default_ceiling_ms(),
            window: default_window(),
        }
    }
}

impl AdaptiveDeadlineConfig {
    /// Checks the percentile and clamp ordering.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.percentile.is_finite() && 0.0 < self.percentile && self.percentile <= 1.0) {
            return Err(format!(
                "adaptive deadline percentile must be in (0, 1], got {}",
                self.percentile
            ));
        }
        if self.floor_ms > self.ceiling_ms {
            return Err(format!(
                "adaptive deadline floor ({}) exceeds ceiling ({})",
                self.floor_ms, self.ceiling_ms
            ));
        }
        if self.window == 0 {
            return Err("adaptive deadline window must be >= 1".into());
        }
        Ok(())
    }

    /// Deadline derived from `observed` latencies: the configured
    /// percentile, clamped to `[floor_ms, ceiling_ms]`. With no
    /// observations yet the ceiling applies (lenient warm-up).
    pub fn effective_deadline_ms(&self, observed: &[u64]) -> u64 {
        if observed.is_empty() {
            return self.ceiling_ms;
        }
        let mut sorted = observed.to_vec();
        sorted.sort_unstable();
        let idx = (((sorted.len() - 1) as f64) * self.percentile).ceil() as usize;
        sorted[idx.min(sorted.len() - 1)].clamp(self.floor_ms, self.ceiling_ms)
    }
}

/// How a partition severs a client from the aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionKind {
    /// No traffic in either direction: the broadcast never reaches the
    /// client and its result never reaches the aggregator.
    Full,
    /// One-way reachability: the client still receives the broadcast (and
    /// burns compute) but its result frames are lost on the way back.
    Asymmetric,
}

/// One partition window: the listed clients are severed from the
/// aggregator from `start_round` until `heal_round` (exclusive), or
/// forever when `heal_round` is `None`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// First round (0-based) the partition is active.
    pub start_round: u64,
    /// Round at which the partition heals (exclusive); `None` never heals.
    #[serde(default)]
    pub heal_round: Option<u64>,
    /// Clients documented as staying connected (informational; everyone
    /// not in `severed` is reachable regardless).
    #[serde(default)]
    pub connected: Vec<u32>,
    /// Clients cut off from the aggregator while the window is active.
    pub severed: Vec<u32>,
    /// `true` marks an asymmetric partition ([`PartitionKind::Asymmetric`]).
    #[serde(default)]
    pub asymmetric: bool,
}

impl PartitionSpec {
    /// Whether the window covers `round`.
    pub fn active_at(&self, round: u64) -> bool {
        round >= self.start_round && self.heal_round.is_none_or(|h| round < h)
    }

    /// The severing in effect for `client` at `round`, if any.
    pub fn state(&self, round: u64, client: u32) -> Option<PartitionKind> {
        if self.active_at(round) && self.severed.contains(&client) {
            Some(if self.asymmetric {
                PartitionKind::Asymmetric
            } else {
                PartitionKind::Full
            })
        } else {
            None
        }
    }

    /// Checks round ordering and group sanity.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.severed.is_empty() {
            return Err("partition severed group must not be empty".into());
        }
        if let Some(h) = self.heal_round {
            if h <= self.start_round {
                return Err(format!(
                    "partition heal round {h} must come after start round {}",
                    self.start_round
                ));
            }
        }
        if self.connected.iter().any(|c| self.severed.contains(c)) {
            return Err("partition groups must be disjoint".into());
        }
        Ok(())
    }
}

/// An ordered set of [`PartitionSpec`] windows; later specs win when
/// windows overlap for the same client.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSchedule {
    specs: Vec<PartitionSpec>,
}

impl PartitionSchedule {
    /// Builds a schedule from explicit windows.
    pub fn new(specs: Vec<PartitionSpec>) -> Self {
        PartitionSchedule { specs }
    }

    /// `true` when no windows are scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of scheduled partition windows.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// The windows, in declaration order.
    pub fn specs(&self) -> &[PartitionSpec] {
        &self.specs
    }

    /// The severing in effect for `client` at `round`, if any.
    pub fn state(&self, round: u64, client: u32) -> Option<PartitionKind> {
        self.specs.iter().rev().find_map(|s| s.state(round, client))
    }

    /// Whether any window is active at `round`.
    pub fn active_at(&self, round: u64) -> bool {
        self.specs.iter().any(|s| s.active_at(round))
    }

    /// Whether a window heals exactly at `round` (its first healed round).
    pub fn heals_at(&self, round: u64) -> bool {
        self.specs.iter().any(|s| s.heal_round == Some(round))
    }

    /// Validates every window.
    ///
    /// # Errors
    /// Returns the first window's validation error.
    pub fn validate(&self) -> Result<(), String> {
        self.specs.iter().try_for_each(PartitionSpec::validate)
    }
}

/// What the network did to one delivery: derived deterministically from
/// `(seed, round, client)` by [`NetworkModel::link_outcome`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkOutcome {
    /// One-way latency per transmission attempt: base + jitter + transfer.
    pub latency_ms: u64,
    /// Leading transmission attempts lost in flight (each consumes retry
    /// budget and backoff, like corruption but without a decodable frame).
    pub lost_attempts: u32,
    /// Extra copies of the frame that arrive (0 or 1).
    pub duplicates: u32,
    /// Reorder delay added to the primary arrival (0 = in order).
    pub reorder_ms: u64,
    /// Reorder delay of the duplicate arrival, when there is one.
    pub dup_reorder_ms: u64,
}

/// The deterministic chaos network: one [`LinkProfile`] applied to every
/// link, outcomes keyed off `(seed, round, client)`.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    profile: LinkProfile,
    seed: u64,
}

/// Salt separating network draws from every other seeded stream (fault
/// plan cells, link corruption bit flips, data shards).
const NET_SALT: u64 = 0x6e65_745f_6c69_6e6b; // "net_link"

fn mix_stream(seed: u64, round: u64, client: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed ^ NET_SALT;
    for byte in round.to_le_bytes().into_iter().chain(client.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn next_f64(state: &mut u64) -> f64 {
    (splitmix_next(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_below(state: &mut u64, n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        splitmix_next(state) % n
    }
}

impl NetworkModel {
    /// Builds a model from a profile and the run seed.
    pub fn new(profile: LinkProfile, seed: u64) -> Self {
        NetworkModel { profile, seed }
    }

    /// The profile this model applies to every link.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Derives the chaos outcome for delivering `frame_bytes` from
    /// `client` to the aggregator at `round`.
    ///
    /// Every call consumes a fixed number of draws from the per-cell
    /// stream regardless of which effects fire, so changing one rate (say
    /// `dup_rate`) perturbs *only* that effect across a replay — the basis
    /// of the "duplicates never change the trajectory" dedup test.
    pub fn link_outcome(&self, round: u64, client: u32, frame_bytes: usize) -> LinkOutcome {
        let mut s = mix_stream(self.seed, round, client);
        let jitter = next_below(&mut s, self.profile.jitter_ms.saturating_add(1));
        let loss_u = next_f64(&mut s);
        let loss_extra = next_below(&mut s, MAX_LOSS_BURST);
        let dup_u = next_f64(&mut s);
        let reorder = next_below(&mut s, self.profile.reorder_window_ms.saturating_add(1));
        let dup_reorder = next_below(&mut s, self.profile.reorder_window_ms.saturating_add(1));

        let lost_attempts = if loss_u < self.profile.loss_rate {
            1 + loss_extra as u32
        } else {
            0
        };
        let duplicates = u32::from(dup_u < self.profile.dup_rate);
        LinkOutcome {
            latency_ms: self
                .profile
                .base_latency_ms
                .saturating_add(jitter)
                .saturating_add(self.profile.transfer_ms(frame_bytes)),
            lost_attempts,
            duplicates,
            reorder_ms: reorder,
            dup_reorder_ms: if duplicates > 0 { dup_reorder } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_profile() -> LinkProfile {
        LinkProfile {
            base_latency_ms: 40,
            jitter_ms: 20,
            bandwidth_kbps: 8_000,
            loss_rate: 0.3,
            dup_rate: 0.3,
            reorder_window_ms: 50,
        }
    }

    #[test]
    fn outcomes_replay_bit_identically() {
        let a = NetworkModel::new(chaotic_profile(), 42);
        let b = NetworkModel::new(chaotic_profile(), 42);
        for round in 0..8 {
            for client in 0..16 {
                assert_eq!(
                    a.link_outcome(round, client, 4_096),
                    b.link_outcome(round, client, 4_096)
                );
            }
        }
    }

    #[test]
    fn outcomes_vary_across_rounds_clients_and_seeds() {
        let m = NetworkModel::new(chaotic_profile(), 42);
        let other_seed = NetworkModel::new(chaotic_profile(), 43);
        let base = m.link_outcome(0, 0, 4_096);
        let mut differs = 0;
        for (r, c) in [(1, 0), (0, 1), (7, 9)] {
            if m.link_outcome(r, c, 4_096) != base {
                differs += 1;
            }
        }
        assert!(differs > 0, "outcomes never varied across cells");
        assert_ne!(other_seed.link_outcome(0, 0, 4_096), base);
    }

    #[test]
    fn default_profile_is_a_no_op() {
        let m = NetworkModel::new(LinkProfile::default(), 7);
        for round in 0..4 {
            for client in 0..8 {
                assert_eq!(
                    m.link_outcome(round, client, 1 << 20),
                    LinkOutcome::default()
                );
            }
        }
    }

    #[test]
    fn rate_changes_perturb_only_their_effect() {
        // Same seed, dup_rate toggled: latency, loss and reorder draws
        // must be untouched — fixed draw consumption per outcome.
        let mut with_dup = chaotic_profile();
        with_dup.dup_rate = 1.0;
        let mut without = chaotic_profile();
        without.dup_rate = 0.0;
        let a = NetworkModel::new(with_dup, 9);
        let b = NetworkModel::new(without, 9);
        for round in 0..6 {
            for client in 0..6 {
                let oa = a.link_outcome(round, client, 2_048);
                let ob = b.link_outcome(round, client, 2_048);
                assert_eq!(oa.latency_ms, ob.latency_ms);
                assert_eq!(oa.lost_attempts, ob.lost_attempts);
                assert_eq!(oa.reorder_ms, ob.reorder_ms);
                assert_eq!(oa.duplicates, 1);
                assert_eq!(ob.duplicates, 0);
            }
        }
    }

    #[test]
    fn transfer_time_scales_with_size_and_bandwidth() {
        let p = LinkProfile {
            bandwidth_kbps: 8_000, // 8 bits/us = 1 KB/ms
            ..LinkProfile::default()
        };
        assert_eq!(p.transfer_ms(1_000), 1);
        assert_eq!(p.transfer_ms(1_000_000), 1_000);
        assert_eq!(LinkProfile::default().transfer_ms(1 << 30), 0);
    }

    #[test]
    fn adaptive_deadline_takes_percentile_with_clamps() {
        let ad = AdaptiveDeadlineConfig {
            percentile: 0.5,
            floor_ms: 10,
            ceiling_ms: 1_000,
            window: 64,
        };
        assert_eq!(ad.effective_deadline_ms(&[]), 1_000);
        assert_eq!(ad.effective_deadline_ms(&[50, 200, 100]), 100);
        assert_eq!(ad.effective_deadline_ms(&[1, 2, 3]), 10); // floor
        assert_eq!(ad.effective_deadline_ms(&[9_999, 8_888]), 1_000); // ceiling
        let p99 = AdaptiveDeadlineConfig {
            percentile: 0.99,
            ..ad
        };
        let mut obs: Vec<u64> = (1..=100).collect();
        obs.reverse();
        assert_eq!(p99.effective_deadline_ms(&obs), 100);
    }

    #[test]
    fn adaptive_deadline_validation_rejects_bad_knobs() {
        let mut ad = AdaptiveDeadlineConfig::default();
        assert!(ad.validate().is_ok());
        ad.percentile = 0.0;
        assert!(ad.validate().is_err());
        ad.percentile = 0.9;
        ad.floor_ms = 10;
        ad.ceiling_ms = 5;
        assert!(ad.validate().is_err());
    }

    #[test]
    fn partition_schedule_tracks_windows_and_heals() {
        let sched = PartitionSchedule::new(vec![
            PartitionSpec {
                start_round: 2,
                heal_round: Some(4),
                connected: vec![0],
                severed: vec![1, 2],
                asymmetric: false,
            },
            PartitionSpec {
                start_round: 5,
                heal_round: None,
                connected: vec![],
                severed: vec![3],
                asymmetric: true,
            },
        ]);
        assert!(sched.validate().is_ok());
        assert_eq!(sched.state(1, 1), None);
        assert_eq!(sched.state(2, 1), Some(PartitionKind::Full));
        assert_eq!(sched.state(3, 2), Some(PartitionKind::Full));
        assert_eq!(sched.state(4, 1), None, "healed at round 4");
        assert!(sched.heals_at(4));
        assert!(!sched.heals_at(3));
        assert_eq!(sched.state(9, 3), Some(PartitionKind::Asymmetric));
        assert_eq!(sched.state(9, 0), None);
        assert!(sched.active_at(100), "unhealed window stays active");
    }

    #[test]
    fn partition_validation_rejects_bad_windows() {
        let mut spec = PartitionSpec {
            start_round: 3,
            heal_round: Some(3),
            connected: vec![],
            severed: vec![1],
            asymmetric: false,
        };
        assert!(spec.validate().is_err(), "heal must follow start");
        spec.heal_round = Some(5);
        assert!(spec.validate().is_ok());
        spec.severed.clear();
        assert!(spec.validate().is_err(), "empty severed group");
        spec.severed = vec![1];
        spec.connected = vec![1];
        assert!(spec.validate().is_err(), "overlapping groups");
    }

    #[test]
    fn network_config_validation() {
        let mut nc = NetworkConfig::default();
        assert!(nc.validate().is_ok());
        nc.min_quorum_frac = 1.5;
        assert!(nc.validate().is_err());
        nc.min_quorum_frac = 0.5;
        nc.slow_factor = 0;
        assert!(nc.validate().is_err());
        nc.slow_factor = 10;
        nc.profile.loss_rate = -0.1;
        assert!(nc.validate().is_err());
    }
}
