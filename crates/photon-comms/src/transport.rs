//! Transport abstraction for the aggregator <-> client Link.
//!
//! Photon's federation logic (aggregator, guard, membership, checkpoint
//! recovery) is written against typed [`Message`]s moved over *some*
//! frame pipe. This module names that pipe: the [`Link`] trait is the
//! minimal blocking surface — send a frame, receive a frame with a
//! timeout, observe connectivity — that both backends implement:
//!
//! * [`ChannelLink`]: an in-process pair of bounded queues, used by the
//!   deterministic simulator and by unit tests of the multi-process
//!   coordinator core (no sockets, no timing nondeterminism beyond the
//!   caller-supplied timeouts);
//! * `photon_net::TcpLink`: length-prefixed frames over a real TCP
//!   socket for the `photon serve` / `photon client` deployment.
//!
//! Frames carried over a `Link` are the exact wire format from
//! [`crate::encode_frame`] — magic/version/flags/CRC32/length header plus
//! payload — so integrity checking is identical on both backends.

use crate::{Message, WireError, WireOpts};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a `Link` operation failed.
#[derive(Debug)]
pub enum LinkError {
    /// The peer hung up (or the link was closed locally); no further
    /// frames will move. Callers holding a session token should
    /// reconnect and resume rather than treat this as fatal.
    Closed,
    /// No frame arrived within the receive timeout. The link may still
    /// be healthy — heartbeat accounting decides when a quiet link is
    /// declared dead.
    TimedOut,
    /// An I/O error from the underlying socket (TCP backend only).
    Io(std::io::Error),
    /// A frame arrived but failed integrity/framing checks.
    Wire(WireError),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Closed => write!(f, "link closed by peer"),
            LinkError::TimedOut => write!(f, "link receive timed out"),
            LinkError::Io(e) => write!(f, "link i/o error: {e}"),
            LinkError::Wire(e) => write!(f, "link wire error: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<WireError> for LinkError {
    fn from(e: WireError) -> LinkError {
        LinkError::Wire(e)
    }
}

impl From<std::io::Error> for LinkError {
    fn from(e: std::io::Error) -> LinkError {
        LinkError::Io(e)
    }
}

/// A blocking, bidirectional frame pipe between one aggregator endpoint
/// and one client endpoint.
///
/// Implementations must be usable from multiple threads through `&self`
/// (send and receive sides are typically driven by different threads).
pub trait Link: Send + Sync {
    /// Queues one complete wire frame for the peer.
    ///
    /// # Errors
    /// [`LinkError::Closed`] when the peer is gone; [`LinkError::Io`] on
    /// socket failure.
    fn send_frame(&self, frame: Bytes) -> Result<(), LinkError>;

    /// Receives the next complete wire frame, waiting at most `timeout`.
    ///
    /// # Errors
    /// [`LinkError::TimedOut`] when no frame arrived in time,
    /// [`LinkError::Closed`] when the peer is gone, [`LinkError::Wire`]
    /// when an arriving frame fails integrity checks.
    fn recv_frame(&self, timeout: Duration) -> Result<Bytes, LinkError>;

    /// Whether the link believes the peer is still reachable. A `false`
    /// here is authoritative (the link is dead); a `true` is only
    /// optimistic — liveness is ultimately decided by heartbeats.
    fn is_connected(&self) -> bool;

    /// Serializes and sends a typed [`Message`].
    ///
    /// # Errors
    /// Propagates [`Link::send_frame`] errors.
    fn send_message(&self, msg: &Message, opts: WireOpts) -> Result<(), LinkError> {
        self.send_frame(msg.to_frame_opts(opts))
    }

    /// Receives and parses the next typed [`Message`].
    ///
    /// # Errors
    /// Propagates [`Link::recv_frame`] errors; a frame that decodes but
    /// fails message parsing is [`LinkError::Wire`].
    fn recv_message(&self, timeout: Duration) -> Result<Message, LinkError> {
        let frame = self.recv_frame(timeout)?;
        Message::from_frame(frame).map_err(LinkError::Wire)
    }
}

/// Frames a `ChannelLink` endpoint will buffer before `send_frame`
/// blocks. Deep enough for a full control-plane exchange plus a model
/// broadcast without ever stalling the single-threaded simulator.
const CHANNEL_LINK_DEPTH: usize = 256;

/// In-process [`Link`] backend: a pair of bounded MPSC queues.
///
/// [`ChannelLink::pair`] returns two connected endpoints; frames sent on
/// one are received on the other. Closing (or dropping) either endpoint
/// makes both report disconnected, mirroring a TCP hangup.
pub struct ChannelLink {
    tx: SyncSender<Bytes>,
    rx: Mutex<Receiver<Bytes>>,
    open: Arc<AtomicBool>,
}

impl ChannelLink {
    /// Creates two connected endpoints.
    pub fn pair() -> (ChannelLink, ChannelLink) {
        let (a_tx, b_rx) = std::sync::mpsc::sync_channel(CHANNEL_LINK_DEPTH);
        let (b_tx, a_rx) = std::sync::mpsc::sync_channel(CHANNEL_LINK_DEPTH);
        let open = Arc::new(AtomicBool::new(true));
        (
            ChannelLink {
                tx: a_tx,
                rx: Mutex::new(a_rx),
                open: Arc::clone(&open),
            },
            ChannelLink {
                tx: b_tx,
                rx: Mutex::new(b_rx),
                open,
            },
        )
    }

    /// Severs the link: both endpoints start returning
    /// [`LinkError::Closed`]. Used by fault injection to model a crashed
    /// peer without tearing down the process.
    pub fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
    }
}

impl Drop for ChannelLink {
    fn drop(&mut self) {
        self.close();
    }
}

impl Link for ChannelLink {
    fn send_frame(&self, frame: Bytes) -> Result<(), LinkError> {
        if !self.is_connected() {
            return Err(LinkError::Closed);
        }
        match self.tx.try_send(frame) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(_)) => Err(LinkError::Closed),
            Err(TrySendError::Full(frame)) => {
                // Bounded queue full: block like a TCP send buffer would.
                self.tx.send(frame).map_err(|_| LinkError::Closed)
            }
        }
    }

    fn recv_frame(&self, timeout: Duration) -> Result<Bytes, LinkError> {
        let rx = self.rx.lock().unwrap_or_else(|e| e.into_inner());
        if !self.open.load(Ordering::SeqCst) {
            // Drain anything already in flight before reporting the
            // hangup, like TCP delivers buffered data after FIN.
            return match rx.try_recv() {
                Ok(frame) => Ok(frame),
                Err(_) => Err(LinkError::Closed),
            };
        }
        match rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(LinkError::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Err(LinkError::Closed),
        }
    }

    fn is_connected(&self) -> bool {
        self.open.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_moves_frames_both_ways() {
        let (a, b) = ChannelLink::pair();
        a.send_frame(Bytes::from(&b"ping"[..])).unwrap();
        b.send_frame(Bytes::from(&b"pong"[..])).unwrap();
        assert_eq!(
            b.recv_frame(Duration::from_millis(50)).unwrap(),
            Bytes::from(&b"ping"[..])
        );
        assert_eq!(
            a.recv_frame(Duration::from_millis(50)).unwrap(),
            Bytes::from(&b"pong"[..])
        );
    }

    #[test]
    fn typed_messages_roundtrip_over_the_trait() {
        let (a, b) = ChannelLink::pair();
        let link: &dyn Link = &a;
        let msg = Message::Heartbeat {
            client_id: 4,
            seq: 17,
        };
        link.send_message(&msg, WireOpts::default()).unwrap();
        assert_eq!(b.recv_message(Duration::from_millis(50)).unwrap(), msg);
    }

    #[test]
    fn recv_times_out_on_quiet_link() {
        let (a, _b) = ChannelLink::pair();
        match a.recv_frame(Duration::from_millis(5)) {
            Err(LinkError::TimedOut) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn close_is_seen_by_both_ends_but_drains_in_flight() {
        let (a, b) = ChannelLink::pair();
        a.send_frame(Bytes::from(&b"last words"[..])).unwrap();
        a.close();
        assert!(!a.is_connected());
        assert!(!b.is_connected());
        // In-flight frame still delivered, then Closed.
        assert_eq!(
            b.recv_frame(Duration::from_millis(5)).unwrap(),
            Bytes::from(&b"last words"[..])
        );
        assert!(matches!(
            b.recv_frame(Duration::from_millis(5)),
            Err(LinkError::Closed)
        ));
        assert!(matches!(
            b.send_frame(Bytes::from(&b"x"[..])),
            Err(LinkError::Closed)
        ));
    }

    #[test]
    fn drop_closes_the_peer() {
        let (a, b) = ChannelLink::pair();
        drop(a);
        assert!(!b.is_connected());
        assert!(matches!(
            b.recv_frame(Duration::from_millis(5)),
            Err(LinkError::Closed)
        ));
    }
}
