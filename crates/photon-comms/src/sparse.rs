//! Top-k magnitude sparsification of model updates — the "pruning
//! techniques" arm of the Link post-processing pipeline (§4; Photon
//! defaults to lossless compression *without* pruning, but exposes the
//! hook).
//!
//! The wire format stores the dense length, then `(u32 index, f32 value)`
//! pairs for the surviving entries. At density `d`, payloads shrink to
//! `~ 2 d` of the dense size, at the cost of dropping `1 − d` of the
//! update's mass (the smallest-magnitude entries).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Sparsifies `xs`, keeping the `density` fraction of entries with the
/// largest magnitudes.
///
/// # Panics
/// Panics if `density` is outside `(0, 1]`.
pub fn sparsify_top_k(xs: &[f32], density: f64) -> Bytes {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let keep = ((xs.len() as f64 * density).ceil() as usize).clamp(1, xs.len().max(1));
    // Threshold via a sorted copy of magnitudes.
    let mut mags: Vec<f32> = xs.iter().map(|v| v.abs()).collect();
    mags.sort_unstable_by(|a, b| b.partial_cmp(a).expect("no NaN updates"));
    let threshold = mags.get(keep.saturating_sub(1)).copied().unwrap_or(0.0);

    let mut out = BytesMut::with_capacity(16 + keep * 8);
    out.put_u64_le(xs.len() as u64);
    let mut written = 0usize;
    for (i, &v) in xs.iter().enumerate() {
        if written >= keep {
            break;
        }
        if v.abs() >= threshold && v != 0.0 {
            out.put_u32_le(i as u32);
            out.put_f32_le(v);
            written += 1;
        }
    }
    out.freeze()
}

/// Reconstructs a dense vector (zeros elsewhere) from
/// [`sparsify_top_k`] output.
///
/// # Errors
/// Returns a description of the corruption on malformed input.
pub fn densify(mut buf: Bytes) -> Result<Vec<f32>, String> {
    if buf.remaining() < 8 {
        return Err("missing dense length".into());
    }
    let n = buf.get_u64_le() as usize;
    let mut out = vec![0.0f32; n];
    while buf.has_remaining() {
        if buf.remaining() < 8 {
            return Err("truncated sparse entry".into());
        }
        let idx = buf.get_u32_le() as usize;
        let val = buf.get_f32_le();
        if idx >= n {
            return Err(format!("sparse index {idx} out of bounds {n}"));
        }
        out[idx] = val;
    }
    Ok(out)
}

/// Fraction of the update's L2 mass preserved by sparsification at the
/// given density — the quantity to watch when enabling pruning.
pub fn retained_mass(xs: &[f32], density: f64) -> f64 {
    let sparse = densify(sparsify_top_k(xs, density)).expect("own output is valid");
    let total: f64 = xs.iter().map(|&v| (v as f64) * (v as f64)).sum();
    if total == 0.0 {
        return 1.0;
    }
    let kept: f64 = sparse.iter().map(|&v| (v as f64) * (v as f64)).sum();
    kept / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_tensor::SeedStream;

    #[test]
    fn keeps_the_largest_entries() {
        let xs = vec![0.1, -5.0, 0.2, 3.0, -0.05, 0.0];
        let dense = densify(sparsify_top_k(&xs, 0.3)).unwrap();
        assert_eq!(dense, vec![0.0, -5.0, 0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn full_density_roundtrips_exactly() {
        let mut rng = SeedStream::new(1);
        let xs: Vec<f32> = (0..500).map(|_| rng.next_normal()).collect();
        let dense = densify(sparsify_top_k(&xs, 1.0)).unwrap();
        assert_eq!(dense, xs);
    }

    #[test]
    fn payload_shrinks_with_density() {
        let mut rng = SeedStream::new(2);
        let xs: Vec<f32> = (0..10_000).map(|_| rng.next_normal()).collect();
        let d10 = sparsify_top_k(&xs, 0.1).len();
        let d50 = sparsify_top_k(&xs, 0.5).len();
        assert!(d10 < d50);
        assert!(d10 < xs.len() * 4 / 4); // ~0.2x of dense
        assert!((d10 as f64) < 0.25 * (xs.len() * 4) as f64);
    }

    #[test]
    fn retained_mass_is_monotone_in_density() {
        let mut rng = SeedStream::new(3);
        let xs: Vec<f32> = (0..2000).map(|_| rng.next_normal()).collect();
        let m10 = retained_mass(&xs, 0.1);
        let m50 = retained_mass(&xs, 0.5);
        let m100 = retained_mass(&xs, 1.0);
        assert!(m10 < m50 && m50 < m100);
        assert!((m100 - 1.0).abs() < 1e-12);
        // Top-10% of Gaussian entries hold far more than 10% of the mass.
        assert!(m10 > 0.25, "{m10}");
    }

    #[test]
    fn corrupt_streams_rejected() {
        let s = sparsify_top_k(&[1.0, 2.0, 3.0], 1.0);
        assert!(densify(s.slice(..s.len() - 3)).is_err());
        // Out-of-bounds index.
        let mut bad = BytesMut::new();
        bad.put_u64_le(2);
        bad.put_u32_le(9);
        bad.put_f32_le(1.0);
        assert!(densify(bad.freeze()).is_err());
    }

    #[test]
    fn empty_input() {
        assert!(densify(sparsify_top_k(&[], 0.5)).unwrap().is_empty());
    }
}
