/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
///
/// Used by the wire format to detect payload corruption in transit —
/// Photon's Link assumes TLS gives confidentiality, but frames are also
/// integrity-checked end-to-end so a corrupted model update is rejected
/// rather than silently aggregated.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "missed flip at {byte}:{bit}");
            }
        }
    }
}
