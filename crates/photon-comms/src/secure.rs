//! Secure aggregation via cancelling pairwise masks (Bonawitz et al. 2016,
//! simplified to the honest-but-curious, no-dropout case the paper's Link
//! "supports … for enhanced privacy, if needed" (§4)).
//!
//! Every ordered pair of clients `(i, j)` derives a shared seed; client `i`
//! adds `PRG(seed)` when `i < j` and subtracts it when `i > j`. Individual
//! masked updates are statistically hiding, while the masks cancel exactly
//! in the aggregate sum.

use photon_tensor::SeedStream;
use std::fmt;

/// Errors from secure-aggregation masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureAggError {
    /// A client appeared twice in the cohort list.
    DuplicateClient(u32),
    /// The masking client is not part of the cohort.
    ClientNotInCohort(u32),
}

impl fmt::Display for SecureAggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecureAggError::DuplicateClient(id) => write!(f, "duplicate client id {id}"),
            SecureAggError::ClientNotInCohort(id) => {
                write!(f, "client {id} not in the cohort")
            }
        }
    }
}

impl std::error::Error for SecureAggError {}

/// Derives the shared pairwise seed for clients `a` and `b` under a round
/// key. Symmetric: `pairwise_seed(k, a, b) == pairwise_seed(k, b, a)`.
/// In a real deployment this comes from a Diffie-Hellman exchange; here a
/// keyed hash models the agreed secret.
pub fn pairwise_seed(round_key: u64, a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let mut h = round_key ^ 0x9E37_79B9_7F4A_7C15;
    for v in [lo as u64, hi as u64] {
        h ^= v
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(31).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    h
}

/// Masks `update` in place for secure aggregation.
///
/// `cohort` is the full sorted list of participating client ids;
/// `client_id` identifies the caller. Masks drawn from `N(0, 1)` per
/// element swamp the update values (which are orders of magnitude smaller),
/// and cancel exactly across the cohort.
///
/// # Errors
/// Returns [`SecureAggError`] if the cohort contains duplicates or the
/// client is not a member.
pub fn mask_update(
    update: &mut [f32],
    client_id: u32,
    cohort: &[u32],
    round_key: u64,
) -> Result<(), SecureAggError> {
    let mut seen = cohort.to_vec();
    seen.sort_unstable();
    for w in seen.windows(2) {
        if w[0] == w[1] {
            return Err(SecureAggError::DuplicateClient(w[0]));
        }
    }
    if !cohort.contains(&client_id) {
        return Err(SecureAggError::ClientNotInCohort(client_id));
    }
    for &peer in cohort {
        if peer == client_id {
            continue;
        }
        let seed = pairwise_seed(round_key, client_id, peer);
        let mut prg = SeedStream::new(seed);
        let sign = if client_id < peer { 1.0f32 } else { -1.0 };
        for u in update.iter_mut() {
            *u += sign * prg.next_normal();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(n_clients: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n_clients)
            .map(|c| (0..dim).map(|i| (c * dim + i) as f32 * 1e-3).collect())
            .collect()
    }

    #[test]
    fn masks_cancel_in_aggregate() {
        let cohort: Vec<u32> = vec![0, 1, 2, 3, 4];
        let dim = 64;
        let originals = updates(cohort.len(), dim);
        let mut masked = originals.clone();
        for (i, &cid) in cohort.iter().enumerate() {
            mask_update(&mut masked[i], cid, &cohort, 777).unwrap();
        }
        let sum = |vs: &[Vec<f32>]| -> Vec<f32> {
            let mut s = vec![0.0f32; dim];
            for v in vs {
                for (a, b) in s.iter_mut().zip(v) {
                    *a += b;
                }
            }
            s
        };
        let s0 = sum(&originals);
        let s1 = sum(&masked);
        for (a, b) in s0.iter().zip(&s1) {
            assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn individual_updates_are_hidden() {
        let cohort = vec![0u32, 1];
        let original = vec![1e-3f32; 32];
        let mut masked = original.clone();
        mask_update(&mut masked, 0, &cohort, 1).unwrap();
        // The mask (unit normal) dominates the tiny update.
        let diff: f32 = masked
            .iter()
            .zip(&original)
            .map(|(m, o)| (m - o).abs())
            .sum::<f32>()
            / 32.0;
        assert!(diff > 0.1, "mask too weak: {diff}");
    }

    #[test]
    fn seed_is_symmetric_and_round_dependent() {
        assert_eq!(pairwise_seed(5, 1, 9), pairwise_seed(5, 9, 1));
        assert_ne!(pairwise_seed(5, 1, 9), pairwise_seed(6, 1, 9));
        assert_ne!(pairwise_seed(5, 1, 9), pairwise_seed(5, 1, 8));
    }

    #[test]
    fn validation_errors() {
        let mut u = vec![0.0f32; 4];
        assert_eq!(
            mask_update(&mut u, 0, &[0, 1, 1], 0),
            Err(SecureAggError::DuplicateClient(1))
        );
        assert_eq!(
            mask_update(&mut u, 9, &[0, 1], 0),
            Err(SecureAggError::ClientNotInCohort(9))
        );
    }

    #[test]
    fn single_client_cohort_is_identity() {
        let mut u = vec![0.5f32; 8];
        mask_update(&mut u, 3, &[3], 42).unwrap();
        assert_eq!(u, vec![0.5f32; 8]);
    }
}
