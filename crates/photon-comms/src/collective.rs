//! Real multi-threaded Ring-AllReduce over channels.
//!
//! This is the executable counterpart of the analytic RAR model in
//! [`crate::topology`]: `photon-core`'s DDP baseline uses it to average
//! gradients across worker threads, and the tests verify that the bytes it
//! moves equal the analytic `2 (K−1)/K · M` per worker.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// One participant in a ring all-reduce group.
///
/// Workers are created together via [`ring_allreduce_group`] and then moved
/// onto their threads. Every collective call must be made by **all**
/// workers of the group, in the same order, or the group deadlocks (the
/// same contract as NCCL/MPI collectives).
#[derive(Debug)]
pub struct RingWorker {
    rank: usize,
    n: usize,
    tx_next: Sender<Vec<f32>>,
    rx_prev: Receiver<Vec<f32>>,
    bytes_sent: usize,
}

/// Creates an `n`-worker ring. Worker `i` sends to `(i + 1) % n`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ring_allreduce_group(n: usize) -> Vec<RingWorker> {
    assert!(n > 0, "group needs at least one worker");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    // Worker i's outgoing channel feeds worker (i+1)%n, so worker i
    // receives on its own index and sends on channel i (wired to i+1).
    let mut workers: Vec<RingWorker> = Vec::with_capacity(n);
    let mut rx_iter = receivers.into_iter();
    for (rank, _) in (0..n).zip(0..n) {
        workers.push(RingWorker {
            rank,
            n,
            // Channel owned by rank, delivering to rank+1: sender index rank,
            // receiver index rank (consumed by rank+1). We fix up below.
            tx_next: senders[rank].clone(),
            rx_prev: rx_iter.next().expect("one receiver per worker"),
            bytes_sent: 0,
        });
    }
    // Receiver k currently pairs with sender k; we want worker k to hold
    // the receiver fed by worker (k-1+n)%n, i.e. receiver (k-1+n)%n.
    // Rotate the receivers by one position.
    if n > 1 {
        let mut rxs: Vec<Receiver<Vec<f32>>> = workers.iter().map(|w| w.rx_prev.clone()).collect();
        rxs.rotate_right(1);
        for (w, rx) in workers.iter_mut().zip(rxs) {
            w.rx_prev = rx;
        }
    }
    workers
}

impl RingWorker {
    /// This worker's rank in the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Total payload bytes this worker has sent (4 bytes per element).
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent
    }

    /// In-place element-wise **sum** across the group
    /// (reduce-scatter followed by all-gather, 2 (n−1) chunk transfers).
    ///
    /// # Panics
    /// Panics if workers pass buffers of different lengths.
    pub fn allreduce_sum(&mut self, data: &mut [f32]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        let bounds = chunk_bounds(data.len(), n);
        let chunk = |c: usize| bounds[c]..bounds[c + 1];

        // Phase 1: reduce-scatter. After n-1 steps, worker r holds the
        // fully reduced chunk (r + 1) % n.
        for step in 0..n - 1 {
            let send_c = (self.rank + n - step) % n;
            let buf = data[chunk(send_c)].to_vec();
            self.bytes_sent += buf.len() * 4;
            self.tx_next.send(buf).expect("ring peer hung up");
            let recv_c = (self.rank + n - step - 1) % n;
            let incoming = self.rx_prev.recv().expect("ring peer hung up");
            let dst = &mut data[chunk(recv_c)];
            assert_eq!(incoming.len(), dst.len(), "ring buffers must match");
            for (d, s) in dst.iter_mut().zip(&incoming) {
                *d += s;
            }
        }

        // Phase 2: all-gather the reduced chunks around the ring.
        for step in 0..n - 1 {
            let send_c = (self.rank + 1 + n - step) % n;
            let buf = data[chunk(send_c)].to_vec();
            self.bytes_sent += buf.len() * 4;
            self.tx_next.send(buf).expect("ring peer hung up");
            let recv_c = (self.rank + n - step) % n;
            let incoming = self.rx_prev.recv().expect("ring peer hung up");
            let dst = &mut data[chunk(recv_c)];
            assert_eq!(incoming.len(), dst.len(), "ring buffers must match");
            dst.copy_from_slice(&incoming);
        }
    }

    /// In-place element-wise **mean** across the group.
    pub fn allreduce_mean(&mut self, data: &mut [f32]) {
        self.allreduce_sum(data);
        let inv = 1.0 / self.n as f32;
        for d in data.iter_mut() {
            *d *= inv;
        }
    }
}

fn chunk_bounds(len: usize, n: usize) -> Vec<usize> {
    let base = len / n;
    let rem = len % n;
    let mut bounds = Vec::with_capacity(n + 1);
    let mut pos = 0usize;
    bounds.push(0);
    for c in 0..n {
        pos += base + usize::from(c < rem);
        bounds.push(pos);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bytes_on_wire, Topology};

    fn run_group(n: usize, len: usize, mean: bool) -> (Vec<Vec<f32>>, usize) {
        let workers = ring_allreduce_group(n);
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(r, mut w)| {
                std::thread::spawn(move || {
                    let mut data: Vec<f32> =
                        (0..len).map(|i| (r * len + i) as f32 * 0.25).collect();
                    if mean {
                        w.allreduce_mean(&mut data);
                    } else {
                        w.allreduce_sum(&mut data);
                    }
                    (data, w.bytes_sent())
                })
            })
            .collect();
        let mut outs = Vec::new();
        let mut total_bytes = 0usize;
        for h in handles {
            let (d, b) = h.join().expect("worker panicked");
            outs.push(d);
            total_bytes += b;
        }
        (outs, total_bytes)
    }

    #[test]
    fn sum_matches_serial_reduction() {
        for n in [1usize, 2, 3, 4, 7] {
            let len = 13;
            let (outs, _) = run_group(n, len, false);
            let mut expect = vec![0.0f32; len];
            for r in 0..n {
                for (i, e) in expect.iter_mut().enumerate() {
                    *e += (r * len + i) as f32 * 0.25;
                }
            }
            for (r, out) in outs.iter().enumerate() {
                for (a, b) in out.iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-3, "n={n} rank={r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn mean_divides_by_group_size() {
        let (outs, _) = run_group(4, 8, true);
        let mut expect = vec![0.0f32; 8];
        for r in 0..4 {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += (r * 8 + i) as f32 * 0.25;
            }
        }
        for e in expect.iter_mut() {
            *e /= 4.0;
        }
        for out in &outs {
            for (a, b) in out.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn wire_bytes_match_analytic_model() {
        // With len divisible by n, the threaded implementation moves
        // exactly the analytic RAR volume: 2 (K-1)/K * M per worker.
        let (n, len) = (4usize, 64usize);
        let (_, total_bytes) = run_group(n, len, false);
        let analytic = bytes_on_wire(Topology::RingAllReduce, n, len * 4);
        assert_eq!(total_bytes, analytic);
    }

    #[test]
    fn single_worker_is_noop() {
        let (outs, bytes) = run_group(1, 5, false);
        assert_eq!(bytes, 0);
        assert_eq!(outs[0], vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn uneven_chunks_still_correct() {
        // len = 10 over n = 4: chunks 3,3,2,2.
        let (outs, _) = run_group(4, 10, false);
        for out in &outs[1..] {
            assert_eq!(out, &outs[0]);
        }
    }

    #[test]
    fn chunk_bounds_cover_everything() {
        assert_eq!(chunk_bounds(10, 4), vec![0, 3, 6, 8, 10]);
        assert_eq!(chunk_bounds(8, 4), vec![0, 2, 4, 6, 8]);
        assert_eq!(chunk_bounds(3, 4), vec![0, 1, 2, 3, 3]);
    }
}
