use crate::{comm_time_seconds, Topology};
use serde::{Deserialize, Serialize};

/// A simulated walltime clock for the federation's control plane: time is
/// a pure function of the round index (`now = round × round_ms`), so lease
/// expiry and membership decisions replay bit-identically and survive a
/// checkpoint restore without persisting any clock state.
///
/// This deliberately reuses the paper's round-synchronous time model
/// (Appendix B.1): one federated round advances the clock by one nominal
/// round duration, matching how `round_deadline_ms` already measures
/// straggler lateness in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    /// Nominal duration of one federated round in simulated milliseconds.
    pub round_ms: u64,
}

impl SimClock {
    /// Creates a clock that advances `round_ms` per round.
    ///
    /// # Panics
    /// Panics if `round_ms` is zero (time would stand still).
    pub fn new(round_ms: u64) -> Self {
        assert!(round_ms > 0, "round duration must be positive");
        SimClock { round_ms }
    }

    /// Simulated milliseconds at the *start* of `round`.
    pub fn now_ms(&self, round: u64) -> u64 {
        round.saturating_mul(self.round_ms)
    }

    /// Simulated microseconds at the *start* of `round` — the value
    /// federation drivers publish to `photon_trace::set_sim_time_us` so
    /// trace timestamps replay bit-identically.
    pub fn now_us(&self, round: u64) -> u64 {
        self.now_ms(round).saturating_mul(1_000)
    }

    /// How many whole rounds a lease of `lease_ms` spans from its grant.
    pub fn rounds_per_lease(&self, lease_ms: u64) -> u64 {
        lease_ms / self.round_ms
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock { round_ms: 1_000 }
    }
}

/// One federated round's time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundTime {
    /// Local compute seconds (Eq. 1: `τ / ν`).
    pub compute_s: f64,
    /// Communication seconds (Eqs. 2–4, by topology).
    pub comm_s: f64,
}

impl RoundTime {
    /// Total round seconds (Eq. 5).
    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s
    }

    /// Fraction of the round spent communicating (the percentages atop the
    /// bars in Figs. 6, 9, 10).
    pub fn comm_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.comm_s / self.total()
        }
    }
}

/// The Appendix B.1 wall-time model.
///
/// Local compute does **not** scale with the number of clients per round
/// (all clients run the same recipe in parallel on equipollent hardware);
/// communication depends on the topology, cohort size, model size and the
/// bottleneck bandwidth.
///
/// ```
/// use photon_comms::{Topology, WallTimeModel};
/// // 125M model: ν = 2 batches/s, τ = 512 local steps, S = 500 MB over
/// // 10 Gbps.
/// let m = WallTimeModel::new(2.0, 512, 500.0, 1250.0, Topology::RingAllReduce);
/// let round = m.round_time(8);
/// assert_eq!(round.compute_s, 256.0);
/// assert!(round.comm_s < round.compute_s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WallTimeModel {
    /// Local throughput ν in batches/second.
    pub nu: f64,
    /// Local steps per round τ.
    pub tau: u64,
    /// Model payload size in MB.
    pub model_mb: f64,
    /// Bottleneck bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Aggregation topology.
    pub topology: Topology,
}

impl WallTimeModel {
    /// Creates a wall-time model.
    ///
    /// # Panics
    /// Panics if `nu`, `model_mb` or `bandwidth_mbps` is not positive, or
    /// `tau` is zero.
    pub fn new(nu: f64, tau: u64, model_mb: f64, bandwidth_mbps: f64, topology: Topology) -> Self {
        assert!(nu > 0.0, "throughput must be positive");
        assert!(tau > 0, "local steps must be positive");
        assert!(model_mb > 0.0, "model size must be positive");
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        WallTimeModel {
            nu,
            tau,
            model_mb,
            bandwidth_mbps,
            topology,
        }
    }

    /// Local compute time per round (Eq. 1).
    pub fn local_time(&self) -> f64 {
        self.tau as f64 / self.nu
    }

    /// One round's breakdown for a cohort of `k` clients (Eq. 5).
    pub fn round_time(&self, k: usize) -> RoundTime {
        RoundTime {
            compute_s: self.local_time(),
            comm_s: comm_time_seconds(self.topology, k, self.model_mb, self.bandwidth_mbps),
        }
    }

    /// Total wall time over `rounds` rounds (Eq. 6).
    pub fn total_time(&self, k: usize, rounds: u64) -> RoundTime {
        let r = self.round_time(k);
        RoundTime {
            compute_s: r.compute_s * rounds as f64,
            comm_s: r.comm_s * rounds as f64,
        }
    }

    /// Round time when the client overlaps communication with cleanup and
    /// the next round's setup (Appendix B.2: clients "offload the
    /// communication process and simultaneously clean up"). Communication
    /// hides behind compute up to the round's compute time; only the
    /// excess is exposed.
    pub fn round_time_overlapped(&self, k: usize) -> RoundTime {
        let r = self.round_time(k);
        RoundTime {
            compute_s: r.compute_s,
            comm_s: (r.comm_s - r.compute_s).max(0.0),
        }
    }

    /// Round time for a cohort with *heterogeneous* hardware: a
    /// synchronous round is gated by its slowest client (the straggler),
    /// so local compute is `τ / min(ν)`. The paper assumes equipollent
    /// hardware (Appendix B.1); this extension quantifies the §6
    /// cross-device system-heterogeneity cost.
    ///
    /// # Panics
    /// Panics if `nus` is empty or contains a non-positive throughput.
    pub fn round_time_heterogeneous(&self, nus: &[f64]) -> RoundTime {
        assert!(!nus.is_empty(), "need at least one client throughput");
        assert!(nus.iter().all(|&n| n > 0.0), "throughputs must be positive");
        let slowest = nus.iter().cloned().fold(f64::INFINITY, f64::min);
        RoundTime {
            compute_s: self.tau as f64 / slowest,
            comm_s: comm_time_seconds(self.topology, nus.len(), self.model_mb, self.bandwidth_mbps),
        }
    }

    /// The centralized-DDP equivalent: synchronizing every batch step is a
    /// round of τ = 1 (communication at every step) — how Table 2 derives
    /// the centralized communication burden from the same machinery.
    pub fn centralized(nu: f64, model_mb: f64, bandwidth_mbps: f64, topology: Topology) -> Self {
        WallTimeModel::new(nu, 1, model_mb, bandwidth_mbps, topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_a_pure_function_of_the_round() {
        let clock = SimClock::new(250);
        assert_eq!(clock.now_ms(0), 0);
        assert_eq!(clock.now_ms(4), 1_000);
        // Restoring at round 4 sees exactly the time the uninterrupted run
        // saw — there is no hidden clock state.
        assert_eq!(SimClock::new(250).now_ms(4), clock.now_ms(4));
        assert_eq!(clock.rounds_per_lease(1_000), 4);
        assert_eq!(SimClock::default().round_ms, 1_000);
    }

    #[test]
    #[should_panic(expected = "round duration must be positive")]
    fn zero_round_duration_panics() {
        SimClock::new(0);
    }

    #[test]
    fn eq1_local_time() {
        let m = WallTimeModel::new(2.0, 512, 100.0, 100.0, Topology::ParameterServer);
        assert_eq!(m.local_time(), 256.0);
        // Local time is independent of cohort size.
        assert_eq!(m.round_time(2).compute_s, m.round_time(16).compute_s);
    }

    #[test]
    fn totals_scale_linearly_with_rounds() {
        let m = WallTimeModel::new(1.0, 64, 100.0, 100.0, Topology::RingAllReduce);
        let one = m.round_time(4);
        let ten = m.total_time(4, 10);
        assert!((ten.total() - 10.0 * one.total()).abs() < 1e-9);
        assert!((ten.comm_fraction() - one.comm_fraction()).abs() < 1e-12);
    }

    #[test]
    fn federated_communicates_tau_times_less() {
        // Same cohort/model/bandwidth: the federated model communicates
        // once per τ steps, centralized once per step. Over a fixed number
        // of *optimizer steps*, comm time differs by exactly τ.
        let tau = 512u64;
        let fed = WallTimeModel::new(2.0, tau, 500.0, 1250.0, Topology::RingAllReduce);
        let cen = WallTimeModel::centralized(2.0, 500.0, 1250.0, Topology::RingAllReduce);
        let steps = 5120u64;
        let fed_total = fed.total_time(8, steps / tau);
        let cen_total = cen.total_time(8, steps);
        assert!((cen_total.comm_s / fed_total.comm_s - tau as f64).abs() < 1e-6);
        // And compute time is identical.
        assert!((cen_total.compute_s - fed_total.compute_s).abs() < 1e-9);
    }

    #[test]
    fn comm_fraction_bounds() {
        let m = WallTimeModel::new(10.0, 1, 10_000.0, 1.0, Topology::ParameterServer);
        let r = m.round_time(16);
        assert!(r.comm_fraction() > 0.99);
        let quiet = WallTimeModel::new(0.1, 512, 1.0, 10_000.0, Topology::RingAllReduce);
        assert!(quiet.round_time(2).comm_fraction() < 0.01);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn invalid_nu_panics() {
        WallTimeModel::new(0.0, 1, 1.0, 1.0, Topology::AllReduce);
    }

    #[test]
    fn stragglers_gate_heterogeneous_rounds() {
        let m = WallTimeModel::new(2.0, 512, 100.0, 1250.0, Topology::RingAllReduce);
        // One slow client (0.5 batches/s) among fast ones.
        let het = m.round_time_heterogeneous(&[2.0, 2.0, 0.5, 2.0]);
        assert_eq!(het.compute_s, 512.0 / 0.5);
        // Homogeneous cohort matches the standard model.
        let hom = m.round_time_heterogeneous(&[2.0; 4]);
        assert_eq!(hom.compute_s, m.round_time(4).compute_s);
        assert_eq!(hom.comm_s, m.round_time(4).comm_s);
    }

    #[test]
    fn overlap_hides_communication_behind_compute() {
        // Compute-bound round: overlap removes all exposed comm time.
        let m = WallTimeModel::new(1.0, 512, 100.0, 1250.0, Topology::RingAllReduce);
        let plain = m.round_time(8);
        let overlapped = m.round_time_overlapped(8);
        assert!(plain.comm_s > 0.0);
        assert_eq!(overlapped.comm_s, 0.0);
        assert_eq!(overlapped.compute_s, plain.compute_s);

        // Comm-bound round: only the excess over compute is exposed.
        let slow = WallTimeModel::new(10.0, 1, 10_000.0, 10.0, Topology::ParameterServer);
        let p = slow.round_time(8);
        let o = slow.round_time_overlapped(8);
        assert!((o.comm_s - (p.comm_s - p.compute_s)).abs() < 1e-9);
    }
}
