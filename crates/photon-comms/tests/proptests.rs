//! Property-based tests for the communication substrate.

use bytes::Bytes;
use photon_comms::{
    bytes_on_wire, comm_time_seconds, compress_f32s, crc32, decode_frame, decompress_f32s,
    encode_frame, mask_update, Topology,
};
use proptest::prelude::*;

proptest! {
    /// Compression round-trips arbitrary f32 bit patterns (compared as
    /// bits, so NaNs are covered too).
    #[test]
    fn compression_roundtrips_arbitrary_bits(bits in proptest::collection::vec(any::<u32>(), 0..512)) {
        let xs: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let back = decompress_f32s(compress_f32s(&xs)).unwrap();
        let back_bits: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    /// Frames round-trip arbitrary payloads, and any single-byte flip in
    /// the payload region is detected.
    #[test]
    fn frames_roundtrip_and_detect_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip in any::<proptest::sample::Index>(),
    ) {
        let frame = encode_frame(&payload, false);
        let (got, _) = decode_frame(frame.clone()).unwrap();
        prop_assert_eq!(&got[..], &payload[..]);

        let mut raw = frame.to_vec();
        let pos = 24 + flip.index(payload.len()); // inside the payload
        raw[pos] ^= 0x01;
        prop_assert!(decode_frame(Bytes::from(raw)).is_err());
    }

    /// CRC distributes differently for different inputs (no trivial
    /// collisions on single-byte appends).
    #[test]
    fn crc_changes_on_append(data in proptest::collection::vec(any::<u8>(), 0..128), extra in any::<u8>()) {
        let base = crc32(&data);
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(base, crc32(&longer));
    }

    /// Analytic communication times are monotone in model size and
    /// inversely monotone in bandwidth, for every topology.
    #[test]
    fn comm_time_monotonicity(
        k in 2usize..32,
        s in 1.0f64..10_000.0,
        b in 1.0f64..10_000.0,
    ) {
        for t in Topology::all() {
            let base = comm_time_seconds(t, k, s, b);
            prop_assert!(comm_time_seconds(t, k, s * 2.0, b) > base);
            prop_assert!(comm_time_seconds(t, k, s, b * 2.0) < base);
            prop_assert!(base > 0.0);
        }
    }

    /// RAR moves the least bytes of all topologies for any cohort.
    #[test]
    fn rar_moves_least_data(k in 2usize..64, m in 1usize..1_000_000) {
        let rar = bytes_on_wire(Topology::RingAllReduce, k, m);
        let ps = bytes_on_wire(Topology::ParameterServer, k, m);
        let ar = bytes_on_wire(Topology::AllReduce, k, m);
        prop_assert!(rar <= ps);
        prop_assert!(rar <= ar);
    }

    /// Secure-aggregation masks cancel for arbitrary cohort sizes and
    /// payload dims.
    #[test]
    fn masks_cancel(
        n_clients in 2usize..6,
        dim in 1usize..48,
        round_key in any::<u64>(),
    ) {
        let cohort: Vec<u32> = (0..n_clients as u32).collect();
        let updates: Vec<Vec<f32>> = (0..n_clients)
            .map(|c| (0..dim).map(|i| ((c + i) as f32) * 1e-3).collect())
            .collect();
        let mut masked = updates.clone();
        for (i, &cid) in cohort.iter().enumerate() {
            mask_update(&mut masked[i], cid, &cohort, round_key).unwrap();
        }
        for j in 0..dim {
            let plain: f32 = updates.iter().map(|u| u[j]).sum();
            let sec: f32 = masked.iter().map(|u| u[j]).sum();
            prop_assert!((plain - sec).abs() < 1e-3, "dim {j}: {plain} vs {sec}");
        }
    }
}
