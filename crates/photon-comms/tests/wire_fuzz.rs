//! Adversarial fuzzing of the wire-frame decode paths.
//!
//! The TCP transport feeds bytes straight off a socket into these
//! decoders, so they must be panic-free and allocation-bounded on ANY
//! input: truncated frames, single-bit flips of valid frames, and
//! arbitrary garbage. Every property here asserts "returns `Err` (or a
//! correct decode), never panics" — and that a hostile length field can
//! never drive a huge allocation, because the checks run before any
//! `Vec::with_capacity`.

use bytes::Bytes;
use photon_comms::{
    decode_frame, decode_frame_flags, FrameHeader, Message, WireError, FRAME_HEADER_LEN,
    MAX_FRAME_BYTES,
};
use proptest::prelude::*;

/// A valid frame to mutate: a ClientResult with a float payload covers
/// the longest decode path (header, tag, fixed fields, float block).
fn valid_frame(compress: bool) -> Vec<u8> {
    Message::ClientResult {
        round: 3,
        client_id: 7,
        delta: (0..64).map(|i| i as f32 * 0.5).collect(),
        weight: 1.5,
        metrics: photon_comms::TrainMetrics {
            mean_loss: 2.0,
            tokens: 1024,
            steps: 16,
        },
    }
    .to_frame(compress)
    .to_vec()
}

proptest! {
    /// Arbitrary garbage never panics any decoder.
    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..512)) {
        let bytes = Bytes::from(raw.clone());
        let _ = decode_frame(bytes.clone());
        let _ = decode_frame_flags(bytes.clone());
        let _ = Message::from_frame(bytes);
        if raw.len() >= FRAME_HEADER_LEN {
            let mut header = [0u8; FRAME_HEADER_LEN];
            header.copy_from_slice(&raw[..FRAME_HEADER_LEN]);
            let _ = FrameHeader::parse(&header, MAX_FRAME_BYTES);
        }
    }

    /// Every strict prefix of a valid frame is rejected as an error —
    /// never a panic, never a bogus success.
    #[test]
    fn truncation_always_errors(
        compress in any::<bool>(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let frame = valid_frame(compress);
        let len = cut.index(frame.len()); // 0..frame.len(): strict prefix
        let prefix = Bytes::from(frame[..len].to_vec());
        prop_assert!(decode_frame(prefix.clone()).is_err());
        prop_assert!(Message::from_frame(prefix).is_err());
    }

    /// Any single-bit flip anywhere in a valid frame either fails decode
    /// (the CRC, magic, version, or structural checks catch it) or is a
    /// flip inside the 2-byte flags field — the only header region
    /// deliberately outside the CRC. Never a panic either way.
    #[test]
    fn bit_flips_never_panic_and_never_pass_silently(
        compress in any::<bool>(),
        pos in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = valid_frame(compress);
        let mut raw = frame;
        let p = pos.index(raw.len());
        raw[p] ^= 1 << bit;
        match Message::from_frame(Bytes::from(raw)) {
            Err(_) => {}
            Ok(decoded) => {
                // The only flips allowed to decode are in the 2-byte
                // flags field (bytes 10..12): flags sit outside the CRC
                // and undefined flag bits are ignored. A flip of a
                // *defined* flag bit changes payload interpretation, so
                // it must not reproduce the original message; everywhere
                // else decode success is itself a failure.
                let _ = decoded;
                prop_assert!(
                    FLAG_BYTES.contains(&p),
                    "flip at byte {p} bit {bit} decoded outside the flags field"
                );
            }
        }
    }

    /// A hostile length field is rejected by `FrameHeader::parse` before
    /// any allocation could happen.
    #[test]
    fn hostile_length_rejected_before_allocation(declared in MAX_FRAME_BYTES + 1..u64::MAX) {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[..8].copy_from_slice(b"PHTNLNK1");
        header[8..10].copy_from_slice(&1u16.to_le_bytes()); // version
        // flags 0, crc 0 — irrelevant, length check runs first.
        header[16..24].copy_from_slice(&declared.to_le_bytes());
        match FrameHeader::parse(&header, MAX_FRAME_BYTES) {
            Err(WireError::FrameTooLarge { declared: d, max }) => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other),
        }
    }

    /// Garbage bytes stamped with a valid header prefix (magic + version)
    /// still never panic the decoders — exercises the post-header paths.
    #[test]
    fn valid_header_garbage_body_never_panics(
        body in proptest::collection::vec(any::<u8>(), 0..256),
        flags in any::<u16>(),
        crc in any::<u32>(),
        declared in any::<u64>(),
    ) {
        let mut raw = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
        raw.extend_from_slice(b"PHTNLNK1");
        raw.extend_from_slice(&1u16.to_le_bytes());
        raw.extend_from_slice(&flags.to_le_bytes());
        raw.extend_from_slice(&crc.to_le_bytes());
        raw.extend_from_slice(&declared.to_le_bytes());
        raw.extend_from_slice(&body);
        let bytes = Bytes::from(raw);
        let _ = decode_frame(bytes.clone());
        let _ = decode_frame_flags(bytes.clone());
        let _ = Message::from_frame(bytes);
    }
}

/// Byte offsets of the frame-flags field, the only header region outside
/// the CRC (magic 0..8, version 8..10, flags 10..12, crc 12..16).
const FLAG_BYTES: std::ops::Range<usize> = 10..12;

#[test]
fn exhaustive_truncation_of_every_message_kind() {
    // Deterministic sweep (not sampled): every prefix of every message
    // kind errors cleanly. Catches tag-specific truncation-check gaps the
    // sampled property might miss.
    let msgs = [
        Message::ModelBroadcast {
            round: 1,
            params: vec![1.0, 2.0, 3.0],
        },
        Message::Shutdown,
        Message::Hello {
            client_id: 1,
            birth_round: 0,
        },
        Message::LeaseGrant {
            client_id: 1,
            expires_ms: 5_000,
        },
        Message::SessionHello {
            client_id: u32::MAX,
            token: 0,
            last_acked_round: u64::MAX,
        },
        Message::SessionGrant {
            client_id: 2,
            token: 99,
            round: 4,
            resumed: false,
        },
        Message::Heartbeat {
            client_id: 2,
            seq: 8,
        },
        Message::ResultAck {
            client_id: 2,
            round: 4,
        },
        Message::RunSync {
            round: 4,
            state: 1,
            config_json: b"{}".to_vec(),
        },
    ];
    for msg in &msgs {
        for compress in [false, true] {
            let frame = msg.to_frame(compress).to_vec();
            for len in 0..frame.len() {
                let prefix = Bytes::from(frame[..len].to_vec());
                assert!(
                    Message::from_frame(prefix).is_err(),
                    "prefix {len}/{} of {msg:?} decoded",
                    frame.len()
                );
            }
            // And the full frame still round-trips.
            assert_eq!(
                &Message::from_frame(Bytes::from(frame)).unwrap(),
                msg,
                "full frame failed for {msg:?}"
            );
        }
    }
}
