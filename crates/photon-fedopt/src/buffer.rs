//! Staleness-aware buffered semi-synchronous aggregation (FedBuff-style;
//! Nguyen et al., and the staleness-tolerant merging FusionLLM argues
//! geo-distributed training needs).
//!
//! Instead of the barrier-synchronous round of Algorithm 1 — every sampled
//! client must report before anything merges — the aggregator accumulates
//! updates in an [`UpdateBuffer`] and **commits** a merge only once a
//! quorum of `m` updates is buffered. Updates that arrive after the round
//! they trained against are *stale*; the commit down-weights them by
//! [`staleness_factor`], a polynomial decay in the number of rounds the
//! update sat on the wire.
//!
//! Determinism: commits drain the buffer in `(origin_round, client_id)`
//! order and the staleness weights are pure functions of the entry's
//! rounds, so buffered runs replay bit-identically and the buffer state
//! can be checkpointed and restored exactly.
//!
//! With zero staleness (every buffered update originated this round) and a
//! full quorum, the committed merge is **bitwise identical** to the
//! synchronous weighted mean: `staleness_factor(0, d) == 1.0` exactly, so
//! the [`crate::ClientUpdate`] weights handed to the aggregation rule are
//! the same `f64`s the synchronous path would use.

use crate::ClientUpdate;
use serde::{Deserialize, Serialize};

/// Knobs for buffered semi-synchronous aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Commit a merge once this many updates are buffered (FedBuff's `m`).
    pub quorum: usize,
    /// Staleness decay exponent `d`: an update `s` rounds stale is
    /// down-weighted by `(1 + s)^-d`. `0` disables staleness weighting.
    pub staleness_decay: f64,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            quorum: 2,
            staleness_decay: 0.5,
        }
    }
}

impl BufferConfig {
    /// Checks parameter ranges.
    ///
    /// # Errors
    /// Returns a description of the out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if self.quorum == 0 {
            return Err("buffer quorum must be at least 1".into());
        }
        if !(self.staleness_decay.is_finite() && self.staleness_decay >= 0.0) {
            return Err(format!(
                "staleness decay {} must be finite and non-negative",
                self.staleness_decay
            ));
        }
        Ok(())
    }
}

/// The staleness multiplier applied to an update `staleness` rounds old:
/// `(1 + s)^-decay`. Exactly `1.0` at zero staleness, strictly positive,
/// and monotone non-increasing in `s`.
pub fn staleness_factor(staleness: u64, decay: f64) -> f64 {
    (1.0 + staleness as f64).powf(-decay)
}

/// Normalized commit weights for a buffered merge: each base weight is
/// scaled by its [`staleness_factor`] and the result normalized to sum to
/// one. Returns an empty vector for empty input.
///
/// # Panics
/// Panics if `base_weights` and `staleness` differ in length.
pub fn staleness_weights(base_weights: &[f64], staleness: &[u64], decay: f64) -> Vec<f64> {
    assert_eq!(
        base_weights.len(),
        staleness.len(),
        "weight/staleness length mismatch"
    );
    let scaled: Vec<f64> = base_weights
        .iter()
        .zip(staleness)
        .map(|(&w, &s)| w * staleness_factor(s, decay))
        .collect();
    let total: f64 = scaled.iter().sum();
    if total <= 0.0 {
        return scaled;
    }
    scaled.into_iter().map(|w| w / total).collect()
}

/// One update waiting in the buffer. `arrival_round` models transport
/// delay: a straggler that finished its round late is scheduled to arrive
/// in a future round instead of being dropped (the synchronous deadline
/// path) — it commits with the staleness discount instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferedUpdate {
    /// Sender.
    pub client_id: u32,
    /// Round the update's local training started from.
    pub origin_round: u64,
    /// Round the update reaches the aggregator (>= origin_round).
    pub arrival_round: u64,
    /// The client's aggregation weight before staleness scaling.
    pub base_weight: f64,
    /// The client's reported mean local loss (steers the watchdog).
    pub mean_loss: f32,
    /// Flat pseudo-gradient.
    pub delta: Vec<f32>,
}

impl BufferedUpdate {
    /// Rounds this update will have waited when committed at `round`.
    pub fn staleness_at(&self, round: u64) -> u64 {
        round.saturating_sub(self.origin_round)
    }
}

/// A committed merge batch, ready for guard screening and aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitBatch {
    /// Sender ids, parallel to `updates` (duplicates possible: a client
    /// may have several rounds' updates in one commit).
    pub client_ids: Vec<u32>,
    /// Origin rounds, parallel to `updates`.
    pub origin_rounds: Vec<u64>,
    /// Staleness-weighted updates in deterministic
    /// `(origin_round, client_id)` order.
    pub updates: Vec<ClientUpdate>,
    /// Reported mean losses, parallel to `updates`.
    pub losses: Vec<f32>,
    /// How many committed updates were stale (origin before the commit
    /// round).
    pub stale: usize,
}

/// The aggregator-side update buffer for semi-synchronous rounds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateBuffer {
    entries: Vec<BufferedUpdate>,
}

impl UpdateBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        UpdateBuffer::default()
    }

    /// Enqueues an update (immediately pending if `arrival_round` is the
    /// current round, deferred otherwise). Returns `false` — rejecting the
    /// update — when an entry with the same `(client_id, origin_round)` is
    /// already buffered: a duplicating link must never double-apply one
    /// client round, and legitimate arrivals are unique on that key.
    pub fn push(&mut self, update: BufferedUpdate) -> bool {
        let duplicate = self
            .entries
            .iter()
            .any(|e| e.client_id == update.client_id && e.origin_round == update.origin_round);
        if duplicate {
            return false;
        }
        self.entries.push(update);
        true
    }

    /// Updates that have arrived by `round` (deferred stragglers excluded).
    pub fn pending(&self, round: u64) -> usize {
        self.entries
            .iter()
            .filter(|e| e.arrival_round <= round)
            .count()
    }

    /// Updates still in flight after `round`.
    pub fn deferred(&self, round: u64) -> usize {
        self.entries.len() - self.pending(round)
    }

    /// Whether the pending set reaches the commit quorum at `round`.
    pub fn quorum_reached(&self, round: u64, quorum: usize) -> bool {
        self.pending(round) >= quorum
    }

    /// Drains every update that has arrived by `round` into a
    /// deterministic [`CommitBatch`], scaling each base weight by its
    /// [`staleness_factor`]. Returns `None` when nothing is pending.
    ///
    /// Weights are intentionally **unnormalized** (the aggregation rules
    /// normalize internally): at zero staleness they are exactly the base
    /// weights, which makes a full-quorum zero-staleness commit bitwise
    /// identical to the synchronous merge.
    pub fn commit(&mut self, round: u64, decay: f64) -> Option<CommitBatch> {
        let mut batch: Vec<BufferedUpdate> = Vec::new();
        self.entries.retain_mut(|e| {
            if e.arrival_round <= round {
                batch.push(std::mem::replace(
                    e,
                    BufferedUpdate {
                        client_id: 0,
                        origin_round: 0,
                        arrival_round: 0,
                        base_weight: 0.0,
                        mean_loss: 0.0,
                        delta: Vec::new(),
                    },
                ));
                false
            } else {
                true
            }
        });
        if batch.is_empty() {
            return None;
        }
        let mut commit_span = photon_trace::span(photon_trace::Phase::BufferCommit)
            .arg("round", round)
            .arg("updates", batch.len() as u64);
        batch.sort_by_key(|e| (e.origin_round, e.client_id));
        let mut out = CommitBatch {
            client_ids: Vec::with_capacity(batch.len()),
            origin_rounds: Vec::with_capacity(batch.len()),
            updates: Vec::with_capacity(batch.len()),
            losses: Vec::with_capacity(batch.len()),
            stale: 0,
        };
        for entry in batch {
            let s = entry.staleness_at(round);
            if s > 0 {
                out.stale += 1;
            }
            let weight = entry.base_weight * staleness_factor(s, decay);
            // base_weight was validated at arrival and the factor is in
            // (0, 1], so the product stays positive and finite.
            let update = ClientUpdate::new(entry.delta, weight)
                .expect("staleness scaling preserves weight validity");
            out.client_ids.push(entry.client_id);
            out.origin_rounds.push(entry.origin_round);
            out.updates.push(update);
            out.losses.push(entry.mean_loss);
        }
        commit_span.set_arg("stale", out.stale as u64);
        photon_trace::counter_add("buffer.committed_updates", out.updates.len() as u64);
        Some(out)
    }

    /// Streaming variant of [`commit`](UpdateBuffer::commit): drains the
    /// same pending set, but instead of materializing a sorted batch it
    /// feeds each entry — in arrival (insertion) order — through a
    /// memory-bounded [`StreamingMerge`] and returns the folded aggregate
    /// directly. The merge folds in canonical `(origin_round, client_id)`
    /// order, so the result is **bitwise identical** to
    /// [`canonical_fold`] over the batch [`commit`](UpdateBuffer::commit)
    /// would have produced, for any arrival permutation that fits within
    /// `max_resident`.
    pub fn commit_streaming(
        &mut self,
        round: u64,
        decay: f64,
        max_resident: usize,
    ) -> Option<StreamingCommit> {
        let mut batch: Vec<BufferedUpdate> = Vec::new();
        self.entries.retain_mut(|e| {
            if e.arrival_round <= round {
                batch.push(std::mem::replace(
                    e,
                    BufferedUpdate {
                        client_id: 0,
                        origin_round: 0,
                        arrival_round: 0,
                        base_weight: 0.0,
                        mean_loss: 0.0,
                        delta: Vec::new(),
                    },
                ));
                false
            } else {
                true
            }
        });
        if batch.is_empty() {
            return None;
        }
        let mut commit_span = photon_trace::span(photon_trace::Phase::BufferCommit)
            .arg("round", round)
            .arg("updates", batch.len() as u64);
        let mut expected: Vec<(u64, u32)> = batch
            .iter()
            .map(|e| (e.origin_round, e.client_id))
            .collect();
        expected.sort_unstable();
        let mut merge = StreamingMerge::new(expected, max_resident);
        let mut out = StreamingCommit {
            client_ids: Vec::with_capacity(batch.len()),
            origin_rounds: Vec::with_capacity(batch.len()),
            losses: Vec::with_capacity(batch.len()),
            stale: 0,
            merged: Vec::new(),
            weight: 0.0,
            peak_resident: 0,
        };
        for entry in batch {
            let s = entry.staleness_at(round);
            if s > 0 {
                out.stale += 1;
            }
            let weight = entry.base_weight * staleness_factor(s, decay);
            let update = ClientUpdate::new(entry.delta, weight)
                .expect("staleness scaling preserves weight validity");
            out.client_ids.push(entry.client_id);
            out.origin_rounds.push(entry.origin_round);
            out.losses.push(entry.mean_loss);
            merge.push((entry.origin_round, entry.client_id), update);
        }
        commit_span.set_arg("stale", out.stale as u64);
        photon_trace::counter_add("buffer.committed_updates", out.client_ids.len() as u64);
        out.peak_resident = merge.peak_resident();
        let (merged, weight) = merge.finish()?;
        out.merged = merged;
        out.weight = weight;
        Some(out)
    }

    /// Total buffered updates (pending plus deferred).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw entries, for checkpointing.
    pub fn entries(&self) -> &[BufferedUpdate] {
        &self.entries
    }

    /// Rebuilds a buffer from checkpointed entries.
    pub fn from_entries(entries: Vec<BufferedUpdate>) -> Self {
        UpdateBuffer { entries }
    }
}

/// The result of a streaming commit: the same metadata a [`CommitBatch`]
/// carries, with the updates already folded into one aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingCommit {
    /// Sender ids, in arrival order.
    pub client_ids: Vec<u32>,
    /// Origin rounds, parallel to `client_ids`.
    pub origin_rounds: Vec<u64>,
    /// Reported mean losses, parallel to `client_ids`.
    pub losses: Vec<f32>,
    /// How many committed updates were stale.
    pub stale: usize,
    /// The folded weighted mean (canonical summation order).
    pub merged: Vec<f32>,
    /// Total (staleness-scaled) weight behind `merged`.
    pub weight: f64,
    /// Most full update vectors the merge held at once.
    pub peak_resident: usize,
}

/// The canonical reference fold the streaming merge reproduces: weights
/// and weighted deltas are accumulated in f64 **in slice order**, then the
/// sum is normalized once and cast to f32. Hierarchical shard merges and
/// the root reduce both use this fold, so a shard tree over a canonically
/// sorted cohort is a pure re-bracketing of the same f64 operations.
/// Returns `(weighted_mean, total_weight)`, or `None` for an empty slice.
pub fn canonical_fold(updates: &[ClientUpdate]) -> Option<(Vec<f32>, f64)> {
    let first = updates.first()?;
    let mut acc = vec![0.0f64; first.delta.len()];
    let mut total_w = 0.0f64;
    for u in updates {
        assert_eq!(u.delta.len(), acc.len(), "delta length mismatch");
        total_w += u.weight;
        for (a, &d) in acc.iter_mut().zip(&u.delta) {
            *a += u.weight * d as f64;
        }
    }
    Some((
        acc.into_iter().map(|v| (v / total_w) as f32).collect(),
        total_w,
    ))
}

/// The outcome of offering one update to a [`StreamingMerge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPush {
    /// Folded into the accumulator (possibly unblocking held residents).
    Folded,
    /// Held resident, waiting for canonically earlier arrivals.
    Held,
    /// Dropped: its canonical slot is behind the fold frontier (already
    /// folded, or abandoned to keep residency bounded).
    LateDropped,
    /// Rejected: key not expected, or a duplicate of a held resident.
    Unexpected,
}

/// A streaming, memory-bounded weighted merge with a canonical summation
/// order — the per-shard fold of the hierarchical aggregation tree.
///
/// Updates are declared up front as a sorted set of expected
/// `(origin_round, client_id)` keys and may then arrive in any order. An
/// arrival matching the fold frontier is folded immediately (and unblocks
/// any held successors); an out-of-order arrival is held resident. The
/// fold therefore consumes updates in exactly the canonical sorted order,
/// making the result bitwise identical to [`canonical_fold`] over the
/// sorted batch — while never holding more than `max_resident` full
/// update vectors (the running accumulator counts as one).
///
/// When an arrival would exceed the bound, the merge *abandons* the
/// missing keys before its canonically-smallest resident and folds that
/// resident instead; an abandoned key that later arrives is counted and
/// dropped. Abandonment is deterministic in the arrival order, so runs
/// replay bit-identically.
#[derive(Debug, Clone)]
pub struct StreamingMerge {
    expected: Vec<(u64, u32)>,
    next: usize,
    held: std::collections::BTreeMap<(u64, u32), ClientUpdate>,
    acc: Vec<f64>,
    weight_sum: f64,
    folded: usize,
    abandoned: usize,
    late_drops: usize,
    peak_resident: usize,
    max_resident: usize,
}

impl StreamingMerge {
    /// Creates a merge over a **sorted, duplicate-free** expected key set.
    /// `max_resident` is clamped to at least 2 (accumulator + one held
    /// vector).
    ///
    /// # Panics
    /// Panics if `expected` is not strictly ascending.
    pub fn new(expected: Vec<(u64, u32)>, max_resident: usize) -> Self {
        assert!(
            expected.windows(2).all(|w| w[0] < w[1]),
            "expected keys must be strictly ascending"
        );
        StreamingMerge {
            expected,
            next: 0,
            held: std::collections::BTreeMap::new(),
            acc: Vec::new(),
            weight_sum: 0.0,
            folded: 0,
            abandoned: 0,
            late_drops: 0,
            peak_resident: 1,
            max_resident: max_resident.max(2),
        }
    }

    /// Offers one update for `key`.
    pub fn push(&mut self, key: (u64, u32), update: ClientUpdate) -> StreamPush {
        if self.expected.binary_search(&key).is_err() {
            return StreamPush::Unexpected;
        }
        if self.next >= self.expected.len() || key < self.expected[self.next] {
            self.late_drops += 1;
            return StreamPush::LateDropped;
        }
        if key == self.expected[self.next] {
            self.fold(update);
            self.next += 1;
            self.drain_held();
            return StreamPush::Folded;
        }
        if self.held.contains_key(&key) {
            return StreamPush::Unexpected;
        }
        // Out of canonical order: hold, evicting through abandonment if
        // the residency bound (held vectors + the accumulator) is hit.
        if self.held.len() + 1 >= self.max_resident {
            self.make_room();
            // The frontier may have advanced past this key's slot (or past
            // the whole expected set).
            if self.next >= self.expected.len() || key < self.expected[self.next] {
                self.late_drops += 1;
                return StreamPush::LateDropped;
            }
            if key == self.expected[self.next] {
                self.fold(update);
                self.next += 1;
                self.drain_held();
                return StreamPush::Folded;
            }
        }
        self.held.insert(key, update);
        self.peak_resident = self.peak_resident.max(self.held.len() + 1);
        StreamPush::Held
    }

    /// Folds everything still held (in canonical order) and returns the
    /// weighted mean plus the total folded weight; `None` if nothing was
    /// ever folded.
    pub fn finish(mut self) -> Option<(Vec<f32>, f64)> {
        while let Some((key, update)) = self.held.pop_first() {
            while self.expected[self.next] != key {
                self.abandoned += 1;
                self.next += 1;
            }
            self.fold(update);
            self.next += 1;
        }
        if self.folded == 0 {
            return None;
        }
        let w = self.weight_sum;
        Some((self.acc.into_iter().map(|v| (v / w) as f32).collect(), w))
    }

    /// Number of updates folded so far.
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// Most full update vectors resident at once (held + accumulator).
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Expected keys abandoned to keep residency bounded.
    pub fn abandoned(&self) -> usize {
        self.abandoned
    }

    /// Arrivals dropped because their canonical slot was already behind
    /// the fold frontier.
    pub fn late_drops(&self) -> usize {
        self.late_drops
    }

    fn fold(&mut self, update: ClientUpdate) {
        if self.acc.is_empty() {
            self.acc = vec![0.0f64; update.delta.len()];
        }
        assert_eq!(update.delta.len(), self.acc.len(), "delta length mismatch");
        self.weight_sum += update.weight;
        for (a, &d) in self.acc.iter_mut().zip(&update.delta) {
            *a += update.weight * d as f64;
        }
        self.folded += 1;
    }

    fn drain_held(&mut self) {
        while self.next < self.expected.len() {
            match self.held.remove(&self.expected[self.next]) {
                Some(update) => {
                    self.fold(update);
                    self.next += 1;
                }
                None => break,
            }
        }
    }

    /// Folds the canonically-smallest held resident, abandoning the
    /// not-yet-arrived expected keys before it.
    fn make_room(&mut self) {
        let (key, update) = self.held.pop_first().expect("make_room on empty held set");
        while self.expected[self.next] != key {
            self.abandoned += 1;
            self.next += 1;
        }
        self.fold(update);
        self.next += 1;
        self.drain_held();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate_deltas;

    fn entry(client: u32, origin: u64, arrival: u64, delta: Vec<f32>) -> BufferedUpdate {
        BufferedUpdate {
            client_id: client,
            origin_round: origin,
            arrival_round: arrival,
            base_weight: 1.0,
            mean_loss: 2.0,
            delta,
        }
    }

    #[test]
    fn factor_is_one_at_zero_staleness() {
        for decay in [0.0, 0.5, 1.0, 3.0] {
            assert_eq!(staleness_factor(0, decay), 1.0);
        }
        assert!(staleness_factor(3, 0.5) < 1.0);
        assert_eq!(staleness_factor(3, 0.0), 1.0);
    }

    #[test]
    fn weights_normalize_and_decay() {
        let w = staleness_weights(&[1.0, 1.0, 1.0], &[0, 1, 4], 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!(staleness_weights(&[], &[], 1.0).is_empty());
    }

    #[test]
    fn quorum_counts_only_arrived_updates() {
        let mut buf = UpdateBuffer::new();
        buf.push(entry(0, 3, 3, vec![1.0]));
        buf.push(entry(1, 3, 5, vec![2.0])); // straggler, lands at round 5
        assert_eq!(buf.pending(3), 1);
        assert_eq!(buf.deferred(3), 1);
        assert!(!buf.quorum_reached(3, 2));
        assert!(buf.quorum_reached(5, 2));
    }

    #[test]
    fn push_rejects_duplicate_client_round_pairs() {
        let mut buf = UpdateBuffer::new();
        assert!(buf.push(entry(0, 3, 3, vec![1.0])));
        assert!(
            !buf.push(entry(0, 3, 4, vec![1.0])),
            "a duplicated frame of the same client round must be dropped"
        );
        assert!(
            buf.push(entry(0, 4, 4, vec![1.0])),
            "the same client's next round is not a duplicate"
        );
        assert!(
            buf.push(entry(1, 3, 3, vec![1.0])),
            "another client's update for the same round is not a duplicate"
        );
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn commit_drains_in_deterministic_order_and_keeps_deferred() {
        let mut buf = UpdateBuffer::new();
        buf.push(entry(2, 4, 4, vec![2.0]));
        buf.push(entry(0, 3, 4, vec![0.0])); // stale: one round old
        buf.push(entry(1, 4, 4, vec![1.0]));
        buf.push(entry(3, 4, 9, vec![3.0])); // still in flight
        let batch = buf.commit(4, 0.5).unwrap();
        assert_eq!(batch.client_ids, vec![0, 1, 2]);
        assert_eq!(batch.origin_rounds, vec![3, 4, 4]);
        assert_eq!(batch.stale, 1);
        assert!(batch.updates[0].weight < batch.updates[1].weight);
        assert_eq!(buf.len(), 1, "deferred straggler survives the commit");
        assert!(buf.commit(4, 0.5).is_none(), "nothing pending after drain");
    }

    #[test]
    fn zero_staleness_full_quorum_matches_synchronous_mean_bitwise() {
        let deltas = [vec![1.0f32, -2.0, 0.5], vec![-0.25, 4.0, 1.5]];
        let weights = [1.0f64, 3.0];
        let sync: Vec<ClientUpdate> = deltas
            .iter()
            .zip(weights)
            .map(|(d, w)| ClientUpdate::new(d.clone(), w).unwrap())
            .collect();
        let mut buf = UpdateBuffer::new();
        for (i, (d, w)) in deltas.iter().zip(weights).enumerate() {
            buf.push(BufferedUpdate {
                client_id: i as u32,
                origin_round: 7,
                arrival_round: 7,
                base_weight: w,
                mean_loss: 1.0,
                delta: d.clone(),
            });
        }
        let batch = buf.commit(7, 0.9).unwrap();
        assert_eq!(batch.stale, 0);
        assert_eq!(
            aggregate_deltas(&batch.updates),
            aggregate_deltas(&sync),
            "buffered zero-staleness commit must be bitwise synchronous"
        );
    }

    #[test]
    fn streaming_merge_matches_canonical_fold_for_any_arrival_order() {
        let keys: Vec<(u64, u32)> = (0u32..6).map(|c| (4u64, c)).collect();
        let updates: Vec<ClientUpdate> = (0..6)
            .map(|i| {
                ClientUpdate::new(
                    vec![0.1 + i as f32 * 0.37, -1.5 * i as f32, i as f32 * 0.001],
                    1.0 + i as f64 * 0.25,
                )
                .unwrap()
            })
            .collect();
        let (want, want_w) = canonical_fold(&updates).unwrap();
        // Several arrival permutations, all with enough residency.
        for order in [
            vec![0usize, 1, 2, 3, 4, 5],
            vec![5, 4, 3, 2, 1, 0],
            vec![2, 0, 5, 1, 4, 3],
            vec![3, 5, 0, 4, 2, 1],
        ] {
            let mut m = StreamingMerge::new(keys.clone(), 16);
            for &i in &order {
                assert_ne!(m.push(keys[i], updates[i].clone()), StreamPush::Unexpected);
            }
            let (got, got_w) = m.finish().unwrap();
            assert_eq!(got, want, "order {order:?}");
            assert_eq!(got_w, want_w);
        }
    }

    #[test]
    fn streaming_merge_enforces_the_residency_bound() {
        let keys: Vec<(u64, u32)> = (0u32..8).map(|c| (0u64, c)).collect();
        let u = |v: f32| ClientUpdate::new(vec![v], 1.0).unwrap();
        // Worst case: reverse arrival order with a tight bound.
        let mut m = StreamingMerge::new(keys.clone(), 3);
        for c in (0u32..8).rev() {
            m.push((0, c), u(c as f32));
        }
        assert!(m.peak_resident() <= 3, "peak {}", m.peak_resident());
        assert!(m.folded() > 0, "eviction must fold, not drop");
        let late = m.late_drops();
        let folded = m.folded();
        let (got, w) = m.finish().unwrap();
        assert_eq!(got.len(), 1);
        // Every arrival was either folded or deterministically dropped as
        // late (its slot abandoned by an earlier eviction), and the folded
        // weight counts exactly the folded arrivals.
        assert_eq!(folded + late, 8);
        assert_eq!(w, folded as f64);
    }

    #[test]
    fn streaming_merge_late_and_duplicate_arrivals_are_counted() {
        let keys = vec![(0u64, 0u32), (0, 1), (0, 2)];
        let u = |v: f32| ClientUpdate::new(vec![v], 1.0).unwrap();
        let mut m = StreamingMerge::new(keys, 8);
        assert_eq!(m.push((0, 1), u(1.0)), StreamPush::Held);
        assert_eq!(m.push((0, 1), u(1.0)), StreamPush::Unexpected);
        assert_eq!(m.push((0, 0), u(0.0)), StreamPush::Folded);
        assert_eq!(m.folded(), 2, "held successor drained");
        assert_eq!(m.push((0, 0), u(9.0)), StreamPush::LateDropped);
        assert_eq!(m.push((9, 9), u(9.0)), StreamPush::Unexpected);
        assert_eq!(m.late_drops(), 1);
        let (_, w) = m.finish().unwrap();
        assert_eq!(w, 2.0);
    }

    #[test]
    fn commit_streaming_matches_batch_commit_bitwise() {
        let mk = |buf: &mut UpdateBuffer| {
            // Mixed origins and arrival order: entries 2, 0, 1 with one
            // stale update, committed at round 5.
            buf.push(entry(2, 5, 5, vec![2.0, -0.5]));
            buf.push(entry(0, 4, 5, vec![0.25, 1.0]));
            buf.push(entry(1, 5, 5, vec![-1.0, 3.0]));
            buf.push(entry(3, 5, 9, vec![9.0, 9.0])); // deferred
        };
        let mut batch_buf = UpdateBuffer::new();
        mk(&mut batch_buf);
        let mut stream_buf = batch_buf.clone();
        let batch = batch_buf.commit(5, 0.7).unwrap();
        let (want, want_w) = canonical_fold(&batch.updates).unwrap();
        let got = stream_buf.commit_streaming(5, 0.7, 8).unwrap();
        assert_eq!(got.merged, want);
        assert_eq!(got.weight, want_w);
        assert_eq!(got.stale, batch.stale);
        assert!(got.peak_resident <= 8);
        assert_eq!(stream_buf.len(), 1, "deferred entry survives");
        assert!(stream_buf.commit_streaming(5, 0.7, 8).is_none());
    }

    #[test]
    fn config_validation() {
        assert!(BufferConfig::default().validate().is_ok());
        assert!(BufferConfig {
            quorum: 0,
            staleness_decay: 0.5
        }
        .validate()
        .is_err());
        assert!(BufferConfig {
            quorum: 2,
            staleness_decay: -1.0
        }
        .validate()
        .is_err());
        assert!(BufferConfig {
            quorum: 2,
            staleness_decay: f64::NAN
        }
        .validate()
        .is_err());
    }
}
