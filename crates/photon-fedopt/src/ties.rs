//! TIES-merging aggregation (Yadav et al., NeurIPS 2023) — the
//! heterogeneity-robust aggregation the paper's §5.5 points to as a way to
//! "further enhance convergence" when client pseudo-gradients conflict.
//!
//! Three steps per coordinate group:
//! 1. **Trim**: zero each client's smallest-magnitude entries, keeping the
//!    top `density` fraction;
//! 2. **Elect sign**: the aggregate sign of each coordinate is the sign
//!    with the larger total magnitude across clients;
//! 3. **Disjoint merge**: average only the client entries whose sign
//!    agrees with the elected sign.

use crate::ClientUpdate;

/// Configuration for TIES aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiesConfig {
    /// Fraction of each client's largest-magnitude entries to keep
    /// (the paper's k; 0.2 is the TIES default).
    pub density: f64,
}

impl Default for TiesConfig {
    fn default() -> Self {
        TiesConfig { density: 0.2 }
    }
}

/// Aggregates pseudo-gradients with trim / elect-sign / disjoint-mean.
///
/// Returns a delta with the same layout as the inputs. Coordinates where
/// every client was trimmed aggregate to zero.
///
/// # Panics
/// Panics if `updates` is empty, deltas have differing lengths, or
/// `density` is outside `(0, 1]`.
pub fn ties_aggregate(updates: &[ClientUpdate], config: &TiesConfig) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    assert!(
        config.density > 0.0 && config.density <= 1.0,
        "density must be in (0, 1]"
    );
    let n = updates[0].delta.len();
    for u in updates {
        assert_eq!(u.delta.len(), n, "delta length mismatch");
    }

    // 1. Trim each client's update to its top-density entries.
    let trimmed: Vec<Vec<f32>> = updates
        .iter()
        .map(|u| trim_to_density(&u.delta, config.density))
        .collect();

    // 2. Elect the per-coordinate sign by total magnitude.
    // 3. Average the sign-consistent entries.
    let mut out = vec![0.0f32; n];
    for j in 0..n {
        let mut pos = 0.0f64;
        let mut neg = 0.0f64;
        for t in &trimmed {
            let v = t[j] as f64;
            if v > 0.0 {
                pos += v;
            } else {
                neg -= v;
            }
        }
        let sign_positive = pos >= neg;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for t in &trimmed {
            let v = t[j];
            if v == 0.0 {
                continue;
            }
            if (v > 0.0) == sign_positive {
                sum += v as f64;
                count += 1;
            }
        }
        if count > 0 {
            out[j] = (sum / count as f64) as f32;
        }
    }
    out
}

fn trim_to_density(delta: &[f32], density: f64) -> Vec<f32> {
    let keep = ((delta.len() as f64 * density).ceil() as usize).clamp(1, delta.len());
    if keep == delta.len() {
        return delta.to_vec();
    }
    // Find the magnitude threshold via a descending total_cmp sort: NaN
    // magnitudes order to the front instead of panicking, so TIES stays
    // panic-free on poisoned deltas (the guard rejects them upstream).
    let mut mags: Vec<f32> = delta.iter().map(|v| v.abs()).collect();
    mags.sort_unstable_by(|a, b| b.total_cmp(a));
    let threshold = mags[keep - 1];
    let mut kept = 0usize;
    delta
        .iter()
        .map(|&v| {
            // Keep strictly-above-threshold entries, then fill remaining
            // quota with at-threshold entries (stable for ties).
            if v.abs() > threshold || (v.abs() == threshold && kept < keep) {
                kept += 1;
                v
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate::new(delta, 1.0).unwrap()
    }

    #[test]
    fn nan_gradients_do_not_panic() {
        let t = trim_to_density(&[0.1, f32::NAN, 0.2, 3.0], 0.5);
        assert_eq!(t.len(), 4);
        let updates = vec![u(vec![f32::NAN, 1.0]), u(vec![2.0, 1.0])];
        let agg = ties_aggregate(&updates, &TiesConfig { density: 0.5 });
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn trim_keeps_top_magnitudes() {
        let t = trim_to_density(&[0.1, -5.0, 0.2, 3.0, -0.05], 0.4);
        assert_eq!(t, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn full_density_is_identity_trim() {
        let d = vec![1.0, -2.0, 0.5];
        assert_eq!(trim_to_density(&d, 1.0), d);
    }

    #[test]
    fn sign_conflicts_resolved_by_majority_mass() {
        // Coordinate 0: +10 and +8 vs -1 -> positive side wins, the -1 is
        // excluded from the mean.
        let updates = vec![u(vec![10.0, 1.0]), u(vec![8.0, 1.0]), u(vec![-1.0, 1.0])];
        let agg = ties_aggregate(&updates, &TiesConfig { density: 1.0 });
        assert_eq!(agg, vec![9.0, 1.0]);
    }

    #[test]
    fn agreeing_updates_average_normally() {
        let updates = vec![u(vec![2.0, -4.0]), u(vec![4.0, -2.0])];
        let agg = ties_aggregate(&updates, &TiesConfig { density: 1.0 });
        assert_eq!(agg, vec![3.0, -3.0]);
    }

    #[test]
    fn conflicting_small_entries_are_trimmed_away() {
        // With density 0.5, each client keeps only its dominant entry, so
        // the noisy conflicting second coordinates vanish entirely.
        let updates = vec![u(vec![10.0, 0.1]), u(vec![12.0, -0.1])];
        let agg = ties_aggregate(&updates, &TiesConfig { density: 0.5 });
        assert_eq!(agg, vec![11.0, 0.0]);
    }

    #[test]
    fn single_client_passthrough_at_full_density() {
        let updates = vec![u(vec![1.0, -2.0, 3.0])];
        let agg = ties_aggregate(&updates, &TiesConfig { density: 1.0 });
        assert_eq!(agg, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn invalid_density_panics() {
        ties_aggregate(&[u(vec![1.0])], &TiesConfig { density: 0.0 });
    }

    /// TIES reduces interference on anti-correlated updates relative to
    /// plain averaging (the §5.5 motivation): with two clients pulling a
    /// coordinate in opposite directions, plain FedAvg nearly cancels the
    /// dominant client's signal while TIES preserves it.
    #[test]
    fn preserves_dominant_signal_under_conflict() {
        let updates = vec![u(vec![1.0; 4]), u(vec![-0.9; 4])];
        let plain = crate::aggregate_deltas(&updates);
        let ties = ties_aggregate(&updates, &TiesConfig { density: 1.0 });
        assert!(plain[0].abs() < 0.06);
        assert_eq!(ties, vec![1.0; 4]);
    }
}
