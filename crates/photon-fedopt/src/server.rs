use serde::{Deserialize, Serialize};

/// Portable snapshot of a server optimizer's internal state, carried by
/// checkpoint format v2 so an aggregator restart does not silently lose
/// outer momenta (the DiLoCo Nesterov buffer, FedAdam's moments, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerOptState {
    /// Optimizer name this state belongs to (mismatches are rejected).
    pub kind: String,
    /// Step counter (FedAdam's `t`; zero for counterless optimizers).
    pub step: u64,
    /// Momentum/moment buffers, in an optimizer-defined order.
    pub slots: Vec<Vec<f32>>,
}

impl ServerOptState {
    /// State of an optimizer with no internal buffers (e.g. FedAvg).
    pub fn stateless(kind: &str) -> Self {
        ServerOptState {
            kind: kind.to_string(),
            step: 0,
            slots: Vec::new(),
        }
    }

    /// Checks this state matches `kind` and carries buffers of exactly
    /// `slot_lens` lengths.
    ///
    /// # Errors
    /// Returns a description of the mismatch.
    pub fn check(&self, kind: &str, slot_lens: &[usize]) -> Result<(), String> {
        if self.kind != kind {
            return Err(format!(
                "server-optimizer state is for {:?}, current optimizer is {kind:?}",
                self.kind
            ));
        }
        if self.slots.len() != slot_lens.len() {
            return Err(format!(
                "{kind} expects {} state buffer(s), checkpoint has {}",
                slot_lens.len(),
                self.slots.len()
            ));
        }
        for (i, (slot, &want)) in self.slots.iter().zip(slot_lens).enumerate() {
            if slot.len() != want {
                return Err(format!(
                    "{kind} state buffer {i} has {} values, expected {want}",
                    slot.len()
                ));
            }
        }
        Ok(())
    }
}

/// A server-side optimizer consuming the aggregated pseudo-gradient
/// (Algorithm 1, L.9: `θ^{t+1} ← ServerOpt(θ^t, −Δ^t, t)`).
///
/// Conventions: `avg_delta` is the aggregated `Δ = θ_global − θ_local`
/// average; descending the pseudo-gradient means subtracting it, so FedAvg
/// with server lr 1.0 recovers plain parameter averaging.
pub trait ServerOpt: Send {
    /// Applies one server update in place.
    ///
    /// # Panics
    /// Implementations panic on length mismatches.
    fn apply(&mut self, global: &mut [f32], avg_delta: &[f32], round: u64);

    /// Human-readable optimizer name for logs and reports.
    fn name(&self) -> &'static str;

    /// Resets internal momenta.
    fn reset_state(&mut self);

    /// Exports internal momenta for checkpointing (format v2).
    fn export_state(&self) -> ServerOptState;

    /// Restores momenta previously produced by
    /// [`export_state`](ServerOpt::export_state).
    ///
    /// # Errors
    /// Returns a description if the state belongs to a different optimizer
    /// or has mismatched buffer shapes; the optimizer is left unchanged.
    fn import_state(&mut self, state: &ServerOptState) -> Result<(), String>;
}

/// Declarative description of a server optimizer, used in experiment
/// configs (serializable; instantiate with [`ServerOptKind::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerOptKind {
    /// Plain federated averaging with a server learning rate.
    FedAvg {
        /// Server learning rate (1.0 = classic FedAvg).
        lr: f32,
    },
    /// Federated averaging with server momentum (FedMom, Huo et al.).
    FedMom {
        /// Server learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
    /// Adaptive server optimizer (FedAdam, Reddi et al.).
    FedAdam {
        /// Server learning rate.
        lr: f32,
    },
    /// DiLoCo's outer optimizer: SGD with Nesterov momentum.
    DiLoCo {
        /// Outer learning rate η_s.
        lr: f32,
        /// Nesterov momentum coefficient (0.9 in the paper).
        momentum: f32,
    },
}

impl ServerOptKind {
    /// Photon's default: FedAvg with server lr 1.0 (paper Appendix A).
    pub fn photon_default() -> Self {
        ServerOptKind::FedAvg { lr: 1.0 }
    }

    /// The DiLoCo baseline at the paper's chosen η_s = 0.1, m = 0.9.
    pub fn diloco_default() -> Self {
        ServerOptKind::DiLoCo {
            lr: 0.1,
            momentum: 0.9,
        }
    }

    /// Instantiates the optimizer for `param_len` parameters.
    pub fn build(&self, param_len: usize) -> Box<dyn ServerOpt> {
        match *self {
            ServerOptKind::FedAvg { lr } => Box::new(FedAvg::new(lr)),
            ServerOptKind::FedMom { lr, momentum } => {
                Box::new(FedMom::new(lr, momentum, param_len))
            }
            ServerOptKind::FedAdam { lr } => Box::new(FedAdam::new(lr, param_len)),
            ServerOptKind::DiLoCo { lr, momentum } => {
                Box::new(DiLoCo::new(lr, momentum, param_len))
            }
        }
    }
}

/// Plain FedAvg: `θ ← θ − η_s Δ`.
#[derive(Debug, Clone)]
pub struct FedAvg {
    lr: f32,
}

impl FedAvg {
    /// Creates FedAvg with server learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        FedAvg { lr }
    }
}

impl ServerOpt for FedAvg {
    fn apply(&mut self, global: &mut [f32], avg_delta: &[f32], _round: u64) {
        assert_eq!(global.len(), avg_delta.len(), "length mismatch");
        photon_tensor::ops::axpy(-self.lr, avg_delta, global);
    }

    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn reset_state(&mut self) {}

    fn export_state(&self) -> ServerOptState {
        ServerOptState::stateless(self.name())
    }

    fn import_state(&mut self, state: &ServerOptState) -> Result<(), String> {
        state.check(self.name(), &[])
    }
}

/// FedMom / FedAvgM: heavy-ball momentum on the pseudo-gradient.
#[derive(Debug, Clone)]
pub struct FedMom {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl FedMom {
    /// Creates FedMom.
    pub fn new(lr: f32, momentum: f32, param_len: usize) -> Self {
        FedMom {
            lr,
            momentum,
            velocity: vec![0.0; param_len],
        }
    }
}

impl ServerOpt for FedMom {
    fn apply(&mut self, global: &mut [f32], avg_delta: &[f32], _round: u64) {
        assert_eq!(global.len(), self.velocity.len(), "length mismatch");
        assert_eq!(avg_delta.len(), self.velocity.len(), "length mismatch");
        for i in 0..global.len() {
            self.velocity[i] = self.momentum * self.velocity[i] + avg_delta[i];
            global[i] -= self.lr * self.velocity[i];
        }
    }

    fn name(&self) -> &'static str {
        "fedmom"
    }

    fn reset_state(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }

    fn export_state(&self) -> ServerOptState {
        ServerOptState {
            kind: self.name().to_string(),
            step: 0,
            slots: vec![self.velocity.clone()],
        }
    }

    fn import_state(&mut self, state: &ServerOptState) -> Result<(), String> {
        state.check(self.name(), &[self.velocity.len()])?;
        self.velocity.copy_from_slice(&state.slots[0]);
        Ok(())
    }
}

/// FedAdam: Adam on the pseudo-gradient with β1 = 0.9, β2 = 0.99
/// (Reddi et al. defaults), τ = 1e-3 adaptivity floor.
#[derive(Debug, Clone)]
pub struct FedAdam {
    lr: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl FedAdam {
    const BETA1: f32 = 0.9;
    const BETA2: f32 = 0.99;
    const TAU: f32 = 1e-3;

    /// Creates FedAdam.
    pub fn new(lr: f32, param_len: usize) -> Self {
        FedAdam {
            lr,
            m: vec![0.0; param_len],
            v: vec![0.0; param_len],
            t: 0,
        }
    }
}

impl ServerOpt for FedAdam {
    fn apply(&mut self, global: &mut [f32], avg_delta: &[f32], _round: u64) {
        assert_eq!(global.len(), self.m.len(), "length mismatch");
        assert_eq!(avg_delta.len(), self.m.len(), "length mismatch");
        self.t += 1;
        for i in 0..global.len() {
            let g = avg_delta[i];
            self.m[i] = Self::BETA1 * self.m[i] + (1.0 - Self::BETA1) * g;
            self.v[i] = Self::BETA2 * self.v[i] + (1.0 - Self::BETA2) * g * g;
            global[i] -= self.lr * self.m[i] / (self.v[i].sqrt() + Self::TAU);
        }
    }

    fn name(&self) -> &'static str {
        "fedadam"
    }

    fn reset_state(&mut self) {
        self.m.iter_mut().for_each(|v| *v = 0.0);
        self.v.iter_mut().for_each(|v| *v = 0.0);
        self.t = 0;
    }

    fn export_state(&self) -> ServerOptState {
        ServerOptState {
            kind: self.name().to_string(),
            step: self.t,
            slots: vec![self.m.clone(), self.v.clone()],
        }
    }

    fn import_state(&mut self, state: &ServerOptState) -> Result<(), String> {
        state.check(self.name(), &[self.m.len(), self.v.len()])?;
        self.m.copy_from_slice(&state.slots[0]);
        self.v.copy_from_slice(&state.slots[1]);
        self.t = state.step;
        Ok(())
    }
}

/// DiLoCo's outer optimizer: SGD with Nesterov momentum over the
/// pseudo-gradient (Douillard et al.; paper §5.3 and Fig. 8).
#[derive(Debug, Clone)]
pub struct DiLoCo {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl DiLoCo {
    /// Creates the DiLoCo outer optimizer.
    pub fn new(lr: f32, momentum: f32, param_len: usize) -> Self {
        DiLoCo {
            lr,
            momentum,
            velocity: vec![0.0; param_len],
        }
    }

    /// Outer learning rate η_s.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

impl ServerOpt for DiLoCo {
    fn apply(&mut self, global: &mut [f32], avg_delta: &[f32], _round: u64) {
        assert_eq!(global.len(), self.velocity.len(), "length mismatch");
        assert_eq!(avg_delta.len(), self.velocity.len(), "length mismatch");
        for i in 0..global.len() {
            let g = avg_delta[i];
            self.velocity[i] = self.momentum * self.velocity[i] + g;
            // Nesterov look-ahead.
            global[i] -= self.lr * (g + self.momentum * self.velocity[i]);
        }
    }

    fn name(&self) -> &'static str {
        "diloco"
    }

    fn reset_state(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }

    fn export_state(&self) -> ServerOptState {
        ServerOptState {
            kind: self.name().to_string(),
            step: 0,
            slots: vec![self.velocity.clone()],
        }
    }

    fn import_state(&mut self, state: &ServerOptState) -> Result<(), String> {
        state.check(self.name(), &[self.velocity.len()])?;
        self.velocity.copy_from_slice(&state.slots[0]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_lr1_is_plain_averaging() {
        // global = 1.0; clients moved to 0.4 and 0.8 -> deltas 0.6 and 0.2,
        // avg delta 0.4 -> new global 0.6 = mean of client params.
        let mut global = vec![1.0f32];
        let avg_delta = vec![0.4f32];
        FedAvg::new(1.0).apply(&mut global, &avg_delta, 0);
        assert!((global[0] - 0.6).abs() < 1e-7);
    }

    #[test]
    fn fedavg_smaller_lr_damps_update() {
        let mut g1 = vec![1.0f32];
        let mut g2 = vec![1.0f32];
        FedAvg::new(1.0).apply(&mut g1, &[0.4], 0);
        FedAvg::new(0.1).apply(&mut g2, &[0.4], 0);
        assert!((1.0 - g2[0]) < (1.0 - g1[0]));
    }

    #[test]
    fn fedmom_accumulates_velocity() {
        let mut opt = FedMom::new(1.0, 0.9, 1);
        let mut g = vec![0.0f32];
        opt.apply(&mut g, &[1.0], 0);
        let first_step = -g[0];
        let before = g[0];
        opt.apply(&mut g, &[1.0], 1);
        let second_step = before - g[0];
        assert!(second_step > first_step, "momentum should grow steps");
        opt.reset_state();
        let mut h = vec![0.0f32];
        opt.apply(&mut h, &[1.0], 0);
        assert!((h[0] + first_step).abs() < 1e-6);
    }

    #[test]
    fn fedadam_adapts_to_scale() {
        // FedAdam normalizes by sqrt(v): large and small deltas produce
        // comparable step magnitudes.
        let mut big = FedAdam::new(0.1, 1);
        let mut small = FedAdam::new(0.1, 1);
        let mut g1 = vec![0.0f32];
        let mut g2 = vec![0.0f32];
        for r in 0..20 {
            big.apply(&mut g1, &[100.0], r);
            small.apply(&mut g2, &[0.01], r);
        }
        let ratio = g1[0] / g2[0];
        assert!(ratio < 20.0, "adaptivity failed: ratio={ratio}");
    }

    #[test]
    fn diloco_eta01_takes_smaller_steps_than_fedavg() {
        // This is the mechanism behind the paper's Table 3: DiLoCo's tuned
        // η_s = 0.1 discounts each round's progress relative to FedAvg.
        let mut fedavg_g = vec![1.0f32];
        let mut diloco_g = vec![1.0f32];
        let mut fedavg = FedAvg::new(1.0);
        let mut diloco = DiLoCo::new(0.1, 0.9, 1);
        fedavg.apply(&mut fedavg_g, &[0.5], 0);
        diloco.apply(&mut diloco_g, &[0.5], 0);
        assert!((1.0 - diloco_g[0]) < (1.0 - fedavg_g[0]));
    }

    #[test]
    fn kind_builds_matching_names() {
        let kinds = [
            (ServerOptKind::photon_default(), "fedavg"),
            (
                ServerOptKind::FedMom {
                    lr: 1.0,
                    momentum: 0.9,
                },
                "fedmom",
            ),
            (ServerOptKind::FedAdam { lr: 0.01 }, "fedadam"),
            (ServerOptKind::diloco_default(), "diloco"),
        ];
        for (kind, name) in kinds {
            assert_eq!(kind.build(4).name(), name);
        }
    }

    #[test]
    fn state_export_import_roundtrip() {
        // Warm up each stateful optimizer, export, import into a fresh
        // instance, and check the next step matches bit-for-bit.
        let kinds = [
            ServerOptKind::photon_default(),
            ServerOptKind::FedMom {
                lr: 1.0,
                momentum: 0.9,
            },
            ServerOptKind::FedAdam { lr: 0.01 },
            ServerOptKind::diloco_default(),
        ];
        for kind in kinds {
            let mut warm = kind.build(3);
            let mut g = vec![1.0f32, 2.0, 3.0];
            for r in 0..4 {
                warm.apply(&mut g, &[0.1, -0.2, 0.3], r);
            }
            let state = warm.export_state();
            let mut restored = kind.build(3);
            restored.import_state(&state).unwrap();
            let mut g_warm = g.clone();
            let mut g_restored = g.clone();
            warm.apply(&mut g_warm, &[0.05, 0.05, 0.05], 4);
            restored.apply(&mut g_restored, &[0.05, 0.05, 0.05], 4);
            assert_eq!(g_warm, g_restored, "{} state roundtrip", warm.name());
        }
    }

    #[test]
    fn state_mismatches_rejected() {
        let diloco = ServerOptKind::diloco_default().build(4);
        let state = diloco.export_state();
        // Wrong optimizer kind.
        let mut fedavg = ServerOptKind::photon_default().build(4);
        assert!(fedavg.import_state(&state).is_err());
        // Wrong buffer length.
        let mut small = ServerOptKind::diloco_default().build(3);
        assert!(small.import_state(&state).is_err());
        // Wrong slot count.
        let mut adam = ServerOptKind::FedAdam { lr: 0.01 }.build(4);
        assert!(adam.import_state(&state).is_err());
    }

    #[test]
    fn state_serde_roundtrip() {
        let mut opt = ServerOptKind::FedAdam { lr: 0.01 }.build(2);
        let mut g = vec![0.5f32, -0.5];
        opt.apply(&mut g, &[0.1, 0.2], 0);
        let state = opt.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: ServerOptState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn serde_roundtrip() {
        let kind = ServerOptKind::DiLoCo {
            lr: 0.3,
            momentum: 0.9,
        };
        let json = serde_json::to_string(&kind).unwrap();
        let back: ServerOptKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
    }
}
