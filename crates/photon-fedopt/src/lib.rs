//! # photon-fedopt
//!
//! Federated optimization for Photon-RS: pseudo-gradient aggregation and
//! the server-side optimizer family used in the paper —
//!
//! * **FedAvg** (server lr 1.0, no momentum): Photon's default (Appendix A);
//! * **FedMom / FedAvgM**: server momentum on the pseudo-gradient;
//! * **FedAdam**: adaptive server optimizer (Reddi et al.), an extension
//!   hook the paper's §6 suggests;
//! * **DiLoCo**: the baseline — SGD with Nesterov momentum as the outer
//!   optimizer (η_s tuned per Fig. 8, momentum 0.9).
//!
//! It also provides the client samplers of Algorithm 1 (full participation
//! and uniform `K`-of-`P` sampling).
//!
//! ```
//! use photon_fedopt::{aggregate_deltas, ClientUpdate};
//! let updates = vec![
//!     ClientUpdate::new(vec![1.0, 0.0], 1.0).unwrap(),
//!     ClientUpdate::new(vec![0.0, 1.0], 1.0).unwrap(),
//! ];
//! let avg = aggregate_deltas(&updates);
//! assert_eq!(avg, vec![0.5, 0.5]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod aggregate;
mod availability;
mod buffer;
mod guard;
mod robust;
mod sampler;
mod server;
mod ties;

pub use aggregate::{aggregate_deltas, delta_from, AggregationKind, ClientUpdate};
pub use availability::{AvailabilityModel, AvailabilitySampler, AvailabilityTraces};
pub use buffer::{
    canonical_fold, staleness_factor, staleness_weights, BufferConfig, BufferedUpdate, CommitBatch,
    StreamPush, StreamingCommit, StreamingMerge, UpdateBuffer,
};
pub use guard::{GuardConfig, GuardDecision, GuardReport, UpdateGuard};
pub use robust::{median_aggregate, norm_clipped_aggregate, trimmed_mean_aggregate};
pub use sampler::{sample_live, ClientSampler, FullParticipation, UniformSampler};
pub use server::{DiLoCo, FedAdam, FedAvg, FedMom, ServerOpt, ServerOptKind, ServerOptState};
pub use ties::{ties_aggregate, TiesConfig};
