//! Client availability modelling: the paper's cross-silo setting assumes
//! accelerators "can be sporadically available throughout a full training
//! cycle" (§2.1), and the billion-scale runs assume "intermittent client
//! availability" (Appendix A). This module provides a two-state Markov
//! availability trace per client and a sampler that only selects clients
//! that are currently up.
//!
//! Traces are generated **lazily**: each client's Markov chain is walked on
//! demand and the materialized prefix cached, so a 10-round demo run never
//! pays for a 100k-round horizon. The chain for a given client and seed is
//! identical however far (or in how many steps) it is materialized.

use crate::ClientSampler;
use parking_lot::RwLock;
use photon_tensor::SeedStream;
use serde::{Deserialize, Serialize};

/// A two-state (up/down) Markov availability model, identical and
/// independent across clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    /// Probability an *up* client goes down at the next round.
    pub p_down: f64,
    /// Probability a *down* client comes back up at the next round.
    pub p_up: f64,
}

impl AvailabilityModel {
    /// A model where clients are always available.
    pub fn always_on() -> Self {
        AvailabilityModel {
            p_down: 0.0,
            p_up: 1.0,
        }
    }

    /// Steady-state fraction of time a client is available.
    pub fn steady_state_up(&self) -> f64 {
        if self.p_down + self.p_up == 0.0 {
            return 1.0;
        }
        self.p_up / (self.p_down + self.p_up)
    }

    /// Validates probabilities.
    ///
    /// # Panics
    /// Panics if either probability is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.p_down) && (0.0..=1.0).contains(&self.p_up),
            "availability probabilities must be in [0, 1]"
        );
    }
}

/// One client's Markov chain: the stream driving it, the state after the
/// last materialized round, and the cached prefix.
#[derive(Debug, Clone)]
struct Chain {
    rng: SeedStream,
    state: bool,
    trace: Vec<bool>,
}

impl Chain {
    fn extend_to(&mut self, model: &AvailabilityModel, round: usize) {
        while self.trace.len() <= round {
            let u = self.rng.next_f64();
            self.state = if self.state {
                u >= model.p_down
            } else {
                u < model.p_up
            };
            self.trace.push(self.state);
        }
    }
}

/// Lazily materialized availability traces for a population. Every client
/// starts up; each chain is extended on demand and cached, so queries at
/// any round are cheap and seed-stable regardless of query order.
#[derive(Debug)]
pub struct AvailabilityTraces {
    model: AvailabilityModel,
    chains: RwLock<Vec<Chain>>,
}

impl Clone for AvailabilityTraces {
    fn clone(&self) -> Self {
        AvailabilityTraces {
            model: self.model,
            chains: RwLock::new(self.chains.read().clone()),
        }
    }
}

impl AvailabilityTraces {
    /// Creates lazy traces for `population` clients; no rounds are sampled
    /// until queried.
    pub fn lazy(model: AvailabilityModel, population: usize, rng: &mut SeedStream) -> Self {
        model.validate();
        let chains = (0..population)
            .map(|c| Chain {
                rng: rng.split(&format!("avail-{c}")),
                state: true,
                trace: Vec::new(),
            })
            .collect();
        AvailabilityTraces {
            model,
            chains: RwLock::new(chains),
        }
    }

    /// Creates traces with the first `rounds` rounds materialized up front
    /// (the chains still extend on demand past that horizon). Equivalent to
    /// [`AvailabilityTraces::lazy`] for every query — this constructor only
    /// changes *when* the sampling work happens.
    pub fn sample(
        model: AvailabilityModel,
        population: usize,
        rounds: usize,
        rng: &mut SeedStream,
    ) -> Self {
        let traces = AvailabilityTraces::lazy(model, population, rng);
        if rounds > 0 {
            let mut chains = traces.chains.write();
            for chain in chains.iter_mut() {
                chain.extend_to(&model, rounds - 1);
            }
        }
        traces
    }

    /// Number of clients covered by these traces.
    pub fn population(&self) -> usize {
        self.chains.read().len()
    }

    /// Whether `client` is up at `round`, extending the chain on demand.
    pub fn is_up(&self, client: usize, round: u64) -> bool {
        let idx = round as usize;
        {
            let chains = self.chains.read();
            let trace = &chains[client].trace;
            if idx < trace.len() {
                return trace[idx];
            }
        }
        let mut chains = self.chains.write();
        let chain = &mut chains[client];
        chain.extend_to(&self.model, idx);
        chain.trace[idx]
    }

    /// Clients up at `round`.
    ///
    /// Fast path: when every chain already covers `round`, the answer is
    /// collected under a single read lock. Otherwise all chains are
    /// extended and queried under **one** write lock, instead of the up to
    /// N per-client write-lock round-trips `is_up` in a loop would take.
    pub fn available_at(&self, round: u64) -> Vec<usize> {
        let idx = round as usize;
        {
            let chains = self.chains.read();
            if chains.iter().all(|c| idx < c.trace.len()) {
                return chains
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.trace[idx])
                    .map(|(i, _)| i)
                    .collect();
            }
        }
        let mut chains = self.chains.write();
        let mut up = Vec::new();
        for (i, chain) in chains.iter_mut().enumerate() {
            chain.extend_to(&self.model, idx);
            if chain.trace[idx] {
                up.push(i);
            }
        }
        up
    }
}

/// A sampler that draws uniformly from the *currently available* clients,
/// falling back to the full population when everyone is down (the
/// aggregator would otherwise stall forever).
#[derive(Debug, Clone)]
pub struct AvailabilitySampler {
    traces: AvailabilityTraces,
    k: usize,
    rng: SeedStream,
}

impl AvailabilitySampler {
    /// Samples up to `k` clients per round from the available subset.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(traces: AvailabilityTraces, k: usize, rng: SeedStream) -> Self {
        assert!(k > 0, "cohort size must be positive");
        AvailabilitySampler { traces, k, rng }
    }
}

impl ClientSampler for AvailabilitySampler {
    fn sample(&mut self, population: usize, round: u64) -> Vec<usize> {
        let mut candidates: Vec<usize> = self
            .traces
            .available_at(round)
            .into_iter()
            .filter(|&c| c < population)
            .collect();
        if candidates.is_empty() {
            candidates = (0..population).collect();
        }
        let k = self.k.min(candidates.len());
        // Round-keyed draw: restored runs sample the same cohorts.
        let picked = self
            .rng
            .fork(&format!("round-{round}"))
            .sample_indices(candidates.len(), k);
        let mut cohort: Vec<usize> = picked.into_iter().map(|i| candidates[i]).collect();
        cohort.sort_unstable();
        cohort
    }

    fn cohort_size(&self, population: usize) -> usize {
        self.k.min(population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_math() {
        let m = AvailabilityModel {
            p_down: 0.1,
            p_up: 0.3,
        };
        assert!((m.steady_state_up() - 0.75).abs() < 1e-12);
        assert_eq!(AvailabilityModel::always_on().steady_state_up(), 1.0);
    }

    #[test]
    fn traces_match_steady_state_statistically() {
        let m = AvailabilityModel {
            p_down: 0.2,
            p_up: 0.6,
        };
        let mut rng = SeedStream::new(1);
        let traces = AvailabilityTraces::sample(m, 20, 500, &mut rng);
        let mut up = 0usize;
        let total = 20 * 500;
        for c in 0..20 {
            for r in 0..500 {
                if traces.is_up(c, r) {
                    up += 1;
                }
            }
        }
        let frac = up as f64 / total as f64;
        assert!(
            (frac - m.steady_state_up()).abs() < 0.05,
            "observed {frac}, expected {}",
            m.steady_state_up()
        );
    }

    #[test]
    fn lazy_matches_eager_and_query_order_is_irrelevant() {
        let m = AvailabilityModel {
            p_down: 0.3,
            p_up: 0.4,
        };
        let eager = AvailabilityTraces::sample(m, 6, 64, &mut SeedStream::new(11));
        let lazy = AvailabilityTraces::lazy(m, 6, &mut SeedStream::new(11));
        // Query the lazy traces backwards and scattered; every answer must
        // match the eagerly materialized chain.
        for &r in &[63u64, 0, 40, 7, 40, 12] {
            for c in 0..6 {
                assert_eq!(lazy.is_up(c, r), eager.is_up(c, r), "client {c} round {r}");
            }
        }
        // And past the eager horizon both keep extending identically.
        for c in 0..6 {
            assert_eq!(lazy.is_up(c, 200), eager.is_up(c, 200));
        }
    }

    #[test]
    fn always_on_traces_never_drop() {
        let mut rng = SeedStream::new(2);
        let traces = AvailabilityTraces::sample(AvailabilityModel::always_on(), 5, 50, &mut rng);
        assert_eq!(traces.available_at(25).len(), 5);
        // Lazy extension keeps everyone up too.
        assert_eq!(traces.available_at(5_000).len(), 5);
    }

    #[test]
    fn sampler_only_picks_available_clients() {
        let m = AvailabilityModel {
            p_down: 0.5,
            p_up: 0.5,
        };
        let mut rng = SeedStream::new(3);
        let traces = AvailabilityTraces::sample(m, 10, 40, &mut rng);
        let mut sampler = AvailabilitySampler::new(traces.clone(), 4, SeedStream::new(4));
        for round in 0..40 {
            let cohort = sampler.sample(10, round);
            assert!(!cohort.is_empty());
            assert!(cohort.windows(2).all(|w| w[0] < w[1]));
            let avail = traces.available_at(round);
            if !avail.is_empty() {
                for c in &cohort {
                    assert!(avail.contains(c), "round {round}: {c} was down");
                }
            }
        }
    }

    #[test]
    fn sampler_is_round_keyed() {
        let m = AvailabilityModel {
            p_down: 0.2,
            p_up: 0.7,
        };
        let traces = AvailabilityTraces::lazy(m, 8, &mut SeedStream::new(21));
        let mut walked = AvailabilitySampler::new(traces.clone(), 3, SeedStream::new(22));
        for round in 0..6 {
            walked.sample(8, round);
        }
        let mut jumped = AvailabilitySampler::new(traces, 3, SeedStream::new(22));
        assert_eq!(walked.sample(8, 6), jumped.sample(8, 6));
    }

    #[test]
    fn all_down_falls_back_to_population() {
        let m = AvailabilityModel {
            p_down: 1.0,
            p_up: 0.0,
        };
        let mut rng = SeedStream::new(5);
        let traces = AvailabilityTraces::sample(m, 4, 10, &mut rng);
        assert!(traces.available_at(5).is_empty());
        let mut sampler = AvailabilitySampler::new(traces, 2, SeedStream::new(6));
        let cohort = sampler.sample(4, 5);
        assert_eq!(cohort.len(), 2);
    }

    #[test]
    fn available_at_agrees_with_per_client_queries() {
        let m = AvailabilityModel {
            p_down: 0.4,
            p_up: 0.4,
        };
        // Query a fresh lazy trace (write-lock batch-extension path) and a
        // pre-materialized one (read-lock fast path); both must agree with
        // per-client is_up answers.
        let lazy = AvailabilityTraces::lazy(m, 7, &mut SeedStream::new(31));
        let eager = AvailabilityTraces::sample(m, 7, 30, &mut SeedStream::new(31));
        for round in [17u64, 3, 29, 3] {
            let batch = lazy.available_at(round);
            let single: Vec<usize> = (0..7).filter(|&c| eager.is_up(c, round)).collect();
            assert_eq!(batch, single, "round {round}");
            assert_eq!(
                eager.available_at(round),
                single,
                "fast path, round {round}"
            );
        }
    }

    #[test]
    fn all_down_fallback_draws_from_full_population() {
        let m = AvailabilityModel {
            p_down: 1.0,
            p_up: 0.0,
        };
        let mut rng = SeedStream::new(51);
        let traces = AvailabilityTraces::sample(m, 6, 12, &mut rng);
        let mut sampler = AvailabilitySampler::new(traces, 3, SeedStream::new(52));
        for round in 1..12 {
            let cohort = sampler.sample(6, round);
            // Everyone is down from round 1 on, yet the sampler still
            // returns a full-size cohort drawn from the whole population.
            assert_eq!(cohort.len(), 3, "round {round}");
            assert!(cohort.iter().all(|&c| c < 6));
            assert!(cohort.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sampler_replays_identical_cohorts_after_restore() {
        let m = AvailabilityModel {
            p_down: 0.3,
            p_up: 0.5,
        };
        let traces = AvailabilityTraces::lazy(m, 9, &mut SeedStream::new(61));
        let mut original = AvailabilitySampler::new(traces.clone(), 4, SeedStream::new(62));
        let cohorts: Vec<_> = (0..10).map(|r| original.sample(9, r)).collect();
        // A "restored" sampler rebuilt from the same seeds jumps straight
        // to round 6 and must see exactly the cohorts the uninterrupted
        // run saw — the round-keyed fork makes the draw history-free.
        let fresh = AvailabilityTraces::lazy(m, 9, &mut SeedStream::new(61));
        let mut restored = AvailabilitySampler::new(fresh, 4, SeedStream::new(62));
        for r in 6..10 {
            assert_eq!(restored.sample(9, r), cohorts[r as usize], "round {r}");
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probabilities_panic() {
        AvailabilityModel {
            p_down: 1.5,
            p_up: 0.0,
        }
        .validate();
    }
}
