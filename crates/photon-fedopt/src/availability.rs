//! Client availability modelling: the paper's cross-silo setting assumes
//! accelerators "can be sporadically available throughout a full training
//! cycle" (§2.1), and the billion-scale runs assume "intermittent client
//! availability" (Appendix A). This module provides a two-state Markov
//! availability trace per client and a sampler that only selects clients
//! that are currently up.

use crate::ClientSampler;
use photon_tensor::SeedStream;
use serde::{Deserialize, Serialize};

/// A two-state (up/down) Markov availability model, identical and
/// independent across clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    /// Probability an *up* client goes down at the next round.
    pub p_down: f64,
    /// Probability a *down* client comes back up at the next round.
    pub p_up: f64,
}

impl AvailabilityModel {
    /// A model where clients are always available.
    pub fn always_on() -> Self {
        AvailabilityModel {
            p_down: 0.0,
            p_up: 1.0,
        }
    }

    /// Steady-state fraction of time a client is available.
    pub fn steady_state_up(&self) -> f64 {
        if self.p_down + self.p_up == 0.0 {
            return 1.0;
        }
        self.p_up / (self.p_down + self.p_up)
    }

    /// Validates probabilities.
    ///
    /// # Panics
    /// Panics if either probability is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.p_down) && (0.0..=1.0).contains(&self.p_up),
            "availability probabilities must be in [0, 1]"
        );
    }
}

/// Pre-sampled availability traces for a population.
#[derive(Debug, Clone)]
pub struct AvailabilityTraces {
    /// `up[client][round]`.
    up: Vec<Vec<bool>>,
}

impl AvailabilityTraces {
    /// Samples `rounds` rounds of availability for `population` clients.
    /// Every client starts up.
    pub fn sample(
        model: AvailabilityModel,
        population: usize,
        rounds: usize,
        rng: &mut SeedStream,
    ) -> Self {
        model.validate();
        let up = (0..population)
            .map(|c| {
                let mut crng = rng.split(&format!("avail-{c}"));
                let mut state = true;
                (0..rounds)
                    .map(|_| {
                        let u = crng.next_f64();
                        state = if state {
                            u >= model.p_down
                        } else {
                            u < model.p_up
                        };
                        state
                    })
                    .collect()
            })
            .collect();
        AvailabilityTraces { up }
    }

    /// Whether `client` is up at `round` (clients past the sampled horizon
    /// stay in their final state).
    pub fn is_up(&self, client: usize, round: u64) -> bool {
        let trace = &self.up[client];
        let idx = (round as usize).min(trace.len().saturating_sub(1));
        trace.get(idx).copied().unwrap_or(true)
    }

    /// Clients up at `round`.
    pub fn available_at(&self, round: u64) -> Vec<usize> {
        (0..self.up.len())
            .filter(|&c| self.is_up(c, round))
            .collect()
    }
}

/// A sampler that draws uniformly from the *currently available* clients,
/// falling back to the full population when everyone is down (the
/// aggregator would otherwise stall forever).
#[derive(Debug, Clone)]
pub struct AvailabilitySampler {
    traces: AvailabilityTraces,
    k: usize,
    rng: SeedStream,
}

impl AvailabilitySampler {
    /// Samples up to `k` clients per round from the available subset.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(traces: AvailabilityTraces, k: usize, rng: SeedStream) -> Self {
        assert!(k > 0, "cohort size must be positive");
        AvailabilitySampler { traces, k, rng }
    }
}

impl ClientSampler for AvailabilitySampler {
    fn sample(&mut self, population: usize, round: u64) -> Vec<usize> {
        let mut candidates: Vec<usize> = self
            .traces
            .available_at(round)
            .into_iter()
            .filter(|&c| c < population)
            .collect();
        if candidates.is_empty() {
            candidates = (0..population).collect();
        }
        let k = self.k.min(candidates.len());
        let picked = self.rng.sample_indices(candidates.len(), k);
        let mut cohort: Vec<usize> = picked.into_iter().map(|i| candidates[i]).collect();
        cohort.sort_unstable();
        cohort
    }

    fn cohort_size(&self, population: usize) -> usize {
        self.k.min(population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_math() {
        let m = AvailabilityModel {
            p_down: 0.1,
            p_up: 0.3,
        };
        assert!((m.steady_state_up() - 0.75).abs() < 1e-12);
        assert_eq!(AvailabilityModel::always_on().steady_state_up(), 1.0);
    }

    #[test]
    fn traces_match_steady_state_statistically() {
        let m = AvailabilityModel {
            p_down: 0.2,
            p_up: 0.6,
        };
        let mut rng = SeedStream::new(1);
        let traces = AvailabilityTraces::sample(m, 20, 500, &mut rng);
        let mut up = 0usize;
        let total = 20 * 500;
        for c in 0..20 {
            for r in 0..500 {
                if traces.is_up(c, r) {
                    up += 1;
                }
            }
        }
        let frac = up as f64 / total as f64;
        assert!(
            (frac - m.steady_state_up()).abs() < 0.05,
            "observed {frac}, expected {}",
            m.steady_state_up()
        );
    }

    #[test]
    fn always_on_traces_never_drop() {
        let mut rng = SeedStream::new(2);
        let traces = AvailabilityTraces::sample(AvailabilityModel::always_on(), 5, 50, &mut rng);
        assert_eq!(traces.available_at(25).len(), 5);
    }

    #[test]
    fn sampler_only_picks_available_clients() {
        let m = AvailabilityModel {
            p_down: 0.5,
            p_up: 0.5,
        };
        let mut rng = SeedStream::new(3);
        let traces = AvailabilityTraces::sample(m, 10, 40, &mut rng);
        let mut sampler = AvailabilitySampler::new(traces.clone(), 4, SeedStream::new(4));
        for round in 0..40 {
            let cohort = sampler.sample(10, round);
            assert!(!cohort.is_empty());
            assert!(cohort.windows(2).all(|w| w[0] < w[1]));
            let avail = traces.available_at(round);
            if !avail.is_empty() {
                for c in &cohort {
                    assert!(avail.contains(c), "round {round}: {c} was down");
                }
            }
        }
    }

    #[test]
    fn all_down_falls_back_to_population() {
        let m = AvailabilityModel {
            p_down: 1.0,
            p_up: 0.0,
        };
        let mut rng = SeedStream::new(5);
        let traces = AvailabilityTraces::sample(m, 4, 10, &mut rng);
        assert!(traces.available_at(5).is_empty());
        let mut sampler = AvailabilitySampler::new(traces, 2, SeedStream::new(6));
        let cohort = sampler.sample(4, 5);
        assert_eq!(cohort.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probabilities_panic() {
        AvailabilityModel {
            p_down: 1.5,
            p_up: 0.0,
        }
        .validate();
    }
}
