//! Byzantine-robust aggregation rules: coordinate-wise trimmed mean,
//! coordinate-wise median, and median-norm clipping.
//!
//! Photon (§3.3–§4) assumes honest-but-unreliable clients; in the
//! open-internet setting of "The Future of LLM Pre-training is Federated"
//! a minority of cohort updates may be adversarial (NaN-poisoned,
//! sign-flipped, wildly rescaled). These rules bound the influence any
//! single update has on the aggregate:
//!
//! * **Trimmed mean** drops the `trim_ratio` fraction of extreme values on
//!   each side of every coordinate, so up to `floor(trim_ratio * n)`
//!   adversaries per side cannot move the output outside the inlier range.
//! * **Median** is the `trim_ratio → 0.5` limit: robust to any minority
//!   (`floor((n - 1) / 2)`) of adversaries.
//! * **Norm clipping** rescales every update whose L2 norm exceeds a
//!   multiple of the cohort's median norm before the weighted mean —
//!   cheap, and preserves the mean's variance reduction for honest
//!   cohorts.
//!
//! All three are permutation-invariant (order statistics ignore input
//! order) and bit-deterministic (`f32::total_cmp` sorts, fixed-order f64
//! accumulation). NaN coordinates sort to the extremes under `total_cmp`,
//! so trimming also sheds a minority of non-finite entries.

use crate::ClientUpdate;

fn check_shapes(updates: &[ClientUpdate]) -> usize {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let n = updates[0].delta.len();
    for u in updates {
        assert_eq!(u.delta.len(), n, "delta length mismatch");
    }
    n
}

/// Coordinate-wise trimmed mean of the cohort's pseudo-gradients.
///
/// Drops `floor(trim_ratio * n)` values from each end of every
/// coordinate's sorted value list and averages the rest. Weights are
/// ignored: order statistics are computed per update, uniformly.
///
/// # Panics
/// Panics if `updates` is empty, deltas have differing lengths, or
/// `trim_ratio` is outside `[0, 0.5)`.
pub fn trimmed_mean_aggregate(updates: &[ClientUpdate], trim_ratio: f64) -> Vec<f32> {
    assert!(
        (0.0..0.5).contains(&trim_ratio),
        "trim ratio must be in [0, 0.5)"
    );
    let dim = check_shapes(updates);
    let n = updates.len();
    let t = ((trim_ratio * n as f64).floor() as usize).min((n - 1) / 2);
    let mut column = vec![0.0f32; n];
    let mut out = vec![0.0f32; dim];
    for (j, o) in out.iter_mut().enumerate() {
        for (c, u) in column.iter_mut().zip(updates) {
            *c = u.delta[j];
        }
        column.sort_unstable_by(f32::total_cmp);
        let kept = &column[t..n - t];
        let sum: f64 = kept.iter().map(|&v| v as f64).sum();
        *o = (sum / kept.len() as f64) as f32;
    }
    out
}

/// Coordinate-wise median of the cohort's pseudo-gradients (even cohorts
/// average the two middle values). Weights are ignored.
///
/// # Panics
/// Panics if `updates` is empty or deltas have differing lengths.
pub fn median_aggregate(updates: &[ClientUpdate]) -> Vec<f32> {
    let dim = check_shapes(updates);
    let n = updates.len();
    let mut column = vec![0.0f32; n];
    let mut out = vec![0.0f32; dim];
    for (j, o) in out.iter_mut().enumerate() {
        for (c, u) in column.iter_mut().zip(updates) {
            *c = u.delta[j];
        }
        column.sort_unstable_by(f32::total_cmp);
        *o = if n % 2 == 1 {
            column[n / 2]
        } else {
            ((column[n / 2 - 1] as f64 + column[n / 2] as f64) / 2.0) as f32
        };
    }
    out
}

/// Median of a slice of f64 values, `total_cmp`-sorted; the slice is
/// reordered in place.
fn median_f64(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// L2 norm accumulated in f64 (bit-deterministic, overflow-resistant for
/// the magnitudes a scaling attack produces).
pub(crate) fn l2_norm_f64(delta: &[f32]) -> f64 {
    delta
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt()
}

/// Weighted mean after clipping each update's L2 norm to
/// `max_norm_mult ×` the cohort's median norm. Non-finite norms are
/// excluded from the median; a zero or non-finite threshold disables
/// clipping (a degenerate cohort has nothing meaningful to clip against).
///
/// # Panics
/// Panics if `updates` is empty, deltas have differing lengths, or
/// `max_norm_mult` is not positive and finite.
pub fn norm_clipped_aggregate(updates: &[ClientUpdate], max_norm_mult: f64) -> Vec<f32> {
    assert!(
        max_norm_mult.is_finite() && max_norm_mult > 0.0,
        "norm-clip multiple must be positive"
    );
    check_shapes(updates);
    let norms: Vec<f64> = updates.iter().map(|u| l2_norm_f64(&u.delta)).collect();
    let mut finite: Vec<f64> = norms.iter().copied().filter(|n| n.is_finite()).collect();
    let threshold = if finite.is_empty() {
        0.0
    } else {
        max_norm_mult * median_f64(&mut finite)
    };
    if !(threshold.is_finite() && threshold > 0.0) {
        return crate::aggregate_deltas(updates);
    }
    let mut clipped: Vec<ClientUpdate> = updates
        .iter()
        .zip(&norms)
        .map(|(u, &norm)| {
            if norm > threshold {
                let scale = threshold / norm;
                ClientUpdate {
                    delta: u.delta.iter().map(|&v| (v as f64 * scale) as f32).collect(),
                    weight: u.weight,
                }
            } else {
                u.clone()
            }
        })
        .collect();
    // Canonical summation order: the weighted mean accumulates in f64, so
    // without a fixed order a permuted cohort could differ in the last
    // bit. Ties between identical updates are harmless.
    clipped.sort_unstable_by(|a, b| {
        a.weight
            .total_cmp(&b.weight)
            .then_with(|| cmp_deltas(&a.delta, &b.delta))
    });
    crate::aggregate_deltas(&clipped)
}

/// Lexicographic `total_cmp` over two equally sized deltas.
fn cmp_deltas(a: &[f32], b: &[f32]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate::new(delta, 1.0).unwrap()
    }

    #[test]
    fn median_ignores_a_minority_outlier() {
        let updates = vec![u(vec![1.0, -1.0]), u(vec![1.2, -0.8]), u(vec![1e9, 1e9])];
        assert_eq!(median_aggregate(&updates), vec![1.2, -0.8]);
    }

    #[test]
    fn even_cohort_median_averages_the_middle() {
        let updates = vec![u(vec![1.0]), u(vec![2.0]), u(vec![3.0]), u(vec![100.0])];
        assert_eq!(median_aggregate(&updates), vec![2.5]);
    }

    #[test]
    fn trimmed_mean_sheds_extremes() {
        let updates = vec![
            u(vec![-1e9]),
            u(vec![1.0]),
            u(vec![2.0]),
            u(vec![3.0]),
            u(vec![1e9]),
        ];
        // trim 0.2 over n=5 drops one value per side.
        assert_eq!(trimmed_mean_aggregate(&updates, 0.2), vec![2.0]);
    }

    #[test]
    fn zero_trim_is_the_unweighted_mean() {
        let updates = vec![u(vec![1.0, 4.0]), u(vec![3.0, 0.0])];
        assert_eq!(trimmed_mean_aggregate(&updates, 0.0), vec![2.0, 2.0]);
    }

    #[test]
    fn trimmed_mean_sheds_a_minority_of_nans() {
        let updates = vec![u(vec![f32::NAN]), u(vec![1.0]), u(vec![2.0]), u(vec![3.0])];
        let agg = trimmed_mean_aggregate(&updates, 0.25);
        assert!(agg[0].is_finite());
        // NaN sorts above every finite value under total_cmp, so the top
        // trim slot absorbs it and the kept middle is [2, 3].
        assert_eq!(agg, vec![2.5]);
        let med = median_aggregate(&updates);
        assert!(med[0].is_finite());
    }

    #[test]
    fn norm_clipping_defangs_a_scaled_update() {
        let honest = vec![u(vec![1.0, 0.0]), u(vec![0.0, 1.0]), u(vec![1.0, 1.0])];
        let mut cohort = honest.clone();
        cohort.push(u(vec![1000.0, 1000.0]));
        let agg = norm_clipped_aggregate(&cohort, 2.0);
        // Median norm is ~1.2; the attacker is clipped to ~2.4 instead of
        // contributing a norm-1414 update, so the aggregate stays small.
        assert!(
            l2_norm_f64(&agg) < 2.0,
            "aggregate norm {}",
            l2_norm_f64(&agg)
        );
        // Honest-only clipping is a no-op: identical to the plain mean.
        assert_eq!(
            norm_clipped_aggregate(&honest, 2.0),
            crate::aggregate_deltas(&honest)
        );
    }

    #[test]
    fn zero_cohort_norms_disable_clipping() {
        let updates = vec![u(vec![0.0, 0.0]), u(vec![0.0, 0.0]), u(vec![1.0, 0.0])];
        let agg = norm_clipped_aggregate(&updates, 3.0);
        assert_eq!(agg, crate::aggregate_deltas(&updates));
    }

    #[test]
    fn robust_rules_are_permutation_invariant() {
        let updates = vec![
            u(vec![1.0, -2.0, 0.5]),
            u(vec![0.5, 3.0, -1.0]),
            u(vec![-9.0, 0.1, 4.0]),
            u(vec![2.0, 2.0, 2.0]),
        ];
        let mut reversed = updates.clone();
        reversed.reverse();
        assert_eq!(
            trimmed_mean_aggregate(&updates, 0.25),
            trimmed_mean_aggregate(&reversed, 0.25)
        );
        assert_eq!(median_aggregate(&updates), median_aggregate(&reversed));
        assert_eq!(
            norm_clipped_aggregate(&updates, 2.0),
            norm_clipped_aggregate(&reversed, 2.0)
        );
    }

    #[test]
    #[should_panic(expected = "trim ratio must be in")]
    fn half_trim_rejected() {
        trimmed_mean_aggregate(&[u(vec![1.0])], 0.5);
    }
}
