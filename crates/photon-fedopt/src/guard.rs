//! Guarded aggregation: per-update admission checks that keep poisoned or
//! numerically degenerate client updates away from the global model.
//!
//! Photon's aggregator (§3.1) trusts every delta it receives; in an
//! open-internet federation a single NaN, sign-flipped, or wildly scaled
//! update can destroy the run. The [`UpdateGuard`] screens each round's
//! cohort **before** aggregation:
//!
//! 1. **Quarantine skip** — clients that offended recently are ignored for
//!    a deterministic, round-keyed backoff window;
//! 2. **Finiteness scan** — any non-finite coordinate rejects the update;
//! 3. **Norm clipping** — updates larger than `clip_norm_mult ×` the
//!    running median of recently accepted norms are rescaled down;
//! 4. **Cohort outlier rejection** — robust z-score (median/MAD) on norms
//!    catches scaled updates; cosine similarity against the cohort mean
//!    catches direction-inverted (sign-flip) updates.
//!
//! Offenders are quarantined with exponential, seed-keyed backoff. All
//! decisions are pure functions of `(config, seed, round, id-sorted
//! cohort)`, so guarded runs replay bit-identically.

use crate::ClientUpdate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Thresholds for the [`UpdateGuard`]. Defaults are conservative: honest
/// heterogeneity (the paper's near-orthogonal client updates, Appendix
/// C.1) passes untouched, while the Byzantine faults in
/// `photon_core::faults` are caught in one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Whether admission checks run at all.
    pub enabled: bool,
    /// Clip an update whose norm exceeds this multiple of the running
    /// median of recently accepted norms.
    pub clip_norm_mult: f64,
    /// Reject an update whose norm sits more than this many robust
    /// standard deviations (median/MAD) above the cohort median.
    pub zscore_threshold: f64,
    /// Reject an update whose cosine similarity to the cohort mean falls
    /// below this floor (sign-flipped updates score near −1).
    pub cosine_floor: f64,
    /// First-offence quarantine length in rounds; doubles per strike.
    pub quarantine_base: u64,
    /// Ceiling on the exponential quarantine backoff.
    pub quarantine_max: u64,
    /// Number of recently accepted norms kept for the running median.
    pub norm_window: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: false,
            clip_norm_mult: 4.0,
            zscore_threshold: 6.0,
            cosine_floor: -0.25,
            quarantine_base: 2,
            quarantine_max: 16,
            norm_window: 32,
        }
    }
}

impl GuardConfig {
    /// The default thresholds with admission checks switched on.
    pub fn on() -> Self {
        GuardConfig {
            enabled: true,
            ..GuardConfig::default()
        }
    }

    /// Checks threshold consistency.
    ///
    /// # Errors
    /// Returns a description of the out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.clip_norm_mult.is_finite() && self.clip_norm_mult > 1.0) {
            return Err(format!(
                "guard clip_norm_mult {} must be finite and > 1",
                self.clip_norm_mult
            ));
        }
        if !(self.zscore_threshold.is_finite() && self.zscore_threshold > 0.0) {
            return Err(format!(
                "guard zscore_threshold {} must be positive",
                self.zscore_threshold
            ));
        }
        if !(-1.0..=1.0).contains(&self.cosine_floor) {
            return Err(format!(
                "guard cosine_floor {} outside [-1, 1]",
                self.cosine_floor
            ));
        }
        if self.quarantine_base == 0 || self.quarantine_max < self.quarantine_base {
            return Err("guard quarantine window must satisfy 1 <= base <= max".into());
        }
        if self.norm_window == 0 {
            return Err("guard norm_window must be at least 1".into());
        }
        Ok(())
    }
}

/// What the guard decided about one update in a screened cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardDecision {
    /// Admitted unchanged.
    Admit,
    /// Admitted after the delta was rescaled to the norm ceiling.
    Clipped,
    /// Skipped: the client is serving a quarantine sentence.
    Quarantined,
    /// Rejected: the delta (or its weight) contained non-finite values.
    RejectedNonFinite,
    /// Rejected: a cohort-relative outlier (norm z-score or cosine).
    RejectedOutlier,
}

impl GuardDecision {
    /// Whether the update takes part in aggregation.
    pub fn admitted(self) -> bool {
        matches!(self, GuardDecision::Admit | GuardDecision::Clipped)
    }
}

/// Per-round guard accounting, mirrored into `Telemetry::fault_counters`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// One decision per screened update, in input order.
    pub decisions: Vec<GuardDecision>,
    /// Updates rejected by the finiteness scan.
    pub rejected_nonfinite: u64,
    /// Updates rejected as cohort outliers (z-score or cosine).
    pub rejected_outliers: u64,
    /// Updates admitted after norm clipping.
    pub clipped: u64,
    /// Updates skipped because their client is quarantined.
    pub quarantine_skips: u64,
}

#[derive(Debug, Clone, Copy)]
struct Sentence {
    /// Last round (inclusive) the client sits out.
    until: u64,
    /// Offence count; drives the exponential backoff.
    strikes: u32,
}

/// Stateful admission guard owned by the aggregator. State (running norm
/// median, quarantine ledger) is *not* checkpointed: after a crash
/// recovery it re-warms from the replayed rounds, which is deterministic
/// because every decision is keyed on `(seed, round, cohort)`.
#[derive(Debug, Clone)]
pub struct UpdateGuard {
    cfg: GuardConfig,
    seed: u64,
    norm_history: VecDeque<f64>,
    quarantine: BTreeMap<u32, Sentence>,
}

impl UpdateGuard {
    /// Creates a guard for one run.
    ///
    /// # Panics
    /// Panics if the configuration fails [`GuardConfig::validate`].
    pub fn new(cfg: GuardConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid guard config");
        UpdateGuard {
            cfg,
            seed,
            norm_history: VecDeque::new(),
            quarantine: BTreeMap::new(),
        }
    }

    /// Whether `client` is serving a quarantine sentence at `round`.
    pub fn is_quarantined(&self, client: u32, round: u64) -> bool {
        self.quarantine
            .get(&client)
            .is_some_and(|s| round <= s.until)
    }

    /// Quarantines `client` for an offence observed at `round`:
    /// exponential in the client's strike count, plus a deterministic
    /// round-keyed jitter so released offenders do not re-synchronize.
    pub fn quarantine(&mut self, round: u64, client: u32) {
        let s = self.quarantine.entry(client).or_insert(Sentence {
            until: 0,
            strikes: 0,
        });
        s.strikes += 1;
        let shift = s.strikes.saturating_sub(1).min(6);
        let base = self
            .cfg
            .quarantine_base
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.cfg.quarantine_max);
        let jitter = mix(self.seed, round, client) % self.cfg.quarantine_base;
        s.until = round + base + jitter;
    }

    /// Screens one id-sorted cohort. Clipped deltas are rescaled in place;
    /// the caller drops every update whose decision is not
    /// [`GuardDecision::admitted`].
    ///
    /// # Panics
    /// Panics if `ids` and `updates` differ in length.
    pub fn screen_round(
        &mut self,
        round: u64,
        ids: &[u32],
        updates: &mut [ClientUpdate],
    ) -> GuardReport {
        assert_eq!(ids.len(), updates.len(), "ids/updates length mismatch");
        let mut screen_span = photon_trace::span(photon_trace::Phase::GuardScreen)
            .arg("round", round)
            .arg("cohort", updates.len() as u64);
        let n = updates.len();
        let mut report = GuardReport {
            decisions: vec![GuardDecision::Admit; n],
            ..GuardReport::default()
        };

        // 1. Quarantine skips and the finiteness scan.
        for i in 0..n {
            if self.is_quarantined(ids[i], round) {
                report.decisions[i] = GuardDecision::Quarantined;
                report.quarantine_skips += 1;
            } else if !updates[i].is_finite() {
                report.decisions[i] = GuardDecision::RejectedNonFinite;
                report.rejected_nonfinite += 1;
                self.quarantine(round, ids[i]);
            }
        }

        // 2. Norm clipping against the running median of accepted norms.
        let mut norms: Vec<f64> = updates
            .iter()
            .map(|u| crate::robust::l2_norm_f64(&u.delta))
            .collect();
        if let Some(med) = self.history_median() {
            let ceiling = self.cfg.clip_norm_mult * med;
            if ceiling.is_finite() && ceiling > 0.0 {
                for i in 0..n {
                    if report.decisions[i] == GuardDecision::Admit && norms[i] > ceiling {
                        let scale = ceiling / norms[i];
                        for v in &mut updates[i].delta {
                            *v = (*v as f64 * scale) as f32;
                        }
                        norms[i] = ceiling;
                        report.decisions[i] = GuardDecision::Clipped;
                        report.clipped += 1;
                    }
                }
            }
        }

        // 3. Cohort-relative outlier rejection (needs >= 3 live updates
        // for the statistics to mean anything).
        let live: Vec<usize> = (0..n).filter(|&i| report.decisions[i].admitted()).collect();
        if live.len() >= 3 {
            // Robust z-score on norms: median/MAD, high side only.
            let mut live_norms: Vec<f64> = live.iter().map(|&i| norms[i]).collect();
            let med = median_in_place(&mut live_norms);
            let mut devs: Vec<f64> = live.iter().map(|&i| (norms[i] - med).abs()).collect();
            let mad = median_in_place(&mut devs);
            let sigma = (1.4826 * mad).max(med.abs() * 1e-6).max(1e-12);
            for &i in &live {
                // Clipped updates were already tamed to the norm ceiling;
                // rejecting them too would punish honest clients with a
                // transient spike.
                if report.decisions[i] != GuardDecision::Admit {
                    continue;
                }
                if norms[i] > med && (norms[i] - med) / sigma > self.cfg.zscore_threshold {
                    report.decisions[i] = GuardDecision::RejectedOutlier;
                    report.rejected_outliers += 1;
                    self.quarantine(round, ids[i]);
                }
            }

            // Cosine against the (unweighted) mean of the still-live
            // cohort: a direction-inverted update scores near -1.
            let live: Vec<usize> = (0..n).filter(|&i| report.decisions[i].admitted()).collect();
            if live.len() >= 3 {
                let dim = updates[0].delta.len();
                let mut mean = vec![0.0f64; dim];
                for &i in &live {
                    for (m, &v) in mean.iter_mut().zip(&updates[i].delta) {
                        *m += v as f64;
                    }
                }
                let count = live.len() as f64;
                for m in &mut mean {
                    *m /= count;
                }
                let mean_norm = mean.iter().map(|v| v * v).sum::<f64>().sqrt();
                if mean_norm > 0.0 {
                    for &i in &live {
                        if norms[i] == 0.0 {
                            continue;
                        }
                        let dot: f64 = updates[i]
                            .delta
                            .iter()
                            .zip(&mean)
                            .map(|(&v, m)| v as f64 * m)
                            .sum();
                        let cosine = dot / (norms[i] * mean_norm);
                        if cosine < self.cfg.cosine_floor {
                            report.decisions[i] = GuardDecision::RejectedOutlier;
                            report.rejected_outliers += 1;
                            self.quarantine(round, ids[i]);
                        }
                    }
                }
            }
        }

        // 4. Accepted norms feed the running median (id order: the caller
        // sorts the cohort, keeping the window deterministic).
        for (i, &norm) in norms.iter().enumerate() {
            if report.decisions[i].admitted() {
                if self.norm_history.len() == self.cfg.norm_window {
                    self.norm_history.pop_front();
                }
                self.norm_history.push_back(norm);
            }
        }
        screen_span.set_arg(
            "rejected",
            report.rejected_nonfinite + report.rejected_outliers + report.quarantine_skips,
        );
        screen_span.set_arg("clipped", report.clipped);
        report
    }

    /// Median of the recently accepted norms, if any were recorded.
    fn history_median(&self) -> Option<f64> {
        if self.norm_history.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.norm_history.iter().copied().collect();
        Some(median_in_place(&mut sorted))
    }
}

fn median_in_place(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// FNV-style mix over `(seed, round, client)` for the quarantine jitter:
/// pure and order-free, like the fault-plan cell streams.
fn mix(seed: u64, round: u64, client: u32) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for byte in round.to_le_bytes().into_iter().chain(client.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate::new(delta, 1.0).unwrap()
    }

    fn honest_cohort(n: usize, dim: usize) -> (Vec<u32>, Vec<ClientUpdate>) {
        let ids: Vec<u32> = (0..n as u32).collect();
        let updates = (0..n)
            .map(|i| {
                u((0..dim)
                    .map(|j| 0.1 + 0.01 * ((i * 7 + j * 3) % 5) as f32)
                    .collect())
            })
            .collect();
        (ids, updates)
    }

    #[test]
    fn honest_cohorts_pass_untouched() {
        let mut guard = UpdateGuard::new(GuardConfig::on(), 7);
        let (ids, mut updates) = honest_cohort(4, 8);
        let before = updates.clone();
        for round in 0..5 {
            let report = guard.screen_round(round, &ids, &mut updates);
            assert!(report.decisions.iter().all(|d| *d == GuardDecision::Admit));
        }
        assert_eq!(updates, before);
    }

    #[test]
    fn nan_updates_are_rejected_and_quarantined() {
        let mut guard = UpdateGuard::new(GuardConfig::on(), 7);
        let (ids, mut updates) = honest_cohort(4, 8);
        updates[2].delta[3] = f32::NAN;
        let report = guard.screen_round(0, &ids, &mut updates);
        assert_eq!(report.decisions[2], GuardDecision::RejectedNonFinite);
        assert_eq!(report.rejected_nonfinite, 1);
        assert!(guard.is_quarantined(2, 1));

        // Next round the client is skipped without being screened.
        let (_, mut fresh) = honest_cohort(4, 8);
        let report = guard.screen_round(1, &ids, &mut fresh);
        assert_eq!(report.decisions[2], GuardDecision::Quarantined);
        assert_eq!(report.quarantine_skips, 1);
    }

    #[test]
    fn scaled_updates_are_norm_outliers() {
        let mut guard = UpdateGuard::new(GuardConfig::on(), 7);
        let (ids, mut updates) = honest_cohort(4, 8);
        for v in &mut updates[1].delta {
            *v *= 1000.0;
        }
        let report = guard.screen_round(0, &ids, &mut updates);
        assert_eq!(report.decisions[1], GuardDecision::RejectedOutlier);
        assert_eq!(report.rejected_outliers, 1);
        assert!(guard.is_quarantined(1, 1));
        assert!(report.decisions[0].admitted());
    }

    #[test]
    fn sign_flipped_updates_fail_the_cosine_check() {
        let mut guard = UpdateGuard::new(GuardConfig::on(), 7);
        let (ids, mut updates) = honest_cohort(4, 8);
        for v in &mut updates[3].delta {
            *v = -*v;
        }
        let report = guard.screen_round(0, &ids, &mut updates);
        assert_eq!(report.decisions[3], GuardDecision::RejectedOutlier);
        assert!(report.decisions[..3].iter().all(|d| d.admitted()));
    }

    #[test]
    fn history_clip_tames_slow_norm_growth() {
        let mut guard = UpdateGuard::new(GuardConfig::on(), 7);
        let (ids, mut updates) = honest_cohort(4, 8);
        // Warm the norm history with honest rounds.
        for round in 0..3 {
            guard.screen_round(round, &ids, &mut updates);
        }
        // A 10x update is above the clip ceiling (4x median) but may pass
        // the cohort z-score if the cohort is small; clipping bounds it.
        let norm_before = updates[0].norm();
        for v in &mut updates[0].delta {
            *v *= 10.0;
        }
        let report = guard.screen_round(3, &ids, &mut updates);
        assert_eq!(report.decisions[0], GuardDecision::Clipped);
        assert!(updates[0].norm() < norm_before * 6.0);
    }

    #[test]
    fn quarantine_backoff_grows_and_is_deterministic() {
        let cfg = GuardConfig::on();
        let mut a = UpdateGuard::new(cfg, 9);
        let mut b = UpdateGuard::new(cfg, 9);
        for round in [0u64, 40, 80] {
            a.quarantine(round, 5);
            b.quarantine(round, 5);
        }
        assert_eq!(a.quarantine[&5].strikes, 3);
        assert_eq!(a.quarantine[&5].until, b.quarantine[&5].until);
        // Third strike sits out at least base << 2 rounds.
        assert!(a.quarantine[&5].until >= 80 + 8);
        assert!(a.quarantine[&5].until <= 80 + cfg.quarantine_max + cfg.quarantine_base);
    }

    #[test]
    fn screening_is_deterministic() {
        let (ids, updates) = honest_cohort(5, 6);
        let run = || {
            let mut guard = UpdateGuard::new(GuardConfig::on(), 3);
            let mut poisoned = updates.clone();
            poisoned[4].delta.iter_mut().for_each(|v| *v *= 500.0);
            let mut out = Vec::new();
            for round in 0..4 {
                let mut cohort = poisoned.clone();
                out.push(guard.screen_round(round, &ids, &mut cohort));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut cfg = GuardConfig::on();
        cfg.clip_norm_mult = 0.5;
        assert!(cfg.validate().is_err());
        let mut cfg = GuardConfig::on();
        cfg.cosine_floor = -2.0;
        assert!(cfg.validate().is_err());
        let mut cfg = GuardConfig::on();
        cfg.quarantine_max = 0;
        assert!(cfg.validate().is_err());
        assert!(GuardConfig::on().validate().is_ok());
    }
}
