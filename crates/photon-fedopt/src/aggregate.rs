use serde::{Deserialize, Serialize};

/// The aggregation rule applied to the cohort's pseudo-gradients before
/// the server optimizer (Algorithm 1, L.8). `Mean` is the paper's default;
/// `Ties` is the heterogeneity-robust alternative its §5.5 points to; the
/// remaining rules are Byzantine-robust order statistics for cohorts that
/// cannot be assumed well-behaved (the open-internet setting of "The
/// Future of LLM Pre-training is Federated").
///
/// Every rule is permutation-invariant in the update order and
/// bit-deterministic for a fixed input set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AggregationKind {
    /// Weighted arithmetic mean (FedAvg-style).
    #[default]
    Mean,
    /// TIES-merging: trim to the top-density entries, elect per-coordinate
    /// signs by magnitude, average the sign-consistent survivors.
    Ties {
        /// Fraction of each client's largest-magnitude entries to keep.
        density: f64,
    },
    /// Coordinate-wise trimmed mean: drop the `trim_ratio` fraction of
    /// extreme values on each side before averaging. Tolerates up to
    /// `floor(trim_ratio * n)` adversarial updates per coordinate side.
    TrimmedMean {
        /// Fraction trimmed from each end, in `[0, 0.5)`.
        trim_ratio: f64,
    },
    /// Coordinate-wise median — maximally robust: the output stays within
    /// the inlier range under up to `floor((n - 1) / 2)` adversaries.
    Median,
    /// Weighted mean after clipping every update's L2 norm to
    /// `max_norm_mult ×` the cohort's median norm (defangs scaled
    /// updates while keeping the mean's variance reduction).
    NormClipped {
        /// Norm ceiling as a multiple of the cohort median norm.
        max_norm_mult: f64,
    },
}

impl AggregationKind {
    /// Parses the CLI grammar: `mean`, `ties[:density]`,
    /// `trimmed-mean[:ratio]`, `median`, `norm-clipped[:mult]`.
    ///
    /// # Errors
    /// Returns a message naming the offending mode or parameter.
    pub fn parse(s: &str) -> Result<AggregationKind, String> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let number = |default: f64| -> Result<f64, String> {
            match param {
                None => Ok(default),
                Some(p) => p
                    .parse()
                    .map_err(|_| format!("invalid aggregation parameter {p:?}")),
            }
        };
        let kind = match name {
            "mean" => AggregationKind::Mean,
            "ties" => AggregationKind::Ties {
                density: number(0.2)?,
            },
            "trimmed-mean" => AggregationKind::TrimmedMean {
                trim_ratio: number(0.2)?,
            },
            "median" => AggregationKind::Median,
            "norm-clipped" => AggregationKind::NormClipped {
                max_norm_mult: number(3.0)?,
            },
            other => {
                return Err(format!(
                    "unknown aggregation {other:?} \
                     (mean|ties|trimmed-mean|median|norm-clipped)"
                ))
            }
        };
        kind.validate()?;
        Ok(kind)
    }

    /// Checks the rule's parameters.
    ///
    /// # Errors
    /// Returns a description of the out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AggregationKind::Ties { density } => {
                if !(density > 0.0 && density <= 1.0) {
                    return Err(format!("ties density {density} outside (0, 1]"));
                }
            }
            AggregationKind::TrimmedMean { trim_ratio } => {
                if !(0.0..0.5).contains(&trim_ratio) {
                    return Err(format!("trim ratio {trim_ratio} outside [0, 0.5)"));
                }
            }
            AggregationKind::NormClipped { max_norm_mult } => {
                if !(max_norm_mult.is_finite() && max_norm_mult > 0.0) {
                    return Err(format!(
                        "norm-clip multiple {max_norm_mult} must be positive"
                    ));
                }
            }
            AggregationKind::Mean | AggregationKind::Median => {}
        }
        Ok(())
    }

    /// The rule's stable short name (used as the robust-merge span name in
    /// traces).
    pub fn rule_name(&self) -> &'static str {
        match *self {
            AggregationKind::Mean => "mean",
            AggregationKind::Ties { .. } => "ties",
            AggregationKind::TrimmedMean { .. } => "trimmed_mean",
            AggregationKind::Median => "median",
            AggregationKind::NormClipped { .. } => "norm_clipped",
        }
    }

    /// Applies the rule to a cohort's updates.
    ///
    /// # Panics
    /// Panics if `updates` is empty or delta lengths differ.
    pub fn aggregate(&self, updates: &[ClientUpdate]) -> Vec<f32> {
        let _merge_span = photon_trace::span(photon_trace::Phase::RobustMerge)
            .named(self.rule_name())
            .arg("updates", updates.len() as u64)
            .arg(
                "params",
                updates.first().map_or(0, |u| u.delta.len()) as u64,
            );
        match *self {
            AggregationKind::Mean => aggregate_deltas(updates),
            AggregationKind::Ties { density } => {
                crate::ties_aggregate(updates, &crate::TiesConfig { density })
            }
            AggregationKind::TrimmedMean { trim_ratio } => {
                crate::trimmed_mean_aggregate(updates, trim_ratio)
            }
            AggregationKind::Median => crate::median_aggregate(updates),
            AggregationKind::NormClipped { max_norm_mult } => {
                crate::norm_clipped_aggregate(updates, max_norm_mult)
            }
        }
    }
}

/// One client's contribution to a round: a pseudo-gradient
/// `Δ_k = θ_global − θ_k` (Algorithm 1, L.7) plus an aggregation weight
/// (uniform 1.0 in the paper; sample counts for weighted FedAvg).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// Flat pseudo-gradient, same layout as the model parameters.
    pub delta: Vec<f32>,
    /// Aggregation weight (must be positive).
    pub weight: f64,
}

impl ClientUpdate {
    /// Creates an update, rejecting non-positive or non-finite weights so
    /// a malformed client result surfaces as a recoverable error instead
    /// of aborting the aggregation thread.
    ///
    /// # Errors
    /// Returns a message describing the bad weight.
    pub fn new(delta: Vec<f32>, weight: f64) -> Result<Self, String> {
        if !(weight.is_finite() && weight > 0.0) {
            return Err(format!(
                "aggregation weight {weight} must be positive and finite"
            ));
        }
        Ok(ClientUpdate { delta, weight })
    }

    /// L2 norm of the pseudo-gradient (a useful training-health metric:
    /// the paper notes client updates are near-orthogonal with small
    /// pseudo-gradient norms, Appendix C.1).
    pub fn norm(&self) -> f32 {
        photon_tensor::ops::l2_norm(&self.delta)
    }

    /// Whether every entry of the pseudo-gradient is finite.
    pub fn is_finite(&self) -> bool {
        self.delta.iter().all(|v| v.is_finite())
    }
}

/// Computes a client's pseudo-gradient from the global and locally trained
/// parameters: `Δ = global − local`.
///
/// # Panics
/// Panics if lengths differ.
pub fn delta_from(global: &[f32], local: &[f32]) -> Vec<f32> {
    assert_eq!(global.len(), local.len(), "parameter length mismatch");
    global.iter().zip(local).map(|(g, l)| g - l).collect()
}

/// Weighted average of client pseudo-gradients (Algorithm 1, L.8).
///
/// # Panics
/// Panics if `updates` is empty or the deltas have differing lengths.
pub fn aggregate_deltas(updates: &[ClientUpdate]) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let n = updates[0].delta.len();
    let total_w: f64 = updates.iter().map(|u| u.weight).sum();
    let mut out = vec![0.0f64; n];
    for u in updates {
        assert_eq!(u.delta.len(), n, "delta length mismatch");
        let w = u.weight / total_w;
        for (o, &d) in out.iter_mut().zip(&u.delta) {
            *o += w * d as f64;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(delta: Vec<f32>, weight: f64) -> ClientUpdate {
        ClientUpdate::new(delta, weight).unwrap()
    }

    #[test]
    fn delta_is_global_minus_local() {
        let d = delta_from(&[1.0, 2.0], &[0.5, 3.0]);
        assert_eq!(d, vec![0.5, -1.0]);
    }

    #[test]
    fn uniform_aggregation_is_mean() {
        let updates = vec![
            u(vec![2.0, 0.0], 1.0),
            u(vec![0.0, 2.0], 1.0),
            u(vec![1.0, 1.0], 1.0),
        ];
        assert_eq!(aggregate_deltas(&updates), vec![1.0, 1.0]);
    }

    #[test]
    fn weighted_aggregation() {
        let updates = vec![u(vec![0.0], 3.0), u(vec![4.0], 1.0)];
        assert_eq!(aggregate_deltas(&updates), vec![1.0]);
    }

    #[test]
    fn single_update_passes_through() {
        let updates = vec![u(vec![0.25, -0.5], 7.0)];
        assert_eq!(aggregate_deltas(&updates), vec![0.25, -0.5]);
    }

    #[test]
    fn norm_metric() {
        assert_eq!(u(vec![3.0, 4.0], 1.0).norm(), 5.0);
    }

    #[test]
    fn finiteness_scan() {
        assert!(u(vec![1.0, -2.0], 1.0).is_finite());
        assert!(!u(vec![1.0, f32::NAN], 1.0).is_finite());
        assert!(!u(vec![f32::INFINITY], 1.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero updates")]
    fn empty_aggregation_panics() {
        aggregate_deltas(&[]);
    }

    #[test]
    fn bad_weights_are_errors_not_panics() {
        assert!(ClientUpdate::new(vec![1.0], -1.0).is_err());
        assert!(ClientUpdate::new(vec![1.0], 0.0).is_err());
        assert!(ClientUpdate::new(vec![1.0], f64::NAN).is_err());
        assert!(ClientUpdate::new(vec![1.0], f64::INFINITY).is_err());
        assert!(ClientUpdate::new(vec![1.0], 2.0).is_ok());
    }

    #[test]
    fn parse_covers_the_cli_grammar() {
        assert_eq!(
            AggregationKind::parse("mean").unwrap(),
            AggregationKind::Mean
        );
        assert_eq!(
            AggregationKind::parse("ties:0.5").unwrap(),
            AggregationKind::Ties { density: 0.5 }
        );
        assert_eq!(
            AggregationKind::parse("trimmed-mean").unwrap(),
            AggregationKind::TrimmedMean { trim_ratio: 0.2 }
        );
        assert_eq!(
            AggregationKind::parse("trimmed-mean:0.3").unwrap(),
            AggregationKind::TrimmedMean { trim_ratio: 0.3 }
        );
        assert_eq!(
            AggregationKind::parse("median").unwrap(),
            AggregationKind::Median
        );
        assert_eq!(
            AggregationKind::parse("norm-clipped:5").unwrap(),
            AggregationKind::NormClipped { max_norm_mult: 5.0 }
        );
        assert!(AggregationKind::parse("krum").is_err());
        assert!(AggregationKind::parse("trimmed-mean:0.5").is_err());
        assert!(AggregationKind::parse("trimmed-mean:x").is_err());
        assert!(AggregationKind::parse("ties:0").is_err());
        assert!(AggregationKind::parse("norm-clipped:-1").is_err());
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;

    #[test]
    fn kind_dispatches_to_every_rule() {
        let updates = vec![
            ClientUpdate::new(vec![1.0, 0.2], 1.0).unwrap(),
            ClientUpdate::new(vec![3.0, -0.2], 1.0).unwrap(),
        ];
        assert_eq!(AggregationKind::Mean.aggregate(&updates), vec![2.0, 0.0]);
        let ties = AggregationKind::Ties { density: 1.0 }.aggregate(&updates);
        assert_eq!(ties[0], 2.0);
        assert!(ties[1] > 0.0); // sign election keeps the positive entry
        let med = AggregationKind::Median.aggregate(&updates);
        assert_eq!(med, vec![2.0, 0.0]);
        let tm = AggregationKind::TrimmedMean { trim_ratio: 0.2 }.aggregate(&updates);
        assert_eq!(tm, vec![2.0, 0.0]);
        let nc = AggregationKind::NormClipped { max_norm_mult: 3.0 }.aggregate(&updates);
        assert_eq!(nc.len(), 2);
        assert_eq!(AggregationKind::default(), AggregationKind::Mean);
    }
}
