use serde::{Deserialize, Serialize};

/// The aggregation rule applied to the cohort's pseudo-gradients before
/// the server optimizer (Algorithm 1, L.8). `Mean` is the paper's default;
/// `Ties` is the heterogeneity-robust alternative its §5.5 points to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AggregationKind {
    /// Weighted arithmetic mean (FedAvg-style).
    #[default]
    Mean,
    /// TIES-merging: trim to the top-density entries, elect per-coordinate
    /// signs by magnitude, average the sign-consistent survivors.
    Ties {
        /// Fraction of each client's largest-magnitude entries to keep.
        density: f64,
    },
}

impl AggregationKind {
    /// Applies the rule to a cohort's updates.
    ///
    /// # Panics
    /// Panics if `updates` is empty or delta lengths differ.
    pub fn aggregate(&self, updates: &[ClientUpdate]) -> Vec<f32> {
        match *self {
            AggregationKind::Mean => aggregate_deltas(updates),
            AggregationKind::Ties { density } => {
                crate::ties_aggregate(updates, &crate::TiesConfig { density })
            }
        }
    }
}

/// One client's contribution to a round: a pseudo-gradient
/// `Δ_k = θ_global − θ_k` (Algorithm 1, L.7) plus an aggregation weight
/// (uniform 1.0 in the paper; sample counts for weighted FedAvg).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// Flat pseudo-gradient, same layout as the model parameters.
    pub delta: Vec<f32>,
    /// Aggregation weight (must be positive).
    pub weight: f64,
}

impl ClientUpdate {
    /// Creates an update.
    ///
    /// # Panics
    /// Panics if `weight` is not positive and finite.
    pub fn new(delta: Vec<f32>, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        ClientUpdate { delta, weight }
    }

    /// L2 norm of the pseudo-gradient (a useful training-health metric:
    /// the paper notes client updates are near-orthogonal with small
    /// pseudo-gradient norms, Appendix C.1).
    pub fn norm(&self) -> f32 {
        photon_tensor::ops::l2_norm(&self.delta)
    }
}

/// Computes a client's pseudo-gradient from the global and locally trained
/// parameters: `Δ = global − local`.
///
/// # Panics
/// Panics if lengths differ.
pub fn delta_from(global: &[f32], local: &[f32]) -> Vec<f32> {
    assert_eq!(global.len(), local.len(), "parameter length mismatch");
    global.iter().zip(local).map(|(g, l)| g - l).collect()
}

/// Weighted average of client pseudo-gradients (Algorithm 1, L.8).
///
/// # Panics
/// Panics if `updates` is empty or the deltas have differing lengths.
pub fn aggregate_deltas(updates: &[ClientUpdate]) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let n = updates[0].delta.len();
    let total_w: f64 = updates.iter().map(|u| u.weight).sum();
    let mut out = vec![0.0f64; n];
    for u in updates {
        assert_eq!(u.delta.len(), n, "delta length mismatch");
        let w = u.weight / total_w;
        for (o, &d) in out.iter_mut().zip(&u.delta) {
            *o += w * d as f64;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_global_minus_local() {
        let d = delta_from(&[1.0, 2.0], &[0.5, 3.0]);
        assert_eq!(d, vec![0.5, -1.0]);
    }

    #[test]
    fn uniform_aggregation_is_mean() {
        let updates = vec![
            ClientUpdate::new(vec![2.0, 0.0], 1.0),
            ClientUpdate::new(vec![0.0, 2.0], 1.0),
            ClientUpdate::new(vec![1.0, 1.0], 1.0),
        ];
        assert_eq!(aggregate_deltas(&updates), vec![1.0, 1.0]);
    }

    #[test]
    fn weighted_aggregation() {
        let updates = vec![
            ClientUpdate::new(vec![0.0], 3.0),
            ClientUpdate::new(vec![4.0], 1.0),
        ];
        assert_eq!(aggregate_deltas(&updates), vec![1.0]);
    }

    #[test]
    fn single_update_passes_through() {
        let updates = vec![ClientUpdate::new(vec![0.25, -0.5], 7.0)];
        assert_eq!(aggregate_deltas(&updates), vec![0.25, -0.5]);
    }

    #[test]
    fn norm_metric() {
        assert_eq!(ClientUpdate::new(vec![3.0, 4.0], 1.0).norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero updates")]
    fn empty_aggregation_panics() {
        aggregate_deltas(&[]);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn negative_weight_rejected() {
        ClientUpdate::new(vec![1.0], -1.0);
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;

    #[test]
    fn kind_dispatches_to_both_rules() {
        let updates = vec![
            ClientUpdate::new(vec![1.0, 0.2], 1.0),
            ClientUpdate::new(vec![3.0, -0.2], 1.0),
        ];
        assert_eq!(AggregationKind::Mean.aggregate(&updates), vec![2.0, 0.0]);
        let ties = AggregationKind::Ties { density: 1.0 }.aggregate(&updates);
        assert_eq!(ties[0], 2.0);
        assert!(ties[1] > 0.0); // sign election keeps the positive entry
        assert_eq!(AggregationKind::default(), AggregationKind::Mean);
    }
}
