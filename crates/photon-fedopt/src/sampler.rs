use photon_tensor::SeedStream;

/// Selects which clients participate in a round (Algorithm 1, L.4:
/// `C ~ U(P, K)` — sample `K` clients uniformly from the population).
pub trait ClientSampler: Send {
    /// Returns the sorted indices of the clients sampled for `round`.
    fn sample(&mut self, population: usize, round: u64) -> Vec<usize>;

    /// Expected number of clients per round for a given population.
    fn cohort_size(&self, population: usize) -> usize;
}

/// Every client participates every round (the paper's billion-scale runs,
/// §5.2: "full participation every round").
#[derive(Debug, Clone, Copy, Default)]
pub struct FullParticipation;

impl ClientSampler for FullParticipation {
    fn sample(&mut self, population: usize, _round: u64) -> Vec<usize> {
        (0..population).collect()
    }

    fn cohort_size(&self, population: usize) -> usize {
        population
    }
}

/// Uniform sampling of `k` clients without replacement — partial
/// participation (paper §5.5 samples 25%, 50%, 100% of sixteen clients).
#[derive(Debug, Clone)]
pub struct UniformSampler {
    k: usize,
    rng: SeedStream,
}

impl UniformSampler {
    /// Samples exactly `k` clients per round.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, rng: SeedStream) -> Self {
        assert!(k > 0, "cohort size must be positive");
        UniformSampler { k, rng }
    }

    /// Samples a fixed fraction of the population (rounded, minimum 1).
    ///
    /// # Panics
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn from_fraction(fraction: f64, population: usize, rng: SeedStream) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let k = ((population as f64 * fraction).round() as usize).max(1);
        UniformSampler::new(k, rng)
    }
}

/// Round-keyed uniform draw of up to `k` clients from an explicit *live
/// member* list (elastic membership replaces the fixed `0..population`
/// universe with whatever the registry says is alive this round). The
/// draw forks `rng` per round, so it is a pure function of `(rng, round,
/// live)` — restored runs and replays sample identical cohorts.
///
/// Returns the members sorted ascending; the full list when `k >= len`.
pub fn sample_live(live: &[u32], k: usize, rng: &SeedStream, round: u64) -> Vec<u32> {
    if live.len() <= k {
        let mut all = live.to_vec();
        all.sort_unstable();
        return all;
    }
    let picked = rng
        .fork(&format!("round-{round}"))
        .sample_indices(live.len(), k);
    let mut cohort: Vec<u32> = picked.into_iter().map(|i| live[i]).collect();
    cohort.sort_unstable();
    cohort
}

impl ClientSampler for UniformSampler {
    fn sample(&mut self, population: usize, round: u64) -> Vec<usize> {
        let k = self.k.min(population);
        // Round-keyed: the cohort for round r is a pure function of the
        // base stream and r, so a run restored from a checkpoint samples
        // exactly the cohorts the uninterrupted run would have.
        self.rng
            .fork(&format!("round-{round}"))
            .sample_indices(population, k)
    }

    fn cohort_size(&self, population: usize) -> usize {
        self.k.min(population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_participation_returns_everyone() {
        let mut s = FullParticipation;
        assert_eq!(s.sample(4, 0), vec![0, 1, 2, 3]);
        assert_eq!(s.cohort_size(16), 16);
    }

    #[test]
    fn uniform_sampler_size_and_range() {
        let mut s = UniformSampler::new(4, SeedStream::new(1));
        for round in 0..50 {
            let c = s.sample(16, round);
            assert_eq!(c.len(), 4);
            assert!(c.iter().all(|&i| i < 16));
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn uniform_sampler_eventually_covers_population() {
        let mut s = UniformSampler::new(4, SeedStream::new(2));
        let mut seen = [false; 16];
        for round in 0..100 {
            for i in s.sample(16, round) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some client never sampled");
    }

    #[test]
    fn fraction_constructor_matches_paper_ratios() {
        // 25%, 50%, 100% of 16 clients (paper §5.5).
        for (frac, expect) in [(0.25, 4), (0.5, 8), (1.0, 16)] {
            let s = UniformSampler::from_fraction(frac, 16, SeedStream::new(3));
            assert_eq!(s.cohort_size(16), expect);
        }
    }

    #[test]
    fn sampling_is_round_keyed() {
        // A sampler that skipped straight to round 5 (e.g. after a
        // checkpoint restore) picks the same cohort as one that walked
        // rounds 0..5 first.
        let mut walked = UniformSampler::new(3, SeedStream::new(9));
        for round in 0..5 {
            walked.sample(12, round);
        }
        let mut jumped = UniformSampler::new(3, SeedStream::new(9));
        assert_eq!(walked.sample(12, 5), jumped.sample(12, 5));
        // Different rounds still differ somewhere.
        let mut s = UniformSampler::new(3, SeedStream::new(9));
        let cohorts: Vec<_> = (0..10).map(|r| s.sample(12, r)).collect();
        assert!(cohorts.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn oversized_k_clamps_to_population() {
        let mut s = UniformSampler::new(10, SeedStream::new(4));
        assert_eq!(s.sample(3, 0), vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = UniformSampler::new(2, SeedStream::new(7));
        let mut b = UniformSampler::new(2, SeedStream::new(7));
        assert_eq!(a.sample(10, 0), b.sample(10, 0));
        assert_eq!(a.sample(10, 1), b.sample(10, 1));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn invalid_fraction_panics() {
        UniformSampler::from_fraction(0.0, 16, SeedStream::new(1));
    }

    #[test]
    fn sample_live_draws_only_live_members() {
        let live = vec![2u32, 5, 9, 11, 40];
        let rng = SeedStream::new(8);
        let cohort = sample_live(&live, 3, &rng, 4);
        assert_eq!(cohort.len(), 3);
        assert!(cohort.windows(2).all(|w| w[0] < w[1]));
        assert!(cohort.iter().all(|c| live.contains(c)));
        // Small populations are taken whole.
        assert_eq!(sample_live(&live, 10, &rng, 4), vec![2, 5, 9, 11, 40]);
        // Pure in the rng: the draw is round-keyed, not call-order keyed.
        assert_eq!(cohort, sample_live(&live, 3, &rng, 4));
        // Different rounds eventually differ.
        let other: Vec<_> = (0..8).map(|r| sample_live(&live, 3, &rng, r)).collect();
        assert!(other.windows(2).any(|w| w[0] != w[1]));
    }
}
