//! Property-based tests for federated aggregation and server optimizers.

use photon_fedopt::{
    aggregate_deltas, delta_from, ClientSampler, ClientUpdate, FullParticipation, ServerOptKind,
    UniformSampler,
};
use photon_tensor::SeedStream;
use proptest::prelude::*;

proptest! {
    /// Aggregation is a convex combination: each coordinate of the result
    /// lies within the [min, max] of the client values.
    #[test]
    fn aggregation_is_convex(
        n_clients in 1usize..6,
        dim in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let updates: Vec<ClientUpdate> = (0..n_clients)
            .map(|_| {
                ClientUpdate::new(
                    (0..dim).map(|_| rng.next_normal()).collect(),
                    rng.next_f64() + 0.1,
                )
            })
            .collect();
        let avg = aggregate_deltas(&updates);
        for (j, &av) in avg.iter().enumerate().take(dim) {
            let lo = updates.iter().map(|u| u.delta[j]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|u| u.delta[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(av >= lo - 1e-4 && av <= hi + 1e-4);
        }
    }

    /// Identical client updates aggregate to themselves regardless of
    /// weights.
    #[test]
    fn identical_updates_are_a_fixed_point(
        dim in 1usize..16,
        n in 1usize..5,
        w in proptest::collection::vec(0.1f64..10.0, 5),
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let delta: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let updates: Vec<ClientUpdate> = (0..n)
            .map(|i| ClientUpdate::new(delta.clone(), w[i]))
            .collect();
        let avg = aggregate_deltas(&updates);
        for (a, d) in avg.iter().zip(&delta) {
            prop_assert!((a - d).abs() < 1e-5);
        }
    }

    /// FedAvg with server lr 1.0 moves the global model to the weighted
    /// client mean: global - avg_delta == mean(local).
    #[test]
    fn fedavg_recovers_parameter_mean(
        dim in 1usize..12,
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let global: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let locals: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_normal()).collect())
            .collect();
        let updates: Vec<ClientUpdate> = locals
            .iter()
            .map(|l| ClientUpdate::new(delta_from(&global, l), 1.0))
            .collect();
        let avg_delta = aggregate_deltas(&updates);
        let mut new_global = global.clone();
        ServerOptKind::FedAvg { lr: 1.0 }
            .build(dim)
            .apply(&mut new_global, &avg_delta, 0);
        for j in 0..dim {
            let mean: f32 = locals.iter().map(|l| l[j]).sum::<f32>() / n as f32;
            prop_assert!((new_global[j] - mean).abs() < 1e-4);
        }
    }

    /// All server optimizers leave the model unchanged on a zero delta
    /// from a fresh state.
    #[test]
    fn zero_delta_is_a_fixed_point(dim in 1usize..16, seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed);
        let global: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let zero = vec![0.0f32; dim];
        for kind in [
            ServerOptKind::FedAvg { lr: 1.0 },
            ServerOptKind::FedMom { lr: 1.0, momentum: 0.9 },
            ServerOptKind::FedAdam { lr: 0.01 },
            ServerOptKind::diloco_default(),
        ] {
            let mut opt = kind.build(dim);
            let mut g = global.clone();
            opt.apply(&mut g, &zero, 0);
            prop_assert_eq!(&g, &global, "{} moved on zero delta", opt.name());
        }
    }

    /// Samplers always return sorted, distinct, in-range cohorts of the
    /// advertised size.
    #[test]
    fn sampler_invariants(
        population in 1usize..40,
        k in 1usize..40,
        rounds in 1u64..20,
        seed in any::<u64>(),
    ) {
        let mut full = FullParticipation;
        let mut uniform = UniformSampler::new(k, SeedStream::new(seed));
        for round in 0..rounds {
            let f = full.sample(population, round);
            prop_assert_eq!(f.len(), population);
            let u = uniform.sample(population, round);
            prop_assert_eq!(u.len(), k.min(population));
            prop_assert!(u.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(u.iter().all(|&i| i < population));
        }
    }
}
