//! Property-based tests for federated aggregation and server optimizers.

use photon_fedopt::{
    aggregate_deltas, delta_from, median_aggregate, staleness_factor, staleness_weights,
    trimmed_mean_aggregate, BufferedUpdate, ClientSampler, ClientUpdate, FullParticipation,
    ServerOptKind, UniformSampler, UpdateBuffer,
};
use photon_tensor::SeedStream;
use proptest::prelude::*;

proptest! {
    /// Aggregation is a convex combination: each coordinate of the result
    /// lies within the [min, max] of the client values.
    #[test]
    fn aggregation_is_convex(
        n_clients in 1usize..6,
        dim in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let updates: Vec<ClientUpdate> = (0..n_clients)
            .map(|_| {
                ClientUpdate::new(
                    (0..dim).map(|_| rng.next_normal()).collect(),
                    rng.next_f64() + 0.1,
                )
                .unwrap()
            })
            .collect();
        let avg = aggregate_deltas(&updates);
        for (j, &av) in avg.iter().enumerate().take(dim) {
            let lo = updates.iter().map(|u| u.delta[j]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|u| u.delta[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(av >= lo - 1e-4 && av <= hi + 1e-4);
        }
    }

    /// Identical client updates aggregate to themselves regardless of
    /// weights.
    #[test]
    fn identical_updates_are_a_fixed_point(
        dim in 1usize..16,
        n in 1usize..5,
        w in proptest::collection::vec(0.1f64..10.0, 5),
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let delta: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let updates: Vec<ClientUpdate> = (0..n)
            .map(|i| ClientUpdate::new(delta.clone(), w[i]).unwrap())
            .collect();
        let avg = aggregate_deltas(&updates);
        for (a, d) in avg.iter().zip(&delta) {
            prop_assert!((a - d).abs() < 1e-5);
        }
    }

    /// FedAvg with server lr 1.0 moves the global model to the weighted
    /// client mean: global - avg_delta == mean(local).
    #[test]
    fn fedavg_recovers_parameter_mean(
        dim in 1usize..12,
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let global: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let locals: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_normal()).collect())
            .collect();
        let updates: Vec<ClientUpdate> = locals
            .iter()
            .map(|l| ClientUpdate::new(delta_from(&global, l), 1.0).unwrap())
            .collect();
        let avg_delta = aggregate_deltas(&updates);
        let mut new_global = global.clone();
        ServerOptKind::FedAvg { lr: 1.0 }
            .build(dim)
            .apply(&mut new_global, &avg_delta, 0);
        for j in 0..dim {
            let mean: f32 = locals.iter().map(|l| l[j]).sum::<f32>() / n as f32;
            prop_assert!((new_global[j] - mean).abs() < 1e-4);
        }
    }

    /// All server optimizers leave the model unchanged on a zero delta
    /// from a fresh state.
    #[test]
    fn zero_delta_is_a_fixed_point(dim in 1usize..16, seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed);
        let global: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let zero = vec![0.0f32; dim];
        for kind in [
            ServerOptKind::FedAvg { lr: 1.0 },
            ServerOptKind::FedMom { lr: 1.0, momentum: 0.9 },
            ServerOptKind::FedAdam { lr: 0.01 },
            ServerOptKind::diloco_default(),
        ] {
            let mut opt = kind.build(dim);
            let mut g = global.clone();
            opt.apply(&mut g, &zero, 0);
            prop_assert_eq!(&g, &global, "{} moved on zero delta", opt.name());
        }
    }

    /// Samplers always return sorted, distinct, in-range cohorts of the
    /// advertised size.
    #[test]
    fn sampler_invariants(
        population in 1usize..40,
        k in 1usize..40,
        rounds in 1u64..20,
        seed in any::<u64>(),
    ) {
        let mut full = FullParticipation;
        let mut uniform = UniformSampler::new(k, SeedStream::new(seed));
        for round in 0..rounds {
            let f = full.sample(population, round);
            prop_assert_eq!(f.len(), population);
            let u = uniform.sample(population, round);
            prop_assert_eq!(u.len(), k.min(population));
            prop_assert!(u.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(u.iter().all(|&i| i < population));
        }
    }

    /// Trimmed mean and median are permutation-invariant: any shuffle of
    /// the cohort produces a bit-identical aggregate.
    #[test]
    fn robust_rules_are_permutation_invariant(
        n in 2usize..8,
        dim in 1usize..12,
        trim in 0.0f64..0.49,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let mut updates: Vec<ClientUpdate> = (0..n)
            .map(|_| {
                ClientUpdate::new((0..dim).map(|_| rng.next_normal()).collect(), 1.0).unwrap()
            })
            .collect();
        let tm = trimmed_mean_aggregate(&updates, trim);
        let med = median_aggregate(&updates);
        // A seeded shuffle (reverse + rotate) exercises arbitrary orders.
        updates.reverse();
        let rot = rng.next_below(n);
        updates.rotate_left(rot);
        prop_assert_eq!(tm, trimmed_mean_aggregate(&updates, trim));
        prop_assert_eq!(med, median_aggregate(&updates));
    }

    /// With no outliers — identical client updates — every robust rule
    /// agrees with the plain mean exactly.
    #[test]
    fn robust_rules_agree_with_mean_on_homogeneous_cohorts(
        n in 1usize..7,
        dim in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let delta: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let updates: Vec<ClientUpdate> = (0..n)
            .map(|_| ClientUpdate::new(delta.clone(), 1.0).unwrap())
            .collect();
        let mean = aggregate_deltas(&updates);
        let tm = trimmed_mean_aggregate(&updates, 0.2);
        let med = median_aggregate(&updates);
        for j in 0..dim {
            prop_assert!((tm[j] - mean[j]).abs() < 1e-6);
            prop_assert!((med[j] - mean[j]).abs() < 1e-6);
        }
    }

    /// Under up to floor((n-1)/2) adversarial updates, every coordinate of
    /// the median stays within the inlier range; the trimmed mean does too
    /// when trimming covers the adversary count.
    #[test]
    fn robust_rules_bound_output_within_the_inlier_range(
        honest in 3usize..8,
        adversaries in 1usize..4,
        dim in 1usize..10,
        scale in 10.0f32..1e6,
        seed in any::<u64>(),
    ) {
        prop_assume!(adversaries <= (honest + adversaries - 1) / 2);
        let mut rng = SeedStream::new(seed);
        let inliers: Vec<Vec<f32>> = (0..honest)
            .map(|_| (0..dim).map(|_| rng.next_normal()).collect())
            .collect();
        let mut updates: Vec<ClientUpdate> = inliers
            .iter()
            .map(|d| ClientUpdate::new(d.clone(), 1.0).unwrap())
            .collect();
        for a in 0..adversaries {
            let sign = if a % 2 == 0 { 1.0 } else { -1.0 };
            updates.push(
                ClientUpdate::new(vec![sign * scale; dim], 1.0).unwrap(),
            );
        }
        let n = updates.len();
        let med = median_aggregate(&updates);
        let trim = adversaries as f64 / n as f64 + 1e-9;
        let tm = if trim < 0.5 { Some(trimmed_mean_aggregate(&updates, trim)) } else { None };
        for j in 0..dim {
            let lo = inliers.iter().map(|d| d[j]).fold(f32::INFINITY, f32::min);
            let hi = inliers.iter().map(|d| d[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(
                med[j] >= lo - 1e-4 && med[j] <= hi + 1e-4,
                "median coord {} = {} escaped inliers [{}, {}]", j, med[j], lo, hi
            );
            if let Some(ref tm) = tm {
                prop_assert!(
                    tm[j] >= lo - 1e-4 && tm[j] <= hi + 1e-4,
                    "trimmed coord {} = {} escaped inliers [{}, {}]", j, tm[j], lo, hi
                );
            }
        }
    }

    /// Staleness weights over a committed buffer are non-negative, sum to
    /// 1.0, and are monotone non-increasing in staleness when base weights
    /// are equal.
    #[test]
    fn staleness_weights_are_a_valid_decaying_distribution(
        n in 1usize..10,
        decay in 0.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let base: Vec<f64> = (0..n).map(|_| rng.next_f64() + 0.1).collect();
        let staleness: Vec<u64> = (0..n).map(|_| rng.next_below(20) as u64).collect();
        let w = staleness_weights(&base, &staleness, decay);
        prop_assert_eq!(w.len(), n);
        prop_assert!(w.iter().all(|&x| x >= 0.0 && x.is_finite()));
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // With equal base weights, more staleness never means more weight.
        let equal = staleness_weights(&vec![1.0; n], &staleness, decay);
        for i in 0..n {
            for j in 0..n {
                if staleness[i] <= staleness[j] {
                    prop_assert!(
                        equal[i] >= equal[j] - 1e-12,
                        "staleness {} got weight {} < staleness {} weight {}",
                        staleness[i], equal[i], staleness[j], equal[j]
                    );
                }
            }
        }
        // The factor itself is monotone non-increasing and 1.0 at zero.
        prop_assert_eq!(staleness_factor(0, decay), 1.0);
        for s in 0..19u64 {
            prop_assert!(staleness_factor(s + 1, decay) <= staleness_factor(s, decay));
        }
    }

    /// A buffered commit with zero staleness and full quorum is bitwise
    /// identical to the synchronous weighted mean of the same updates.
    #[test]
    fn zero_staleness_buffered_commit_is_bitwise_synchronous(
        n in 1usize..8,
        dim in 1usize..16,
        round in 0u64..100,
        decay in 0.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let mut buf = UpdateBuffer::new();
        let mut sync = Vec::new();
        for c in 0..n {
            let delta: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
            let weight = rng.next_f64() + 0.1;
            sync.push(ClientUpdate::new(delta.clone(), weight).unwrap());
            buf.push(BufferedUpdate {
                client_id: c as u32,
                origin_round: round,
                arrival_round: round,
                base_weight: weight,
                mean_loss: 1.0,
                delta,
            });
        }
        let batch = buf.commit(round, decay).unwrap();
        prop_assert_eq!(batch.stale, 0);
        prop_assert_eq!(batch.updates.len(), n);
        // Bitwise, not approximately: the staleness factor is exactly 1.0
        // at zero staleness, so the very same f64 weights reach the rule.
        prop_assert_eq!(aggregate_deltas(&batch.updates), aggregate_deltas(&sync));
    }
}
