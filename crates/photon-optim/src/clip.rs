/// Global L2 norm of a flat gradient buffer.
pub fn global_norm(grads: &[f32]) -> f32 {
    photon_tensor::ops::l2_norm(grads)
}

/// Clips gradients to a maximum global L2 norm (in place), returning the
/// pre-clip norm. This is the paper's client-side post-processing step
/// (Algorithm 1, L.28: "gradient clipping, compression, or differential
/// privacy noise injection").
///
/// # Panics
/// Panics if `max_norm` is not positive.
pub fn clip_global_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = global_norm(grads);
    if norm > max_norm {
        let scale = max_norm / norm;
        photon_tensor::ops::scale(scale, grads);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_gradients_untouched() {
        let mut g = vec![0.1f32, 0.2];
        let before = g.clone();
        let norm = clip_global_norm(&mut g, 1.0);
        assert_eq!(g, before);
        assert!((norm - (0.05f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn large_gradients_scaled_to_max_norm() {
        let mut g = vec![3.0f32, 4.0]; // norm 5
        let norm = clip_global_norm(&mut g, 1.0);
        assert_eq!(norm, 5.0);
        assert!((global_norm(&g) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((g[1] / g[0] - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn zero_max_norm_panics() {
        clip_global_norm(&mut [1.0], 0.0);
    }
}
