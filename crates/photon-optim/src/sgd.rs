use crate::Optimizer;
use serde::{Deserialize, Serialize};

/// SGD hyperparameters. The DiLoCo outer optimizer uses
/// `momentum = 0.9, nesterov = true` (paper Appendix A / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Whether to use the Nesterov variant.
    pub nesterov: bool,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            momentum: 0.0,
            nesterov: false,
            weight_decay: 0.0,
        }
    }
}

impl SgdConfig {
    /// DiLoCo's recommended outer-optimizer configuration:
    /// Nesterov momentum 0.9.
    pub fn diloco_outer() -> Self {
        SgdConfig {
            momentum: 0.9,
            nesterov: true,
            weight_decay: 0.0,
        }
    }
}

/// SGD with optional (Nesterov) momentum over a flat buffer.
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an SGD optimizer for `param_len` parameters.
    pub fn new(config: SgdConfig, param_len: usize) -> Self {
        Sgd {
            config,
            velocity: vec![0.0; param_len],
        }
    }

    /// The hyperparameter set.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.velocity.len(), "params length mismatch");
        assert_eq!(grads.len(), self.velocity.len(), "grads length mismatch");
        let c = self.config;
        for i in 0..params.len() {
            let g = grads[i] + c.weight_decay * params[i];
            if c.momentum == 0.0 {
                params[i] -= lr * g;
            } else {
                self.velocity[i] = c.momentum * self.velocity[i] + g;
                let update = if c.nesterov {
                    g + c.momentum * self.velocity[i]
                } else {
                    self.velocity[i]
                };
                params[i] -= lr * update;
            }
        }
    }

    fn reset_state(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }

    fn param_len(&self) -> usize {
        self.velocity.len()
    }

    fn state_bytes_per_param(&self) -> usize {
        if self.config.momentum == 0.0 {
            0
        } else {
            4
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_is_exact() {
        let mut opt = Sgd::new(SgdConfig::default(), 2);
        let mut p = vec![1.0f32, 2.0];
        opt.step(&mut p, &[0.5, -0.5], 0.1);
        assert_eq!(p, vec![0.95, 2.05]);
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        let mut plain = Sgd::new(SgdConfig::default(), 1);
        let mut mom = Sgd::new(
            SgdConfig {
                momentum: 0.9,
                ..SgdConfig::default()
            },
            1,
        );
        let mut p1 = vec![0.0f32];
        let mut p2 = vec![0.0f32];
        for _ in 0..10 {
            plain.step(&mut p1, &[1.0], 0.01);
            mom.step(&mut p2, &[1.0], 0.01);
        }
        assert!(p2[0] < p1[0], "momentum should move further: {p1:?} {p2:?}");
    }

    #[test]
    fn nesterov_differs_from_heavy_ball() {
        let mut hb = Sgd::new(
            SgdConfig {
                momentum: 0.9,
                nesterov: false,
                weight_decay: 0.0,
            },
            1,
        );
        let mut nag = Sgd::new(SgdConfig::diloco_outer(), 1);
        let mut p1 = vec![0.0f32];
        let mut p2 = vec![0.0f32];
        for _ in 0..3 {
            hb.step(&mut p1, &[1.0], 0.1);
            nag.step(&mut p2, &[1.0], 0.1);
        }
        assert_ne!(p1, p2);
        assert!(p2[0] < p1[0], "nesterov looks ahead");
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Sgd::new(SgdConfig::diloco_outer(), 1);
        let mut x = vec![4.0f32];
        for _ in 0..200 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g, 0.02);
        }
        assert!(x[0].abs() < 0.05, "x={}", x[0]);
    }

    #[test]
    fn reset_clears_velocity() {
        let mut opt = Sgd::new(SgdConfig::diloco_outer(), 1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0], 0.1);
        opt.reset_state();
        let mut q = vec![0.0f32];
        opt.step(&mut q, &[1.0], 0.1);
        // First-step update with fresh state: lr * (g + m*g) = 0.1 * 1.9.
        assert!((q[0] + 0.19).abs() < 1e-6);
    }

    #[test]
    fn state_bytes_depend_on_momentum() {
        assert_eq!(Sgd::new(SgdConfig::default(), 1).state_bytes_per_param(), 0);
        assert_eq!(
            Sgd::new(SgdConfig::diloco_outer(), 1).state_bytes_per_param(),
            4
        );
    }
}
