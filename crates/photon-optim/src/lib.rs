//! # photon-optim
//!
//! Local (client-side) optimization for Photon-RS: AdamW and SGD with
//! Nesterov momentum, cosine learning-rate schedules with linear warm-up,
//! and global-norm gradient clipping — the full client training recipe of
//! the paper (AdamW, cosine schedule, warm-up; Appendix A).
//!
//! Optimizers operate on flat parameter/gradient buffers, matching
//! `photon-nn`'s single-buffer layout, so one `step` call updates an entire
//! model.
//!
//! ```
//! use photon_optim::{AdamW, AdamWConfig, Optimizer};
//! let mut opt = AdamW::new(AdamWConfig::default(), 4);
//! let mut params = vec![1.0f32; 4];
//! let grads = vec![0.5f32; 4];
//! opt.step(&mut params, &grads, 1e-2);
//! assert!(params.iter().all(|&p| p < 1.0));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod adamw;
mod clip;
mod scaling;
mod schedule;
mod sgd;

pub use adamw::{AdamW, AdamWConfig};
pub use clip::{clip_global_norm, global_norm};
pub use scaling::LrScalingRule;
pub use schedule::{LrSchedule, ScheduleKind};
pub use sgd::{Sgd, SgdConfig};

/// A stateful first-order optimizer over flat parameter buffers.
///
/// The learning rate is passed per step (schedules live outside the
/// optimizer), and [`Optimizer::reset_state`] clears momenta — Photon's
/// stateless-local-optimization mode resets client optimizer state every
/// round (paper Appendix A).
pub trait Optimizer: Send {
    /// Applies one update: `params <- params - lr * update(grads)`.
    ///
    /// # Panics
    /// Implementations panic if `params` and `grads` lengths differ from
    /// the optimizer's state size.
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32);

    /// Clears all internal state (moments, step counters).
    fn reset_state(&mut self);

    /// Number of parameters this optimizer was built for.
    fn param_len(&self) -> usize;

    /// Bytes of optimizer state per parameter (used by the VRAM model:
    /// 8 for AdamW's two f32 moments, 4 for SGD momentum, 0 for plain SGD).
    fn state_bytes_per_param(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_is_object_safe() {
        let opts: Vec<Box<dyn Optimizer>> = vec![
            Box::new(AdamW::new(AdamWConfig::default(), 2)),
            Box::new(Sgd::new(SgdConfig::default(), 2)),
        ];
        for mut opt in opts {
            let mut p = vec![1.0f32, -1.0];
            opt.step(&mut p, &[1.0, -1.0], 0.1);
            assert!(p[0] < 1.0 && p[1] > -1.0);
        }
    }
}
