//! Learning-rate-vs-batch-size scaling rules.
//!
//! Appendix C.1 reports that "neither square root nor linear learning rate
//! scaling sufficiently stabilize centralized training across varying
//! batch sizes" — which motivates Photon's alternative of keeping the
//! small-batch learning rate and stretching the schedule instead. This
//! module provides those classic rules so the ablation benches can test
//! the claim.

use serde::{Deserialize, Serialize};

/// How to adapt a learning rate when the batch size changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LrScalingRule {
    /// Keep the reference learning rate unchanged.
    None,
    /// Linear scaling (Goyal et al.): `lr ∝ batch`.
    Linear,
    /// Square-root scaling (Krizhevsky / random-matrix analyses):
    /// `lr ∝ sqrt(batch)`.
    Sqrt,
}

impl LrScalingRule {
    /// All rules, for sweeps.
    pub fn all() -> [LrScalingRule; 3] {
        [
            LrScalingRule::None,
            LrScalingRule::Linear,
            LrScalingRule::Sqrt,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            LrScalingRule::None => "none",
            LrScalingRule::Linear => "linear",
            LrScalingRule::Sqrt => "sqrt",
        }
    }

    /// Learning rate for `batch`, given a reference `(base_lr, base_batch)`.
    ///
    /// # Panics
    /// Panics if either batch size is zero or `base_lr` is not positive.
    pub fn lr_for_batch(&self, base_lr: f32, base_batch: usize, batch: usize) -> f32 {
        assert!(base_batch > 0 && batch > 0, "batch sizes must be positive");
        assert!(base_lr > 0.0, "base_lr must be positive");
        let ratio = batch as f64 / base_batch as f64;
        match self {
            LrScalingRule::None => base_lr,
            LrScalingRule::Linear => (base_lr as f64 * ratio) as f32,
            LrScalingRule::Sqrt => (base_lr as f64 * ratio.sqrt()) as f32,
        }
    }
}

impl std::fmt::Display for LrScalingRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_at_reference_batch_are_identity() {
        for rule in LrScalingRule::all() {
            assert_eq!(rule.lr_for_batch(1e-3, 32, 32), 1e-3);
        }
    }

    #[test]
    fn linear_and_sqrt_scale_as_named() {
        assert!((LrScalingRule::Linear.lr_for_batch(1e-3, 32, 128) - 4e-3).abs() < 1e-9);
        assert!((LrScalingRule::Sqrt.lr_for_batch(1e-3, 32, 128) - 2e-3).abs() < 1e-9);
        assert_eq!(LrScalingRule::None.lr_for_batch(1e-3, 32, 128), 1e-3);
    }

    #[test]
    fn downscaling_shrinks_lr() {
        // The Appendix C.1 observation: small centralized batches need
        // linearly reduced learning rates to avoid divergence.
        let lr = LrScalingRule::Linear.lr_for_batch(6e-4, 256, 32);
        assert!((lr - 7.5e-5).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(LrScalingRule::Sqrt.to_string(), "sqrt");
    }

    #[test]
    #[should_panic(expected = "batch sizes must be positive")]
    fn zero_batch_panics() {
        LrScalingRule::None.lr_for_batch(1e-3, 0, 8);
    }
}
