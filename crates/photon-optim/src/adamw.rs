use crate::Optimizer;
use serde::{Deserialize, Serialize};

/// AdamW hyperparameters. Defaults follow the paper's Table 4:
/// `(β1, β2) = (0.9, 0.95)`, with decoupled weight decay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamWConfig {
    /// First-moment decay β1.
    pub beta1: f32,
    /// Second-moment decay β2.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// AdamW (Loshchilov & Hutter) over a flat parameter buffer.
///
/// Maintains first/second moment vectors and a step counter for bias
/// correction. `reset_state` supports Photon's stateless local optimization
/// (moments are *not* communicated between rounds; paper Appendix C.1).
#[derive(Debug, Clone)]
pub struct AdamW {
    config: AdamWConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamW {
    /// Creates an AdamW optimizer for `param_len` parameters.
    pub fn new(config: AdamWConfig, param_len: usize) -> Self {
        AdamW {
            config,
            m: vec![0.0; param_len],
            v: vec![0.0; param_len],
            t: 0,
        }
    }

    /// The hyperparameter set.
    pub fn config(&self) -> &AdamWConfig {
        &self.config
    }

    /// Current step count (for bias correction).
    pub fn step_count(&self) -> u64 {
        self.t
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "params length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grads length mismatch");
        self.t += 1;
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * g;
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= lr * (m_hat / (v_hat.sqrt() + c.eps) + c.weight_decay * params[i]);
        }
    }

    fn reset_state(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    fn param_len(&self) -> usize {
        self.m.len()
    }

    fn state_bytes_per_param(&self) -> usize {
        8 // two f32 moments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = x^2 must converge to ~0.
    #[test]
    fn converges_on_quadratic() {
        let mut opt = AdamW::new(AdamWConfig::default(), 1);
        let mut x = vec![5.0f32];
        for _ in 0..500 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g, 0.05);
        }
        assert!(x[0].abs() < 0.05, "x={}", x[0]);
    }

    #[test]
    fn first_step_is_signed_unit_step() {
        // With bias correction, the first Adam update is ~lr * sign(g).
        let mut opt = AdamW::new(AdamWConfig::default(), 2);
        let mut p = vec![0.0f32, 0.0];
        opt.step(&mut p, &[3.0, -0.001], 0.1);
        assert!((p[0] + 0.1).abs() < 1e-3, "p0={}", p[0]);
        assert!((p[1] - 0.1).abs() < 1e-3, "p1={}", p[1]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let cfg = AdamWConfig {
            weight_decay: 0.5,
            ..AdamWConfig::default()
        };
        let mut opt = AdamW::new(cfg, 1);
        let mut p = vec![10.0f32];
        opt.step(&mut p, &[0.0], 0.1);
        // Zero gradient: only decay applies -> p = 10 - 0.1*0.5*10 = 9.5.
        assert!((p[0] - 9.5).abs() < 1e-4);
    }

    #[test]
    fn reset_state_clears_moments() {
        let mut opt = AdamW::new(AdamWConfig::default(), 1);
        let mut p = vec![1.0f32];
        opt.step(&mut p, &[1.0], 0.1);
        assert_eq!(opt.step_count(), 1);
        opt.reset_state();
        assert_eq!(opt.step_count(), 0);
        // After a reset the next step behaves like the first one.
        let mut q = vec![0.0f32];
        opt.step(&mut q, &[5.0], 0.1);
        assert!((q[0] + 0.1).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_lengths() {
        let mut opt = AdamW::new(AdamWConfig::default(), 2);
        let mut p = vec![0.0f32; 3];
        opt.step(&mut p, &[0.0; 3], 0.1);
    }

    #[test]
    fn state_bytes() {
        assert_eq!(
            AdamW::new(AdamWConfig::default(), 1).state_bytes_per_param(),
            8
        );
    }
}
