use serde::{Deserialize, Serialize};

/// The shape of a learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Constant at `max_lr` after warm-up.
    Constant,
    /// Cosine decay from `max_lr` to `min_lr` over the decay period —
    /// the paper's schedule (Appendix A).
    Cosine,
    /// Linear decay from `max_lr` to `min_lr`.
    Linear,
}

/// A learning-rate schedule with linear warm-up.
///
/// The paper's key federated recipe (§3, Appendix C.1) extends the cosine
/// decay period when small client batch sizes are used: if centralized
/// training uses period `T` at batch `B`, federated clients use
/// `T * B / B_small`. [`LrSchedule::stretch_for_batch`] implements exactly
/// that transformation.
///
/// ```
/// use photon_optim::{LrSchedule, ScheduleKind};
/// let s = LrSchedule::new(ScheduleKind::Cosine, 6e-4, 6e-5, 100, 1000);
/// assert!(s.lr_at(0) < s.lr_at(100));        // warm-up
/// assert_eq!(s.lr_at(100), 6e-4);            // peak
/// assert!((s.lr_at(1000) - 6e-5).abs() < 1e-9); // floor
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    kind: ScheduleKind,
    max_lr: f32,
    min_lr: f32,
    warmup_steps: u64,
    decay_steps: u64,
}

impl LrSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    /// Panics if `max_lr < min_lr`, either is negative, or
    /// `decay_steps <= warmup_steps`.
    pub fn new(
        kind: ScheduleKind,
        max_lr: f32,
        min_lr: f32,
        warmup_steps: u64,
        decay_steps: u64,
    ) -> Self {
        assert!(max_lr >= min_lr && min_lr >= 0.0, "invalid lr bounds");
        assert!(
            decay_steps > warmup_steps,
            "decay_steps must exceed warmup_steps"
        );
        LrSchedule {
            kind,
            max_lr,
            min_lr,
            warmup_steps,
            decay_steps,
        }
    }

    /// The paper's cosine recipe: warm-up to `max_lr`, decay to
    /// `max_lr / 10` (α = 0.1 in Table 5).
    pub fn paper_cosine(max_lr: f32, warmup_steps: u64, decay_steps: u64) -> Self {
        LrSchedule::new(
            ScheduleKind::Cosine,
            max_lr,
            max_lr * 0.1,
            warmup_steps,
            decay_steps,
        )
    }

    /// Learning rate at a global step.
    pub fn lr_at(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            return self.max_lr * (step as f32 + 1.0) / (self.warmup_steps as f32);
        }
        let progress = ((step - self.warmup_steps) as f64
            / (self.decay_steps - self.warmup_steps) as f64)
            .min(1.0);
        match self.kind {
            ScheduleKind::Constant => self.max_lr,
            ScheduleKind::Cosine => {
                let cos = 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
                (self.min_lr as f64 + (self.max_lr - self.min_lr) as f64 * cos) as f32
            }
            ScheduleKind::Linear => {
                (self.max_lr as f64 - (self.max_lr - self.min_lr) as f64 * progress) as f32
            }
        }
    }

    /// Stretches the decay period for a smaller batch size:
    /// `T' = T * cent_batch / local_batch` (§3, "Exploiting Small Batches
    /// and High Learning Rates"). Warm-up stretches proportionally.
    ///
    /// # Panics
    /// Panics if either batch size is zero.
    pub fn stretch_for_batch(&self, cent_batch: usize, local_batch: usize) -> Self {
        assert!(
            cent_batch > 0 && local_batch > 0,
            "batch sizes must be positive"
        );
        let factor = cent_batch as f64 / local_batch as f64;
        let decay = ((self.decay_steps as f64) * factor).round() as u64;
        let warmup = ((self.warmup_steps as f64) * factor).round() as u64;
        LrSchedule {
            kind: self.kind,
            max_lr: self.max_lr,
            min_lr: self.min_lr,
            warmup_steps: warmup,
            decay_steps: decay.max(warmup + 1),
        }
    }

    /// Peak learning rate.
    pub fn max_lr(&self) -> f32 {
        self.max_lr
    }

    /// Total decay period in steps.
    pub fn decay_steps(&self) -> u64 {
        self.decay_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_is_linear_and_reaches_peak() {
        let s = LrSchedule::new(ScheduleKind::Cosine, 1.0, 0.1, 10, 100);
        assert!((s.lr_at(4) - 0.5).abs() < 1e-6);
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6);
        assert_eq!(s.lr_at(10), 1.0);
    }

    #[test]
    fn cosine_is_monotone_decreasing_after_warmup() {
        let s = LrSchedule::paper_cosine(6e-4, 10, 200);
        let mut prev = s.lr_at(10);
        for step in 11..=200 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-9);
            prev = lr;
        }
        assert!((s.lr_at(200) - 6e-5).abs() < 1e-8);
        assert_eq!(s.lr_at(1000), s.lr_at(200)); // clamps at floor
    }

    #[test]
    fn linear_midpoint() {
        let s = LrSchedule::new(ScheduleKind::Linear, 1.0, 0.0, 0, 100);
        // Progress is computed over decay steps; at step 50, halfway.
        assert!((s.lr_at(50) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn constant_stays_at_peak() {
        let s = LrSchedule::new(ScheduleKind::Constant, 0.3, 0.0, 5, 50);
        assert_eq!(s.lr_at(20), 0.3);
        assert_eq!(s.lr_at(5000), 0.3);
    }

    #[test]
    fn stretch_matches_paper_formula() {
        // Centralized: T = 5120 at B = 256. Local batch 32 => T = 40960
        // (exactly the paper's 125M row in Table 5).
        let cent = LrSchedule::paper_cosine(6e-4, 0, 5120);
        let fed = cent.stretch_for_batch(256, 32);
        assert_eq!(fed.decay_steps(), 40_960);
        assert_eq!(fed.max_lr(), cent.max_lr());
    }

    #[test]
    #[should_panic(expected = "decay_steps must exceed")]
    fn invalid_periods_panic() {
        LrSchedule::new(ScheduleKind::Cosine, 1.0, 0.1, 100, 100);
    }
}
