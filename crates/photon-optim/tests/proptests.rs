//! Property-based tests for optimizers, schedules and clipping.

use photon_optim::{
    clip_global_norm, global_norm, AdamW, AdamWConfig, LrSchedule, Optimizer, ScheduleKind, Sgd,
    SgdConfig,
};
use proptest::prelude::*;

proptest! {
    /// AdamW descends any positive-definite quadratic from any start.
    #[test]
    fn adamw_descends_quadratics(
        start in proptest::collection::vec(-5.0f32..5.0, 1..6),
        scale in 0.1f32..4.0,
    ) {
        let mut opt = AdamW::new(AdamWConfig::default(), start.len());
        let mut x = start.clone();
        let f = |x: &[f32]| -> f32 { x.iter().map(|v| scale * v * v).sum() };
        let before = f(&x);
        for _ in 0..200 {
            let g: Vec<f32> = x.iter().map(|v| 2.0 * scale * v).collect();
            opt.step(&mut x, &g, 0.03);
        }
        prop_assert!(f(&x) < before.max(1e-3), "{before} -> {}", f(&x));
    }

    /// SGD with zero gradient and no decay leaves parameters unchanged.
    #[test]
    fn sgd_zero_gradient_is_identity(
        params in proptest::collection::vec(-10.0f32..10.0, 1..16),
        momentum in 0.0f32..0.99,
        nesterov in any::<bool>(),
    ) {
        let mut opt = Sgd::new(
            SgdConfig { momentum, nesterov, weight_decay: 0.0 },
            params.len(),
        );
        let mut x = params.clone();
        let zeros = vec![0.0f32; params.len()];
        for _ in 0..5 {
            opt.step(&mut x, &zeros, 0.1);
        }
        prop_assert_eq!(x, params);
    }

    /// Clipping never increases the norm, never changes direction, and is
    /// idempotent.
    #[test]
    fn clip_properties(
        grads in proptest::collection::vec(-100.0f32..100.0, 1..32),
        max_norm in 0.01f32..50.0,
    ) {
        let mut g = grads.clone();
        let before = global_norm(&g);
        clip_global_norm(&mut g, max_norm);
        let after = global_norm(&g);
        prop_assert!(after <= before + 1e-4);
        prop_assert!(after <= max_norm * 1.001);
        // Direction preserved: g is a non-negative multiple of grads.
        if before > 1e-6 {
            let ratio = after / before;
            for (a, b) in g.iter().zip(&grads) {
                prop_assert!((a - b * ratio).abs() < 1e-3);
            }
        }
        // Idempotent up to float rounding (a second clip may rescale by a
        // factor within one ulp of 1.0).
        let once = g.clone();
        clip_global_norm(&mut g, max_norm);
        for (a, b) in g.iter().zip(&once) {
            prop_assert!((a - b).abs() <= 1e-5 + b.abs() * 1e-5);
        }
    }

    /// Schedules stay within [min_lr, max_lr] at every step and decay
    /// monotonically after warm-up (cosine & linear).
    #[test]
    fn schedule_bounds_and_monotonicity(
        max_lr in 1e-5f32..1.0,
        ratio in 0.0f32..1.0,
        warmup in 0u64..50,
        extra in 1u64..500,
        kind_pick in 0usize..3,
    ) {
        let min_lr = max_lr * ratio;
        let kind = [ScheduleKind::Constant, ScheduleKind::Cosine, ScheduleKind::Linear][kind_pick];
        let decay = warmup + extra;
        let s = LrSchedule::new(kind, max_lr, min_lr, warmup, decay);
        let mut prev = f32::INFINITY;
        for step in 0..decay + 20 {
            let lr = s.lr_at(step);
            prop_assert!(lr <= max_lr * 1.0001 && lr >= 0.0);
            if step > warmup && kind != ScheduleKind::Constant {
                prop_assert!(lr <= prev + 1e-6, "step {step}: {lr} > {prev}");
            }
            if step >= warmup {
                prop_assert!(lr >= min_lr * 0.999, "step {step}: {lr} < {min_lr}");
            }
            prev = lr;
        }
    }

    /// The small-batch stretch scales the decay period by cent/local.
    #[test]
    fn stretch_scales_period(
        decay in 10u64..10_000,
        cent in 1usize..512,
        local in 1usize..512,
    ) {
        let s = LrSchedule::new(ScheduleKind::Cosine, 1e-3, 1e-4, 0, decay);
        let stretched = s.stretch_for_batch(cent, local);
        let expect = (decay as f64 * cent as f64 / local as f64).round() as u64;
        prop_assert_eq!(stretched.decay_steps(), expect.max(1));
    }
}
