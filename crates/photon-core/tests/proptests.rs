//! Property-based tests for the federation engine's configuration and
//! round bookkeeping.

use photon_core::{CohortSpec, FaultSpec, FederationConfig, RoundRecord, TrainingHistory};
use photon_fedopt::{AggregationKind, ServerOptKind};
use photon_nn::ModelConfig;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = FederationConfig> {
    (
        1usize..12,
        1u64..64,
        1usize..16,
        any::<u64>(),
        0usize..4,
        any::<bool>(),
    )
        .prop_map(
            |(population, local_steps, local_batch, seed, opt_pick, partial)| {
                let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), population);
                cfg.local_steps = local_steps;
                cfg.local_batch = local_batch;
                cfg.seed = seed;
                cfg.allow_partial_results = partial;
                cfg.server_opt = [
                    ServerOptKind::photon_default(),
                    ServerOptKind::FedMom {
                        lr: 1.0,
                        momentum: 0.9,
                    },
                    ServerOptKind::FedAdam { lr: 0.01 },
                    ServerOptKind::diloco_default(),
                ][opt_pick];
                cfg
            },
        )
}

proptest! {
    /// Any generated configuration validates, round-trips through JSON,
    /// and keeps its derived quantities consistent.
    #[test]
    fn configs_roundtrip_and_stay_consistent(cfg in arb_config()) {
        cfg.validate().unwrap();
        prop_assert_eq!(cfg.global_batch(), cfg.cohort_size() * cfg.local_batch);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FederationConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, cfg);
    }

    /// Sampled cohorts never exceed the population.
    #[test]
    fn cohort_size_is_bounded(population in 1usize..64, k in 1usize..128) {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), population);
        cfg.cohort = CohortSpec::Sample { k };
        prop_assert!(cfg.cohort_size() <= population);
        prop_assert!(cfg.cohort_size() >= 1);
    }

    /// TIES aggregation config serializes inside the federation config.
    #[test]
    fn aggregation_kind_roundtrips(density in 0.01f64..1.0) {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 2);
        cfg.aggregation = AggregationKind::Ties { density };
        let back: FederationConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        prop_assert_eq!(back.aggregation, cfg.aggregation);
    }

    /// Fault plans are a pure function of the spec: regenerating one —
    /// under any compute-thread budget, queried in any order — yields the
    /// identical schedule. This is what makes chaos runs replayable.
    #[test]
    fn fault_plans_replay_identically(
        p_crash in 0.0f64..0.3,
        p_straggle in 0.0f64..0.3,
        p_corrupt in 0.0f64..0.3,
        p_agg in 0.0f64..0.5,
        seed in any::<u64>(),
        population in 1usize..32,
        rounds in 1u64..24,
        threads in 1usize..5,
    ) {
        let spec = FaultSpec {
            p_crash,
            p_straggle,
            straggle_ms_max: 100,
            p_corrupt,
            corrupt_attempts_max: 3,
            p_agg_crash: p_agg,
            ..FaultSpec::none(seed)
        };
        let baseline = spec.plan(population, rounds);
        let replay =
            photon_tensor::ops::pool::with_parallelism(threads, || spec.plan(population, rounds));
        prop_assert_eq!(&baseline, &replay);
        // Point queries in reverse order agree with the plan's map.
        for round in (0..rounds).rev() {
            for client in (0..population as u32).rev() {
                prop_assert_eq!(
                    baseline.client_fault(round, client),
                    replay.client_fault(round, client)
                );
            }
            prop_assert_eq!(
                baseline.aggregator_crashes_after(round),
                replay.aggregator_crashes_after(round)
            );
        }
        // A fault never lands outside the scheduled horizon.
        prop_assert!(baseline.client_fault(rounds, 0).is_none());
        prop_assert!(baseline.client_fault(0, population as u32).is_none());
    }

    /// History target-finding agrees with a straightforward scan, for any
    /// perplexity trajectory.
    #[test]
    fn rounds_to_target_matches_linear_scan(
        ppls in proptest::collection::vec(proptest::option::of(1.0f64..100.0), 1..30),
        target in 1.0f64..100.0,
    ) {
        let mut history = TrainingHistory::new();
        for (i, ppl) in ppls.iter().enumerate() {
            history.push(RoundRecord {
                round: i as u64,
                cohort: vec![0],
                dropouts: 0,
                stragglers: 0,
                retransmits: 0,
                mean_client_loss: 1.0,
                pseudo_grad_norm: 1.0,
                wire_bytes: 1,
                eval_ppl: *ppl,
                guard_rejected: 0,
                guard_clipped: 0,
                quarantined: 0,
                neutralized: false,
                joined: 0,
                departed: 0,
                lease_expired: 0,
                rejoined: 0,
                buffered: 0,
                commit_deferred: false,
                degraded: false,
                unreachable: 0,
                effective_deadline_ms: None,
            });
        }
        let expected = ppls
            .iter()
            .position(|p| p.is_some_and(|p| p <= target))
            .map(|i| i as u64 + 1);
        prop_assert_eq!(history.rounds_to_target(target), expected);
        // best <= every evaluated value
        if let Some(best) = history.best_ppl() {
            for p in ppls.iter().flatten() {
                prop_assert!(best <= *p + 1e-12);
            }
        }
    }
}
