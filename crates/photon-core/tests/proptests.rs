//! Property-based tests for the federation engine's configuration and
//! round bookkeeping.

use photon_core::{CohortSpec, FaultSpec, FederationConfig, RoundRecord, TrainingHistory};
use photon_fedopt::{AggregationKind, ServerOptKind};
use photon_nn::ModelConfig;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = FederationConfig> {
    (
        1usize..12,
        1u64..64,
        1usize..16,
        any::<u64>(),
        0usize..4,
        any::<bool>(),
    )
        .prop_map(
            |(population, local_steps, local_batch, seed, opt_pick, partial)| {
                let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), population);
                cfg.local_steps = local_steps;
                cfg.local_batch = local_batch;
                cfg.seed = seed;
                cfg.allow_partial_results = partial;
                cfg.server_opt = [
                    ServerOptKind::photon_default(),
                    ServerOptKind::FedMom {
                        lr: 1.0,
                        momentum: 0.9,
                    },
                    ServerOptKind::FedAdam { lr: 0.01 },
                    ServerOptKind::diloco_default(),
                ][opt_pick];
                cfg
            },
        )
}

proptest! {
    /// Any generated configuration validates, round-trips through JSON,
    /// and keeps its derived quantities consistent.
    #[test]
    fn configs_roundtrip_and_stay_consistent(cfg in arb_config()) {
        cfg.validate().unwrap();
        prop_assert_eq!(cfg.global_batch(), cfg.cohort_size() * cfg.local_batch);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FederationConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, cfg);
    }

    /// Sampled cohorts never exceed the population.
    #[test]
    fn cohort_size_is_bounded(population in 1usize..64, k in 1usize..128) {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), population);
        cfg.cohort = CohortSpec::Sample { k };
        prop_assert!(cfg.cohort_size() <= population);
        prop_assert!(cfg.cohort_size() >= 1);
    }

    /// TIES aggregation config serializes inside the federation config.
    #[test]
    fn aggregation_kind_roundtrips(density in 0.01f64..1.0) {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 2);
        cfg.aggregation = AggregationKind::Ties { density };
        let back: FederationConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        prop_assert_eq!(back.aggregation, cfg.aggregation);
    }

    /// Fault plans are a pure function of the spec: regenerating one —
    /// under any compute-thread budget, queried in any order — yields the
    /// identical schedule. This is what makes chaos runs replayable.
    #[test]
    fn fault_plans_replay_identically(
        p_crash in 0.0f64..0.3,
        p_straggle in 0.0f64..0.3,
        p_corrupt in 0.0f64..0.3,
        p_agg in 0.0f64..0.5,
        seed in any::<u64>(),
        population in 1usize..32,
        rounds in 1u64..24,
        threads in 1usize..5,
    ) {
        let spec = FaultSpec {
            p_crash,
            p_straggle,
            straggle_ms_max: 100,
            p_corrupt,
            corrupt_attempts_max: 3,
            p_agg_crash: p_agg,
            ..FaultSpec::none(seed)
        };
        let baseline = spec.plan(population, rounds);
        let replay =
            photon_tensor::ops::pool::with_parallelism(threads, || spec.plan(population, rounds));
        prop_assert_eq!(&baseline, &replay);
        // Point queries in reverse order agree with the plan's map.
        for round in (0..rounds).rev() {
            for client in (0..population as u32).rev() {
                prop_assert_eq!(
                    baseline.client_fault(round, client),
                    replay.client_fault(round, client)
                );
            }
            prop_assert_eq!(
                baseline.aggregator_crashes_after(round),
                replay.aggregator_crashes_after(round)
            );
        }
        // A fault never lands outside the scheduled horizon.
        prop_assert!(baseline.client_fault(rounds, 0).is_none());
        prop_assert!(baseline.client_fault(0, population as u32).is_none());
    }

    /// History target-finding agrees with a straightforward scan, for any
    /// perplexity trajectory.
    #[test]
    fn rounds_to_target_matches_linear_scan(
        ppls in proptest::collection::vec(proptest::option::of(1.0f64..100.0), 1..30),
        target in 1.0f64..100.0,
    ) {
        let mut history = TrainingHistory::new();
        for (i, ppl) in ppls.iter().enumerate() {
            history.push(RoundRecord {
                round: i as u64,
                cohort: vec![0],
                dropouts: 0,
                stragglers: 0,
                retransmits: 0,
                mean_client_loss: 1.0,
                pseudo_grad_norm: 1.0,
                wire_bytes: 1,
                eval_ppl: *ppl,
                guard_rejected: 0,
                guard_clipped: 0,
                quarantined: 0,
                neutralized: false,
                joined: 0,
                departed: 0,
                lease_expired: 0,
                rejoined: 0,
                buffered: 0,
                commit_deferred: false,
                degraded: false,
                unreachable: 0,
                effective_deadline_ms: None,
                shards: 0,
                shard_degraded: 0,
                shard_crashes: 0,
                shard_hangs: 0,
                reparented: 0,
                peak_resident: 0,
            });
        }
        let expected = ppls
            .iter()
            .position(|p| p.is_some_and(|p| p <= target))
            .map(|i| i as u64 + 1);
        prop_assert_eq!(history.rounds_to_target(target), expected);
        // best <= every evaluated value
        if let Some(best) = history.best_ppl() {
            for p in ppls.iter().flatten() {
                prop_assert!(best <= *p + 1e-12);
            }
        }
    }
}

// ---- Hierarchical aggregation properties -------------------------------

use photon_core::{HierarchyConfig, ShardTree};
use photon_fedopt::{canonical_fold, BufferedUpdate, ClientUpdate, UpdateBuffer};

/// A pending buffer entry with a unique `(origin_round, client_id)` key.
fn arb_entries() -> impl Strategy<Value = Vec<BufferedUpdate>> {
    (1usize..12, 2usize..10).prop_flat_map(|(n, dim)| {
        proptest::collection::vec(
            (
                0u64..4,
                0.1f64..5.0,
                proptest::collection::vec(-10.0f32..10.0, dim),
            ),
            n,
        )
        .prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (origin, weight, delta))| BufferedUpdate {
                    client_id: i as u32,
                    origin_round: origin,
                    arrival_round: origin,
                    base_weight: weight,
                    mean_loss: 1.0,
                    delta,
                })
                .collect()
        })
    })
}

proptest! {
    /// The streaming memory-bounded commit is bitwise identical to the
    /// batch commit's canonical fold, for ANY permutation of arrival
    /// order (as long as the residency bound admits every update).
    #[test]
    fn streaming_commit_matches_batch_commit_bitwise(
        entries in arb_entries().prop_shuffle(),
        decay in 0.0f64..2.0,
    ) {
        let n = entries.len();
        let round = 4u64; // every entry has arrived by now
        let mut batch_buf = UpdateBuffer::from_entries(entries.clone());
        let mut stream_buf = UpdateBuffer::from_entries(entries);
        let batch = batch_buf.commit(round, decay).expect("entries pending");
        let (expect_delta, expect_weight) =
            canonical_fold(&batch.updates).expect("non-empty batch");
        let commit = stream_buf
            .commit_streaming(round, decay, n + 1)
            .expect("entries pending");
        prop_assert!(commit.peak_resident <= n + 1);
        prop_assert_eq!(commit.weight.to_bits(), expect_weight.to_bits());
        prop_assert_eq!(commit.merged.len(), expect_delta.len());
        for (i, (a, b)) in commit.merged.iter().zip(&expect_delta).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "coordinate {} differs", i);
        }
    }

    /// On a homogeneous cohort (every client reports the same update with
    /// the same weight), the two-level shard reduce is bitwise identical
    /// to the flat mean — dead shards and re-parenting included, since a
    /// mean of identical vectors is that vector at every tree level.
    #[test]
    fn shard_tree_reduce_matches_flat_mean_when_homogeneous(
        shards in 2usize..8,
        seed in any::<u64>(),
        cohort_n in 1usize..64,
        delta in proptest::collection::vec(-5.0f32..5.0, 2..12),
        dead_picks in proptest::collection::vec(any::<u32>(), 0..3),
    ) {
        let cfg = HierarchyConfig { shards, ..HierarchyConfig::default() };
        let mut tree = ShardTree::new(cfg, seed);
        // Kill a strict subset of shards so every client still routes.
        for pick in dead_picks {
            if tree.live_count() > 1 {
                tree.mark_crashed(pick % shards as u32);
            }
        }
        let cohort: Vec<u32> = (0..cohort_n as u32).collect();
        let part = tree.partition(&cohort);
        prop_assert!(part.unrouted.is_empty());

        let update = |_: u32| ClientUpdate::new(delta.clone(), 1.0).unwrap();
        // Per-shard fold, then root fold over the shard aggregates.
        let mut shard_updates = Vec::new();
        for members in part.shards.values() {
            if members.is_empty() {
                continue;
            }
            let ups: Vec<ClientUpdate> = members.iter().map(|&m| update(m)).collect();
            let (merged, weight) = canonical_fold(&ups).unwrap();
            shard_updates.push(ClientUpdate::new(merged, weight).unwrap());
        }
        let (root, root_w) = canonical_fold(&shard_updates).unwrap();
        // Flat mean over the whole cohort.
        let flat_ups: Vec<ClientUpdate> = cohort.iter().map(|&m| update(m)).collect();
        let (flat, flat_w) = canonical_fold(&flat_ups).unwrap();
        prop_assert_eq!(root_w.to_bits(), flat_w.to_bits());
        for (a, b) in root.iter().zip(&flat) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Re-parenting is a pure function of `(seed, dead set)`: a tree
    /// rebuilt from checkpointed state — or one whose crashes were marked
    /// in any other order — routes every client identically.
    #[test]
    fn reparenting_is_deterministic_in_seed_and_dead_set(
        shards in 2usize..16,
        seed in any::<u64>(),
        dead in proptest::collection::vec(any::<u32>(), 1..5),
    ) {
        let cfg = HierarchyConfig { shards, ..HierarchyConfig::default() };
        let mut tree = ShardTree::new(cfg, seed);
        for &d in &dead {
            if tree.live_count() > 1 {
                tree.mark_crashed(d % shards as u32);
            }
        }
        // The same final dead set, marked in reverse order.
        let mut final_dead = tree.state().dead_shards;
        final_dead.reverse();
        let mut reversed = ShardTree::new(cfg, seed);
        for d in final_dead {
            reversed.mark_crashed(d);
        }
        prop_assert_eq!(reversed.state(), tree.state());
        let rebuilt = ShardTree::from_state(cfg, seed, &tree.state());
        let cohort: Vec<u32> = (0..200).collect();
        for &id in &cohort {
            prop_assert_eq!(tree.shard_of(id), reversed.shard_of(id));
            prop_assert_eq!(tree.shard_of(id), rebuilt.shard_of(id));
        }
        let a = tree.partition(&cohort);
        let b = rebuilt.partition(&cohort);
        prop_assert_eq!(a.shards, b.shards);
        prop_assert_eq!(a.reparented, b.reparented);
    }
}
