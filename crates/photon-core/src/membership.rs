//! Deterministic elastic membership: the roster of clients the aggregator
//! believes exist, with lease-based liveness.
//!
//! Photon's cross-silo setting assumes clients "can be sporadically
//! available throughout a full training cycle" (§2.1) — not merely
//! crashing, but permanently leaving and *newly arriving* mid-run. The
//! [`MembershipRegistry`] replaces the fixed, enumerated population with a
//! lease state machine driven entirely by the seeded fault plan and the
//! simulated walltime clock ([`photon_comms::SimClock`]), so every
//! membership decision is a pure function of `(config, fault seed, round)`
//! and replays bit-identically — including across a checkpoint restore.
//!
//! The lease state machine per member:
//!
//! ```text
//!            join / founding                 leave (permanent)
//!   ──────────────► Active ──────────────────► Departed
//!                   ▲    │ lease lapses (missed
//!     warm rejoin   │    │  heartbeats past lease_ms)
//!     (crash-free   │    ▼
//!      round)       └─ Expired ────────────────► Departed
//!                                 leave
//! ```
//!
//! Heartbeats are implicit: a client that is not scheduled to crash this
//! round renews its lease to `now + lease_ms`. A client crashing for
//! enough consecutive rounds that simulated time passes its lease expiry
//! is *expired* — dropped from the live roster until a crash-free round
//! lets it re-handshake (`Hello`/`LeaseGrant`) and warm-rejoin.

use crate::faults::FaultInjector;
use photon_comms::SimClock;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Knobs for the elastic membership runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipConfig {
    /// Liveness lease duration in simulated milliseconds: a member that
    /// misses heartbeats for longer than this is expired from the roster.
    pub lease_ms: u64,
    /// Simulated duration of one federated round (drives the
    /// [`SimClock`]).
    pub round_ms: u64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            lease_ms: 3_000,
            round_ms: 1_000,
        }
    }
}

impl MembershipConfig {
    /// Checks parameter consistency.
    ///
    /// # Errors
    /// Returns a description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.round_ms == 0 {
            return Err("membership round_ms must be positive".into());
        }
        if self.lease_ms < self.round_ms {
            return Err(format!(
                "lease_ms {} shorter than one round ({} ms): every member \
                 would expire before it could renew",
                self.lease_ms, self.round_ms
            ));
        }
        Ok(())
    }

    /// The clock this membership configuration runs on.
    pub fn clock(&self) -> SimClock {
        SimClock::new(self.round_ms)
    }
}

/// Where a member is in the lease state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberPhase {
    /// Holding a valid lease; eligible for cohort sampling.
    Active,
    /// Lease lapsed (missed heartbeats); sits out until a warm rejoin.
    Expired,
    /// Permanently left the federation; never returns.
    Departed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Member {
    birth_round: u64,
    lease_expires_ms: u64,
    phase: MemberPhase,
}

/// The membership changes one round produced, in the order they were
/// applied (joins → leaves → rejoins → expiries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnEvents {
    /// Brand-new clients admitted this round (warm join).
    pub joined: Vec<u32>,
    /// Members that permanently departed this round.
    pub departed: Vec<u32>,
    /// Members whose lease lapsed this round.
    pub expired: Vec<u32>,
    /// Previously-expired members that warm-rejoined this round.
    pub rejoined: Vec<u32>,
}

impl ChurnEvents {
    /// Whether the round changed the roster at all.
    pub fn is_empty(&self) -> bool {
        self.joined.is_empty()
            && self.departed.is_empty()
            && self.expired.is_empty()
            && self.rejoined.is_empty()
    }
}

/// A serializable image of the registry, carried by checkpoint v3 so a
/// restore resumes with the exact roster the crashed run had.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipSnapshot {
    /// The membership configuration the registry ran under.
    pub config: MembershipConfig,
    /// Next id to assign to a joining client.
    pub next_id: u32,
    /// Every member ever admitted: `(id, birth_round, lease_expires_ms,
    /// phase as u8: 0 = Active, 1 = Expired, 2 = Departed)`.
    pub members: Vec<(u32, u64, u64, u8)>,
}

/// The aggregator's membership registry: who exists, who is live, and who
/// may be sampled this round.
///
/// Per-round cost is O(active) + O(expiring), not O(ever admitted): the
/// active and expired id sets are indexed, and lease expiries come off a
/// min-heap instead of a full-map scan. Departed members (which only
/// accumulate over a long run) are never touched again by `begin_round`.
#[derive(Debug, Clone)]
pub struct MembershipRegistry {
    cfg: MembershipConfig,
    clock: SimClock,
    members: BTreeMap<u32, Member>,
    next_id: u32,
    /// Ids in [`MemberPhase::Active`] — the renewal scan's universe.
    active: BTreeSet<u32>,
    /// Ids in [`MemberPhase::Expired`] — the rejoin scan's universe.
    expired: BTreeSet<u32>,
    /// Lazy lease-expiry min-heap over `(lease_expires_ms, id)`. An entry
    /// is pushed whenever a member misses a heartbeat (its lease then
    /// stops moving), and validated against the member's current lease on
    /// pop — stale entries (renewed or already-expired members) are
    /// discarded. A member can only expire on a round it also crashes
    /// (renewal precedes the expiry check), so crash-time pushes cover
    /// every expiry, including replays after a checkpoint restore.
    expiry_heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl PartialEq for MembershipRegistry {
    fn eq(&self, other: &Self) -> bool {
        // The index structures are derived state (and the lazy heap admits
        // many equivalent shapes); logical equality is the member map.
        self.cfg == other.cfg && self.members == other.members && self.next_id == other.next_id
    }
}

impl Eq for MembershipRegistry {}

impl MembershipRegistry {
    /// Founds a registry with `population` members, all active with leases
    /// granted at round 0.
    ///
    /// # Panics
    /// Panics if the config fails [`MembershipConfig::validate`] or the
    /// population is empty.
    pub fn new(cfg: MembershipConfig, population: usize) -> Self {
        cfg.validate().expect("invalid membership config");
        assert!(population > 0, "cannot found an empty federation");
        let clock = cfg.clock();
        let lease = clock.now_ms(0) + cfg.lease_ms;
        let members = (0..population as u32)
            .map(|id| {
                (
                    id,
                    Member {
                        birth_round: 0,
                        lease_expires_ms: lease,
                        phase: MemberPhase::Active,
                    },
                )
            })
            .collect();
        MembershipRegistry {
            cfg,
            clock,
            members,
            next_id: population as u32,
            active: (0..population as u32).collect(),
            expired: BTreeSet::new(),
            expiry_heap: BinaryHeap::new(),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> MembershipConfig {
        self.cfg
    }

    /// Total ids ever assigned (founding members plus every join). Client
    /// id and roster index coincide, so this is also the size the client
    /// vector must be provisioned to.
    pub fn roster_len(&self) -> usize {
        self.next_id as usize
    }

    /// Applies one round of membership churn, in deterministic order:
    /// scheduled joins, then permanent leaves, then warm rejoins of
    /// expired members (a crash-free round re-handshakes), then heartbeat
    /// lease renewals (a member scheduled to crash misses its heartbeat),
    /// then lease-expiry checks against the simulated clock.
    pub fn begin_round(&mut self, round: u64, injector: Option<&FaultInjector>) -> ChurnEvents {
        let now = self.clock.now_ms(round);
        let lease = now + self.cfg.lease_ms;
        let mut events = ChurnEvents::default();

        if let Some(inj) = injector {
            for _ in 0..inj.joins_at(round) {
                let id = self.next_id;
                self.next_id += 1;
                self.members.insert(
                    id,
                    Member {
                        birth_round: round,
                        lease_expires_ms: lease,
                        phase: MemberPhase::Active,
                    },
                );
                self.active.insert(id);
                events.joined.push(id);
            }
            for id in inj.leaves_at(round) {
                if let Some(m) = self.members.get_mut(&id) {
                    if m.phase != MemberPhase::Departed {
                        m.phase = MemberPhase::Departed;
                        self.active.remove(&id);
                        self.expired.remove(&id);
                        events.departed.push(id);
                    }
                }
            }
        }

        let crashed = |id: u32| {
            injector
                .and_then(|inj| inj.client_fault(round, id))
                .map(|f| f == crate::faults::ClientFault::Crash)
                .unwrap_or(false)
        };
        // Warm rejoins: O(expired), ascending id (matching the order the
        // old full-map scan produced).
        let rejoining: Vec<u32> = self
            .expired
            .iter()
            .copied()
            .filter(|&id| !crashed(id))
            .collect();
        for id in rejoining {
            let m = self
                .members
                .get_mut(&id)
                .expect("expired index out of sync");
            m.phase = MemberPhase::Active;
            m.lease_expires_ms = lease;
            self.expired.remove(&id);
            self.active.insert(id);
            events.rejoined.push(id);
        }
        // Heartbeat renewals: O(active). A member that crashes misses its
        // heartbeat — its lease stops moving, so it enters the expiry heap
        // with the lease it will still hold when (if) it lapses.
        for &id in &self.active {
            let m = self.members.get_mut(&id).expect("active index out of sync");
            if crashed(id) {
                self.expiry_heap.push(Reverse((m.lease_expires_ms, id)));
            } else {
                m.lease_expires_ms = lease;
            }
        }
        // Lease expiries: O(expiring), off the heap instead of a second
        // full-map scan. Entries whose lease no longer matches (the member
        // renewed, already expired, or departed since the push) are stale
        // and discarded.
        let mut expiring = Vec::new();
        while let Some(&Reverse((expires_ms, id))) = self.expiry_heap.peek() {
            if expires_ms >= now {
                break;
            }
            self.expiry_heap.pop();
            if let Some(m) = self.members.get_mut(&id) {
                if m.phase == MemberPhase::Active && m.lease_expires_ms == expires_ms {
                    m.phase = MemberPhase::Expired;
                    self.active.remove(&id);
                    self.expired.insert(id);
                    expiring.push(id);
                }
            }
        }
        // The old path reported expiries in ascending id order; the heap
        // yields (lease, id) order. Restore the contract.
        expiring.sort_unstable();
        events.expired = expiring;
        events
    }

    /// Active members, ascending — the universe the cohort sampler draws
    /// from this round. O(active), straight off the index.
    pub fn live_members(&self) -> Vec<u32> {
        self.active.iter().copied().collect()
    }

    /// Number of active members, without materializing them.
    pub fn live_count(&self) -> usize {
        self.active.len()
    }

    /// Every non-departed member, ascending — the fallback universe when
    /// every live member happens to be expired at once.
    pub fn reachable_members(&self) -> Vec<u32> {
        self.active.union(&self.expired).copied().collect()
    }

    /// The member's phase, if it was ever admitted.
    pub fn phase(&self, id: u32) -> Option<MemberPhase> {
        self.members.get(&id).map(|m| m.phase)
    }

    /// The round the member first joined, if it was ever admitted.
    pub fn birth_round(&self, id: u32) -> Option<u64> {
        self.members.get(&id).map(|m| m.birth_round)
    }

    /// Exports the registry for checkpointing.
    pub fn snapshot(&self) -> MembershipSnapshot {
        MembershipSnapshot {
            config: self.cfg,
            next_id: self.next_id,
            members: self
                .members
                .iter()
                .map(|(&id, m)| {
                    let phase = match m.phase {
                        MemberPhase::Active => 0u8,
                        MemberPhase::Expired => 1,
                        MemberPhase::Departed => 2,
                    };
                    (id, m.birth_round, m.lease_expires_ms, phase)
                })
                .collect(),
        }
    }

    /// Rebuilds a registry from a checkpoint snapshot.
    ///
    /// # Errors
    /// Returns a description of an invalid snapshot (bad config, unknown
    /// phase tag, or an id at or past `next_id`).
    pub fn from_snapshot(snap: &MembershipSnapshot) -> Result<Self, String> {
        snap.config.validate()?;
        let mut members = BTreeMap::new();
        for &(id, birth_round, lease_expires_ms, phase) in &snap.members {
            if id >= snap.next_id {
                return Err(format!("member id {id} beyond next_id {}", snap.next_id));
            }
            let phase = match phase {
                0 => MemberPhase::Active,
                1 => MemberPhase::Expired,
                2 => MemberPhase::Departed,
                other => return Err(format!("unknown member phase tag {other}")),
            };
            members.insert(
                id,
                Member {
                    birth_round,
                    lease_expires_ms,
                    phase,
                },
            );
        }
        let active = members
            .iter()
            .filter(|(_, m)| m.phase == MemberPhase::Active)
            .map(|(&id, _)| id)
            .collect();
        let expired = members
            .iter()
            .filter(|(_, m)| m.phase == MemberPhase::Expired)
            .map(|(&id, _)| id)
            .collect();
        Ok(MembershipRegistry {
            cfg: snap.config,
            clock: snap.config.clock(),
            members,
            next_id: snap.next_id,
            active,
            expired,
            // Empty is correct: a member can only expire on a round it
            // also crashes, and the deterministic fault plan re-pushes its
            // entry when that round replays.
            expiry_heap: BinaryHeap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;

    fn cfg() -> MembershipConfig {
        MembershipConfig::default() // 3 s lease, 1 s rounds
    }

    #[test]
    fn founding_members_are_all_live() {
        let reg = MembershipRegistry::new(cfg(), 4);
        assert_eq!(reg.live_members(), vec![0, 1, 2, 3]);
        assert_eq!(reg.roster_len(), 4);
        assert_eq!(reg.phase(0), Some(MemberPhase::Active));
        assert_eq!(reg.birth_round(0), Some(0));
        assert_eq!(reg.phase(9), None);
    }

    #[test]
    fn joins_assign_fresh_ids_and_leaves_are_permanent() {
        let spec = FaultSpec {
            targeted_joins: vec![2, 2],
            targeted_leaves: vec![(3, 1), (5, 4)],
            ..FaultSpec::none(1)
        };
        let inj = FaultInjector::from_spec(&spec, 3, 10);
        let mut reg = MembershipRegistry::new(cfg(), 3);
        assert!(reg.begin_round(0, Some(&inj)).is_empty());
        let ev = reg.begin_round(2, Some(&inj));
        assert_eq!(ev.joined, vec![3, 4]);
        assert_eq!(reg.live_members(), vec![0, 1, 2, 3, 4]);
        assert_eq!(reg.birth_round(3), Some(2));
        let ev = reg.begin_round(3, Some(&inj));
        assert_eq!(ev.departed, vec![1]);
        assert_eq!(reg.live_members(), vec![0, 2, 3, 4]);
        // A mid-run joiner can be told to leave too.
        let ev = reg.begin_round(5, Some(&inj));
        assert_eq!(ev.departed, vec![4]);
        assert_eq!(reg.phase(4), Some(MemberPhase::Departed));
        // Departed members never rejoin.
        for round in 6..10 {
            assert!(reg.begin_round(round, Some(&inj)).is_empty());
        }
        assert_eq!(reg.live_members(), vec![0, 2, 3]);
    }

    #[test]
    fn sustained_crashes_expire_the_lease_and_a_quiet_round_rejoins() {
        // Client 1 crashes rounds 1..=4: lease granted at round 0 expires
        // at 1000 + 3000 = 4000 ms, so round 5 (now = 5000) expires it...
        // except the crash at round 4 means the last renewal was round 0.
        let spec = FaultSpec {
            targeted: vec![
                crate::faults::TargetedFault::parse("crash@r1c1").unwrap(),
                crate::faults::TargetedFault::parse("crash@r2c1").unwrap(),
                crate::faults::TargetedFault::parse("crash@r3c1").unwrap(),
                crate::faults::TargetedFault::parse("crash@r4c1").unwrap(),
            ],
            ..FaultSpec::none(1)
        };
        let inj = FaultInjector::from_spec(&spec, 3, 10);
        let mut reg = MembershipRegistry::new(cfg(), 3);
        reg.begin_round(0, Some(&inj));
        let mut expired_at = None;
        for round in 1..=4 {
            let ev = reg.begin_round(round, Some(&inj));
            if !ev.expired.is_empty() {
                assert_eq!(ev.expired, vec![1]);
                expired_at = Some(round);
            }
        }
        // Lease from round 0 (granted to 3000 ms) lapses at round 4
        // (now = 4000 > 3000): three consecutive missed heartbeats.
        assert_eq!(expired_at, Some(4));
        assert_eq!(reg.live_members(), vec![0, 2]);
        assert_eq!(reg.phase(1), Some(MemberPhase::Expired));
        // Round 5 is crash-free: warm rejoin with a fresh lease.
        let ev = reg.begin_round(5, Some(&inj));
        assert_eq!(ev.rejoined, vec![1]);
        assert_eq!(reg.live_members(), vec![0, 1, 2]);
    }

    #[test]
    fn healthy_members_never_expire() {
        let mut reg = MembershipRegistry::new(cfg(), 5);
        for round in 0..50 {
            assert!(reg.begin_round(round, None).is_empty());
        }
        assert_eq!(reg.live_members().len(), 5);
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let spec = FaultSpec {
            targeted_joins: vec![1],
            targeted_leaves: vec![(2, 0)],
            targeted: vec![
                crate::faults::TargetedFault::parse("crash@r1c2").unwrap(),
                crate::faults::TargetedFault::parse("crash@r2c2").unwrap(),
                crate::faults::TargetedFault::parse("crash@r3c2").unwrap(),
                crate::faults::TargetedFault::parse("crash@r4c2").unwrap(),
            ],
            ..FaultSpec::none(1)
        };
        let inj = FaultInjector::from_spec(&spec, 3, 10);
        let mut reg = MembershipRegistry::new(cfg(), 3);
        for round in 0..5 {
            reg.begin_round(round, Some(&inj));
        }
        let snap = reg.snapshot();
        let restored = MembershipRegistry::from_snapshot(&snap).unwrap();
        assert_eq!(restored, reg);
        // And the restored registry continues identically.
        let mut a = reg.clone();
        let mut b = restored;
        for round in 5..10 {
            assert_eq!(
                a.begin_round(round, Some(&inj)),
                b.begin_round(round, Some(&inj))
            );
        }
        assert_eq!(a, b);
    }

    #[test]
    fn bad_snapshots_are_rejected() {
        let reg = MembershipRegistry::new(cfg(), 2);
        let mut snap = reg.snapshot();
        snap.members[0].3 = 9;
        assert!(MembershipRegistry::from_snapshot(&snap).is_err());
        let mut snap = reg.snapshot();
        snap.next_id = 1;
        assert!(MembershipRegistry::from_snapshot(&snap).is_err());
    }

    /// A faithful reimplementation of the pre-heap `begin_round`: two full
    /// scans over every member ever admitted. The indexed path must
    /// produce byte-for-byte identical churn events against it.
    struct ShadowRegistry {
        cfg: MembershipConfig,
        clock: SimClock,
        members: BTreeMap<u32, Member>,
        next_id: u32,
    }

    impl ShadowRegistry {
        fn new(cfg: MembershipConfig, population: usize) -> Self {
            let clock = cfg.clock();
            let lease = clock.now_ms(0) + cfg.lease_ms;
            let members = (0..population as u32)
                .map(|id| {
                    (
                        id,
                        Member {
                            birth_round: 0,
                            lease_expires_ms: lease,
                            phase: MemberPhase::Active,
                        },
                    )
                })
                .collect();
            ShadowRegistry {
                cfg,
                clock,
                members,
                next_id: population as u32,
            }
        }

        fn begin_round(&mut self, round: u64, injector: Option<&FaultInjector>) -> ChurnEvents {
            let now = self.clock.now_ms(round);
            let lease = now + self.cfg.lease_ms;
            let mut events = ChurnEvents::default();
            if let Some(inj) = injector {
                for _ in 0..inj.joins_at(round) {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.members.insert(
                        id,
                        Member {
                            birth_round: round,
                            lease_expires_ms: lease,
                            phase: MemberPhase::Active,
                        },
                    );
                    events.joined.push(id);
                }
                for id in inj.leaves_at(round) {
                    if let Some(m) = self.members.get_mut(&id) {
                        if m.phase != MemberPhase::Departed {
                            m.phase = MemberPhase::Departed;
                            events.departed.push(id);
                        }
                    }
                }
            }
            let crashed = |id: u32| {
                injector
                    .and_then(|inj| inj.client_fault(round, id))
                    .map(|f| f == crate::faults::ClientFault::Crash)
                    .unwrap_or(false)
            };
            for (&id, m) in self.members.iter_mut() {
                match m.phase {
                    MemberPhase::Expired if !crashed(id) => {
                        m.phase = MemberPhase::Active;
                        m.lease_expires_ms = lease;
                        events.rejoined.push(id);
                    }
                    MemberPhase::Active if !crashed(id) => {
                        m.lease_expires_ms = lease;
                    }
                    _ => {}
                }
            }
            for (&id, m) in self.members.iter_mut() {
                if m.phase == MemberPhase::Active && now > m.lease_expires_ms {
                    m.phase = MemberPhase::Expired;
                    events.expired.push(id);
                }
            }
            events
        }
    }

    #[test]
    fn heap_path_matches_old_double_scan_exactly() {
        // A churny plan: random crashes (driving expiries and rejoins in
        // overlapping waves), joins and permanent leaves, over enough
        // rounds for leases to lapse repeatedly.
        let spec = FaultSpec {
            p_crash: 0.45,
            targeted_joins: vec![3, 7, 12, 18, 25],
            targeted_leaves: vec![(4, 2), (10, 5), (16, 21), (22, 0), (28, 9)],
            ..FaultSpec::none(0xC0FFEE)
        };
        let rounds = 40;
        let population = 24;
        let inj = FaultInjector::from_spec(&spec, population, rounds);
        let mut fast = MembershipRegistry::new(cfg(), population);
        let mut shadow = ShadowRegistry::new(cfg(), population);
        for round in 0..rounds {
            let a = fast.begin_round(round, Some(&inj));
            let b = shadow.begin_round(round, Some(&inj));
            assert_eq!(a, b, "churn events diverged at round {round}");
        }
        // And the full lease state agrees, not just the event stream.
        assert_eq!(fast.members, shadow.members);
        assert_eq!(fast.next_id, shadow.next_id);
    }

    #[test]
    fn config_validation() {
        assert!(MembershipConfig::default().validate().is_ok());
        assert!(MembershipConfig {
            lease_ms: 500,
            round_ms: 1_000,
        }
        .validate()
        .is_err());
        assert!(MembershipConfig {
            lease_ms: 1_000,
            round_ms: 0,
        }
        .validate()
        .is_err());
    }
}
