//! Crash-tolerant training driver: checkpoint every K rounds, restore from
//! the latest checkpoint on any round failure (or an injected aggregator
//! crash) within a bounded recovery budget.
//!
//! Recovery is exact, not approximate: cohort sampling, client data order
//! and DP noise are all round-keyed (see [`photon_tensor::SeedStream::fork`]),
//! and checkpoints carry the server optimizer's state, so the rounds
//! replayed after a restore are bit-identical to the rounds the crash
//! destroyed — a run that crashes and recovers ends with exactly the
//! parameters of one that never crashed.

use crate::experiments::{eval_seq, RunOptions};
use crate::faults::FaultInjector;
use crate::{
    load_checkpoint, load_elastic_state, load_server_opt_state, save_checkpoint_full, CoreError,
    Federation, Result, TrainingHistory,
};
use photon_data::{EvalStream, TokenCorpus};
use photon_nn::evaluate_perplexity;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Options for a crash-tolerant [`run_training`] loop.
#[derive(Debug, Clone)]
pub struct TrainingOptions {
    /// Round schedule and evaluation cadence.
    pub run: RunOptions,
    /// Where checkpoints live. `None` disables checkpointing — recovery
    /// then restarts from round 0.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every this many rounds (0 = only on completion).
    pub checkpoint_every: u64,
    /// Maximum restores before a failure is surfaced to the caller.
    pub recovery_budget: u32,
    /// Start by restoring the latest checkpoint in `checkpoint_dir`, when
    /// one exists (resuming an interrupted run).
    pub resume: bool,
    /// Write a live metrics snapshot (JSON) here after every round,
    /// atomically (temp file + rename), so an operator tailing the file
    /// never observes a torn write. `None` disables the sink.
    pub metrics_json: Option<PathBuf>,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            run: RunOptions::default(),
            checkpoint_dir: None,
            checkpoint_every: 5,
            recovery_budget: 3,
            resume: false,
            metrics_json: None,
        }
    }
}

/// What a [`run_training`] call produced.
#[derive(Debug)]
pub struct TrainingOutcome {
    /// Per-round records for the rounds that stand (replayed rounds
    /// overwrite the records the crash destroyed).
    pub history: TrainingHistory,
    /// Checkpoint restores performed (crashes survived).
    pub recoveries: u32,
    /// Watchdog-triggered rollbacks to the last-good checkpoint (divergent
    /// rounds neutralized). Shares the recovery budget with `recoveries`.
    pub rollbacks: u32,
    /// The final federation (global model, telemetry).
    pub federation: Federation,
}

/// Drives federated training to completion through crashes: rounds are
/// checkpointed every `opts.checkpoint_every` rounds (with server-optimizer
/// state), and any round error — or an aggregator crash scheduled in
/// `injector` — triggers a rebuild-and-restore from the latest checkpoint,
/// up to `opts.recovery_budget` times.
///
/// `build` must deterministically construct the same federation and
/// validation corpus every call (all the builders in
/// [`crate::experiments`] qualify): recovery rebuilds the world from
/// scratch and replays from the last checkpoint.
///
/// # Errors
/// Surfaces the underlying round error once the recovery budget is
/// exhausted, and propagates checkpoint I/O failures.
pub fn run_training<F>(
    mut build: F,
    opts: &TrainingOptions,
    injector: Option<&FaultInjector>,
) -> Result<TrainingOutcome>
where
    F: FnMut() -> Result<(Federation, TokenCorpus)>,
{
    let (mut fed, val) = build()?;
    let mut history = TrainingHistory::new();
    let mut recoveries = 0u32;
    let mut rollbacks = 0u32;
    // An injected aggregator crash fires once; after recovery the process
    // is a different incarnation and the schedule entry is spent.
    let mut fired_agg_crashes: BTreeSet<u64> = BTreeSet::new();
    // Rounds the watchdog declared divergent: neutralized on every rebuilt
    // aggregator so the deterministic replay skips the poisoned update
    // instead of re-diverging forever.
    let mut neutralized: BTreeSet<u64> = BTreeSet::new();

    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            if dir.join("manifest.json").exists() {
                match restore_from(&mut fed, dir) {
                    // A fresh process cannot know which prefix rounds a
                    // prior incarnation neutralized (that is not
                    // checkpointed), so the whole restored prefix counts
                    // as committed.
                    Ok(()) => mark_committed_prefix(&fed, &neutralized),
                    Err(e) => {
                        // A torn or corrupt checkpoint must not kill the
                        // resume: fall back to a clean start instead.
                        eprintln!(
                            "warning: checkpoint in {} is unusable ({e}); \
                             restarting from round 0",
                            dir.display()
                        );
                        let (fresh, _) = build()?;
                        fed = fresh;
                    }
                }
            }
        }
    }

    let seq = eval_seq(fed.aggregator.config());
    while fed.aggregator.round() < opts.run.rounds {
        let round = fed.aggregator.round();
        match fed.run_round_with(injector) {
            Ok(mut record) => {
                if opts.run.eval_every > 0 && (round + 1) % opts.run.eval_every == 0 {
                    // A fresh stream per eval keeps evaluation a pure
                    // function of the round, so replayed rounds reproduce
                    // their records exactly.
                    let _eval_span = photon_trace::span(photon_trace::Phase::Eval)
                        .arg("round", round)
                        .arg("windows", opts.run.eval_windows as u64);
                    let mut stream = EvalStream::new(&val, seq);
                    let model = fed.aggregator.global_model();
                    let report = evaluate_perplexity(&model, &mut stream, opts.run.eval_windows);
                    record.eval_ppl = Some(report.perplexity);
                }
                let reached = record
                    .eval_ppl
                    .zip(opts.run.stop_below)
                    .is_some_and(|(p, t)| p <= t);
                // Replayed rounds overwrite the records destroyed by the
                // crash they recover from.
                history.rounds.truncate(round as usize);
                history.push(record);

                let due =
                    opts.checkpoint_every > 0 && (round + 1).is_multiple_of(opts.checkpoint_every);
                if let Some(dir) = &opts.checkpoint_dir {
                    if due || reached || round + 1 == opts.run.rounds {
                        let _save_span = photon_trace::span(photon_trace::Phase::CheckpointSave)
                            .arg("round", fed.aggregator.round());
                        photon_trace::counter_add("checkpoint.saves", 1);
                        save_checkpoint_full(
                            dir,
                            fed.aggregator.config(),
                            fed.aggregator.round(),
                            fed.aggregator.params(),
                            Some(&fed.aggregator.server_opt_state()),
                            fed.aggregator.elastic_state().as_ref(),
                            fed.aggregator.hierarchy_state().as_ref(),
                        )?;
                    }
                }
                if reached {
                    break;
                }
                let agg_crashes = injector.is_some_and(|inj| inj.aggregator_crashes_after(round))
                    && fired_agg_crashes.insert(round);
                if agg_crashes {
                    if recoveries >= opts.recovery_budget {
                        return Err(CoreError::ClientFailure(format!(
                            "aggregator crashed after round {round} with the \
                             recovery budget exhausted"
                        )));
                    }
                    recoveries += 1;
                    fed = recover(&mut build, opts, &mut history, &neutralized)?;
                }
            }
            Err(CoreError::Divergence { round, reason }) => {
                if recoveries + rollbacks >= opts.recovery_budget {
                    return Err(CoreError::Divergence { round, reason });
                }
                rollbacks += 1;
                neutralized.insert(round);
                photon_trace::instant(
                    photon_trace::Phase::Rollback,
                    "watchdog_rollback",
                    &[("round", round), ("rollback", rollbacks as u64)],
                );
                photon_trace::counter_add("watchdog.rollbacks", 1);
                eprintln!(
                    "round {round} diverged ({reason}); rolling back to the \
                     last-good checkpoint and neutralizing the round \
                     (rollback {rollbacks})"
                );
                fed = recover(&mut build, opts, &mut history, &neutralized)?;
            }
            Err(e) => {
                if recoveries + rollbacks >= opts.recovery_budget {
                    return Err(e);
                }
                recoveries += 1;
                eprintln!(
                    "round {round} failed ({e}); restoring from checkpoint \
                     (recovery {recoveries}/{})",
                    opts.recovery_budget
                );
                fed = recover(&mut build, opts, &mut history, &neutralized)?;
            }
        }
        publish_round_metrics(&fed, &history, recoveries, rollbacks, opts);
    }
    for _ in 0..recoveries {
        fed.aggregator.telemetry().record_recovery();
    }
    for _ in 0..rollbacks {
        fed.aggregator.telemetry().record_rollback();
    }
    // A `stop_below` early exit breaks out before the in-loop publish;
    // refresh the sinks once more so they reflect the final state.
    publish_round_metrics(&fed, &history, recoveries, rollbacks, opts);
    Ok(TrainingOutcome {
        history,
        recoveries,
        rollbacks,
        federation: fed,
    })
}

/// Rebuilds the federation from scratch and restores the latest
/// checkpoint (or leaves it at round 0 when there is none), truncating the
/// history to the restored round.
fn recover<F>(
    build: &mut F,
    opts: &TrainingOptions,
    history: &mut TrainingHistory,
    neutralized: &BTreeSet<u64>,
) -> Result<Federation>
where
    F: FnMut() -> Result<(Federation, TokenCorpus)>,
{
    let (mut fed, _) = build()?;
    if let Some(dir) = &opts.checkpoint_dir {
        if dir.join("manifest.json").exists() {
            if let Err(e) = restore_from(&mut fed, dir) {
                // The latest checkpoint itself is torn or corrupt: falling
                // back to round 0 (bounded by the shared recovery budget)
                // beats failing the whole run on a bad disk block.
                eprintln!(
                    "warning: checkpoint in {} is unusable ({e}); \
                     recovering from round 0",
                    dir.display()
                );
                let (fresh, _) = build()?;
                fed = fresh;
            }
        }
    }
    // The rebuilt aggregator starts with a clean slate; re-arm the
    // neutralized rounds so the replay skips every previously-diverged
    // update application.
    for &round in neutralized {
        fed.aggregator.neutralize_round(round);
    }
    // Every round baked into the restored parameters committed (except
    // the neutralized ones, whose updates were skipped); seed the fresh
    // telemetry so `rounds_committed` stays comparable across recoveries.
    mark_committed_prefix(&fed, neutralized);
    history.rounds.truncate(fed.aggregator.round() as usize);
    Ok(fed)
}

/// Marks the restored checkpoint prefix `0..round()` as committed on a
/// freshly rebuilt federation's telemetry, skipping neutralized rounds.
fn mark_committed_prefix(fed: &Federation, neutralized: &BTreeSet<u64>) {
    for round in 0..fed.aggregator.round() {
        if !neutralized.contains(&round) {
            fed.aggregator.telemetry().record_committed_round(round);
        }
    }
}

/// Refreshes the observability sinks after a round: publishes run-level
/// gauges, drains the trace recorder into its sinks, and atomically
/// rewrites the live metrics JSON. Sink failures warn and never fail
/// training.
fn publish_round_metrics(
    fed: &Federation,
    history: &TrainingHistory,
    recoveries: u32,
    rollbacks: u32,
    opts: &TrainingOptions,
) {
    let telemetry = fed.aggregator.telemetry();
    if photon_trace::enabled() {
        photon_trace::gauge_set("rounds_seen", telemetry.rounds_seen() as f64);
        photon_trace::gauge_set("rounds_committed", telemetry.rounds_committed() as f64);
        let skew = telemetry.participation_skew();
        if skew.is_finite() {
            photon_trace::gauge_set("participation_skew", skew);
        }
        // Hierarchical-aggregation health: the shard topology from the
        // config, the crash/re-parent tallies from the live tree, and
        // the streaming-merge residency high-water mark from the last
        // committed round — all surfaced in the Prometheus text sink.
        if let Some(hcfg) = &fed.aggregator.config().hierarchy {
            photon_trace::gauge_set("hierarchy.shards", hcfg.shards as f64);
            photon_trace::gauge_set("hierarchy.shard_quorum_frac", hcfg.shard_quorum_frac);
            photon_trace::gauge_set("hierarchy.max_resident", hcfg.max_resident as f64);
            if let Some(state) = fed.aggregator.hierarchy_state() {
                photon_trace::gauge_set("hierarchy.dead_shards", state.dead_shards.len() as f64);
            }
            if let Some(last) = history.rounds.last() {
                photon_trace::gauge_set("hierarchy.peak_resident", last.peak_resident as f64);
                photon_trace::gauge_set("hierarchy.shard_crashes", last.shard_crashes as f64);
                photon_trace::gauge_set("hierarchy.reparented_clients", last.reparented as f64);
            }
        }
        if let Err(e) = photon_trace::flush() {
            eprintln!("warning: trace flush failed: {e}");
        }
    }
    if let Some(path) = &opts.metrics_json {
        if let Err(e) = write_metrics_json(path, fed, history, recoveries, rollbacks) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

/// The live metrics snapshot: run counters (including the committed-round
/// count, the compute-thread budget and the participation skew — `null`
/// when no client has trained yet) plus the per-round history. Written
/// atomically so a concurrent reader never observes a torn file.
fn write_metrics_json(
    path: &std::path::Path,
    fed: &Federation,
    history: &TrainingHistory,
    recoveries: u32,
    rollbacks: u32,
) -> std::io::Result<()> {
    let telemetry = fed.aggregator.telemetry();
    let faults = serde_json::to_string_pretty(&telemetry.fault_counters())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let skew = telemetry.participation_skew();
    let skew_json = if skew.is_finite() {
        format!("{skew}")
    } else {
        "null".to_string()
    };
    let quantile = |q: f64| {
        telemetry
            .link_latency_quantile(q)
            .map_or("null".to_string(), |v| v.to_string())
    };
    let counters = telemetry.fault_counters();
    // Live view of the sub-aggregator tree: `null` for flat runs, else the
    // shard count, the permanently dead shards and the cumulative shard
    // fault counters.
    let hierarchy_json = match (
        fed.aggregator.config().hierarchy.as_ref(),
        fed.aggregator.hierarchy_state(),
    ) {
        (Some(hcfg), Some(state)) => format!(
            "{{\"shards\": {}, \"max_resident\": {}, \"dead_shards\": [{}], \
             \"shard_crashes\": {}, \"shard_hangs\": {}, \
             \"shard_degraded\": {}, \"reparented\": {}}}",
            hcfg.shards,
            hcfg.max_resident,
            state
                .dead_shards
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            counters.shard_crashes,
            counters.shard_hangs,
            counters.shard_degraded,
            counters.reparented,
        ),
        _ => "null".to_string(),
    };
    let reconnects_json = telemetry
        .reconnects_by_client()
        .iter()
        .map(|(id, n)| format!("\"{id}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n\"round\": {},\n\"rounds_seen\": {},\n\"rounds_committed\": {},\n\
         \"compute_threads\": {},\n\"backend\": \"{}\",\n\"dtype\": \"{}\",\n\
         \"participation_skew\": {},\n\
         \"total_tokens\": {},\n\"recoveries\": {},\n\"rollbacks\": {},\n\
         \"network\": {{\"deliveries\": {}, \"latency_p50_ms\": {}, \
         \"latency_p99_ms\": {}}},\n\
         \"transport\": {{\"reconnects\": {}, \"heartbeat_misses\": {}, \
         \"session_resumes\": {}, \"coordinator_restarts\": {}, \
         \"reconnects_by_client\": {{{}}}}},\n\
         \"hierarchy\": {},\n\
         \"fault_counters\": {},\n\"history\": {}\n}}\n",
        fed.aggregator.round(),
        telemetry.rounds_seen(),
        telemetry.rounds_committed(),
        telemetry.compute_threads(),
        photon_tensor::backend::active_name(),
        fed.aggregator.config().dtype.as_str(),
        skew_json,
        telemetry.total_tokens(),
        recoveries,
        rollbacks,
        telemetry.link_latency_count(),
        quantile(0.5),
        quantile(0.99),
        counters.transport_reconnects,
        counters.heartbeat_misses,
        counters.session_resumes,
        counters.coordinator_restarts,
        reconnects_json,
        hierarchy_json,
        faults,
        history.to_json()
    );
    photon_trace::atomic_write(path, &json)
}

fn restore_from(fed: &mut Federation, dir: &std::path::Path) -> Result<()> {
    let _restore_span = photon_trace::span(photon_trace::Phase::CheckpointRestore);
    photon_trace::counter_add("checkpoint.restores", 1);
    let (manifest, params) = load_checkpoint(dir)?;
    let opt = load_server_opt_state(dir)?;
    fed.aggregator
        .restore_with_opt(manifest.round, params, opt.as_ref())?;
    // v3 checkpoints carry the membership roster and any in-flight
    // buffered updates; the resumed run continues with the exact roster
    // the crashed run had (including mid-run joiners, which sync_roster
    // re-provisions deterministically from the run seed).
    if let Some(elastic) = load_elastic_state(dir)? {
        fed.aggregator.restore_elastic(&elastic)?;
    }
    // v5 checkpoints carry the sub-aggregator tree's dead-shard set; a
    // resumed hierarchical run replays with the exact routing (including
    // crash re-parenting) the crashed run had.
    if let Some(hier) = crate::load_hierarchy_state(dir)? {
        fed.aggregator.restore_hierarchy(&hier)?;
    }
    fed.sync_roster()
}
