//! Global-model checkpointing (Algorithm 1, L.11): a JSON manifest plus a
//! CRC-protected binary parameter file, written atomically enough for the
//! paper's failure-recovery story (write to temp, rename).
//!
//! Format version 2 adds an optional `server_opt.bin` carrying the server
//! optimizer's state (momentum / Adam moments), so restoring a FedMom,
//! FedAdam or DiLoCo run no longer silently resets its momentum. Version-1
//! checkpoints (no `format_version` field) still load; the optimizer state
//! is reinitialized with a logged warning.
//!
//! Format version 3 adds an optional `membership.bin` carrying the elastic
//! roster (the membership registry snapshot) and any in-flight buffered
//! updates, so a restore resumes with the exact roster and buffer the
//! crashed run had. Version-2 (and version-1) checkpoints still load;
//! elastic state is simply absent.
//!
//! Format version 4 adds a `dtype` manifest field selecting the storage
//! precision of `params.bin` (f32 or bf16). Manifests without the field —
//! every v1–v3 checkpoint — decode as f32, so old checkpoints restore
//! unchanged. Loaded parameters are always widened to f32 master weights
//! in memory regardless of storage precision.
//!
//! Format version 5 adds an optional `hierarchy.bin` carrying the
//! aggregation tree's dead-shard set, so an aggregator crash-restart
//! re-derives the identical shard routing — including the deterministic
//! re-parenting of every orphaned client — the crashed run had. Pre-v5
//! checkpoints still load; the tree simply restores fully live.

use crate::hierarchy::HierarchyState;
use crate::membership::MembershipSnapshot;
use crate::{FederationConfig, Result};
use photon_comms::crc32;
use photon_fedopt::{BufferedUpdate, ServerOptState};
use photon_tensor::{bf16_from_f32, bf16_to_f32, Dtype};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;

const PARAMS_MAGIC: &[u8; 8] = b"PHTNCKP1";
const OPT_MAGIC: &[u8; 8] = b"PHTNOPT2";
const MEM_MAGIC: &[u8; 8] = b"PHTNMEM3";
const HIER_MAGIC: &[u8; 8] = b"PHTNHIE5";

/// Current checkpoint format version. Version-1 manifests predate the
/// field and deserialize as 0.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 5;

/// The elastic-membership side state carried by checkpoint v3: the roster
/// at save time plus any updates still waiting in the aggregation buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticState {
    /// The membership registry snapshot.
    pub membership: MembershipSnapshot,
    /// In-flight buffered updates (buffered mode only).
    pub buffer: Option<Vec<BufferedUpdate>>,
}

/// Checkpoint metadata saved alongside the parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Completed rounds at save time.
    pub round: u64,
    /// The run configuration.
    pub config: FederationConfig,
    /// Parameter count (sanity check at load).
    pub param_count: usize,
    /// Checkpoint format version (0 = legacy v1 manifest without the
    /// field).
    #[serde(default)]
    pub format_version: u32,
    /// Whether `server_opt.bin` was saved alongside the parameters.
    #[serde(default)]
    pub has_server_opt: bool,
    /// Whether `membership.bin` (elastic roster + buffer) was saved.
    #[serde(default)]
    pub has_membership: bool,
    /// Storage precision of `params.bin` (v4+). Manifests without the
    /// field — every pre-v4 checkpoint — decode as f32.
    #[serde(default)]
    pub dtype: Dtype,
    /// Whether `hierarchy.bin` (the aggregation tree's dead-shard set)
    /// was saved (v5+).
    #[serde(default)]
    pub has_hierarchy: bool,
}

/// Saves a checkpoint into `dir` (created if missing): `manifest.json` and
/// `params.bin`. Equivalent to [`save_checkpoint_with_opt`] without server
/// optimizer state.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_checkpoint(
    dir: &Path,
    cfg: &FederationConfig,
    round: u64,
    params: &[f32],
) -> Result<()> {
    save_checkpoint_with_opt(dir, cfg, round, params, None)
}

/// Saves a checkpoint including the server optimizer's state, so a restore
/// resumes with its momentum intact. Equivalent to
/// [`save_checkpoint_full`] without elastic-membership state.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_checkpoint_with_opt(
    dir: &Path,
    cfg: &FederationConfig,
    round: u64,
    params: &[f32],
    server_opt: Option<&ServerOptState>,
) -> Result<()> {
    save_checkpoint_full(dir, cfg, round, params, server_opt, None, None)
}

/// Saves a full checkpoint: parameters, server optimizer state, (when the
/// run is elastic) the membership roster plus any in-flight buffered
/// updates, and (when the run is hierarchical) the aggregation tree's
/// dead-shard set.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_checkpoint_full(
    dir: &Path,
    cfg: &FederationConfig,
    round: u64,
    params: &[f32],
    server_opt: Option<&ServerOptState>,
    elastic: Option<&ElasticState>,
    hierarchy: Option<&HierarchyState>,
) -> Result<()> {
    fs::create_dir_all(dir)?;
    let dtype = cfg.dtype;
    let manifest = CheckpointManifest {
        round,
        config: cfg.clone(),
        param_count: params.len(),
        format_version: CHECKPOINT_FORMAT_VERSION,
        has_server_opt: server_opt.is_some(),
        has_membership: elastic.is_some(),
        dtype,
        has_hierarchy: hierarchy.is_some(),
    };
    let manifest_json =
        serde_json::to_string_pretty(&manifest).expect("manifest serialization cannot fail");

    let mut bin = Vec::with_capacity(16 + params.len() * dtype.bytes_per_param());
    bin.extend_from_slice(PARAMS_MAGIC);
    bin.extend_from_slice(&(params.len() as u64).to_le_bytes());
    match dtype {
        Dtype::F32 => {
            for &p in params {
                bin.extend_from_slice(&p.to_le_bytes());
            }
        }
        Dtype::Bf16 => {
            for &p in params {
                bin.extend_from_slice(&bf16_from_f32(p).to_le_bytes());
            }
        }
    }
    let crc = crc32(&bin);
    bin.extend_from_slice(&crc.to_le_bytes());

    // Write-then-fsync-then-rename so an interrupted save never corrupts
    // the previous checkpoint, and a power cut after the rename cannot
    // surface a renamed-but-unflushed (torn) file as the checkpoint. The
    // manifest goes last: it is the commit point that declares which side
    // files are valid.
    write_durably(dir, "params.bin", &bin)?;
    if let Some(state) = server_opt {
        write_durably(dir, "server_opt.bin", &encode_opt_state(state))?;
    }
    if let Some(state) = elastic {
        write_durably(dir, "membership.bin", &encode_elastic_state(state))?;
    }
    if let Some(state) = hierarchy {
        write_durably(dir, "hierarchy.bin", &encode_hierarchy_state(state))?;
    }
    write_durably(dir, "manifest.json", manifest_json.as_bytes())?;
    sync_dir(dir);
    Ok(())
}

/// Writes `bytes` to `dir/<name>` durably: into a temp file, fsynced, then
/// renamed over the target. The fsync before the rename guarantees the
/// rename never publishes a file whose data blocks are still in the page
/// cache only.
fn write_durably(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(name))
}

/// Fsyncs the checkpoint directory so the renames themselves (directory
/// entries) are durable. Best-effort: platforms where a directory cannot
/// be opened for sync skip it quietly.
fn sync_dir(dir: &Path) {
    #[cfg(unix)]
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

fn encode_elastic_state(state: &ElasticState) -> Vec<u8> {
    let mem = &state.membership;
    let mut bin = Vec::new();
    bin.extend_from_slice(MEM_MAGIC);
    bin.extend_from_slice(&mem.config.lease_ms.to_le_bytes());
    bin.extend_from_slice(&mem.config.round_ms.to_le_bytes());
    bin.extend_from_slice(&mem.next_id.to_le_bytes());
    bin.extend_from_slice(&(mem.members.len() as u32).to_le_bytes());
    for &(id, birth, lease, phase) in &mem.members {
        bin.extend_from_slice(&id.to_le_bytes());
        bin.extend_from_slice(&birth.to_le_bytes());
        bin.extend_from_slice(&lease.to_le_bytes());
        bin.push(phase);
    }
    match &state.buffer {
        None => bin.push(0),
        Some(entries) => {
            bin.push(1);
            bin.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for e in entries {
                bin.extend_from_slice(&e.client_id.to_le_bytes());
                bin.extend_from_slice(&e.origin_round.to_le_bytes());
                bin.extend_from_slice(&e.arrival_round.to_le_bytes());
                bin.extend_from_slice(&e.base_weight.to_le_bytes());
                bin.extend_from_slice(&e.mean_loss.to_le_bytes());
                bin.extend_from_slice(&(e.delta.len() as u64).to_le_bytes());
                for &v in &e.delta {
                    bin.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    let crc = crc32(&bin);
    bin.extend_from_slice(&crc.to_le_bytes());
    bin
}

fn decode_elastic_state(bin: &[u8]) -> std::result::Result<ElasticState, String> {
    if bin.len() < 12 || &bin[..8] != MEM_MAGIC {
        return Err("membership.bin is not a photon membership state".into());
    }
    let (body, crc_bytes) = bin.split_at(bin.len() - 4);
    let declared = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != declared {
        return Err("membership.bin failed its integrity check".into());
    }
    let mut cursor = 8usize;
    let take = |cursor: &mut usize, n: usize| -> std::result::Result<&[u8], String> {
        let end = cursor
            .checked_add(n)
            .filter(|&e| e <= body.len())
            .ok_or("membership.bin truncated")?;
        let slice = &body[*cursor..end];
        *cursor = end;
        Ok(slice)
    };
    let u64_at = |cursor: &mut usize| -> std::result::Result<u64, String> {
        Ok(u64::from_le_bytes(
            take(cursor, 8)?.try_into().expect("8 bytes"),
        ))
    };
    let u32_at = |cursor: &mut usize| -> std::result::Result<u32, String> {
        Ok(u32::from_le_bytes(
            take(cursor, 4)?.try_into().expect("4 bytes"),
        ))
    };
    let lease_ms = u64_at(&mut cursor)?;
    let round_ms = u64_at(&mut cursor)?;
    let next_id = u32_at(&mut cursor)?;
    let n_members = u32_at(&mut cursor)? as usize;
    let mut members = Vec::with_capacity(n_members);
    for _ in 0..n_members {
        let id = u32_at(&mut cursor)?;
        let birth = u64_at(&mut cursor)?;
        let lease = u64_at(&mut cursor)?;
        let phase = take(&mut cursor, 1)?[0];
        members.push((id, birth, lease, phase));
    }
    let buffer = match take(&mut cursor, 1)?[0] {
        0 => None,
        1 => {
            let n_entries = u32_at(&mut cursor)? as usize;
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let client_id = u32_at(&mut cursor)?;
                let origin_round = u64_at(&mut cursor)?;
                let arrival_round = u64_at(&mut cursor)?;
                let base_weight =
                    f64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes"));
                let mean_loss =
                    f32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes"));
                let len = u64_at(&mut cursor)? as usize;
                let raw = take(
                    &mut cursor,
                    len.checked_mul(4).ok_or("delta length overflow")?,
                )?;
                let delta = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                entries.push(BufferedUpdate {
                    client_id,
                    origin_round,
                    arrival_round,
                    base_weight,
                    mean_loss,
                    delta,
                });
            }
            Some(entries)
        }
        other => return Err(format!("unknown membership buffer tag {other}")),
    };
    if cursor != body.len() {
        return Err("membership.bin has trailing bytes".into());
    }
    Ok(ElasticState {
        membership: MembershipSnapshot {
            config: crate::membership::MembershipConfig { lease_ms, round_ms },
            next_id,
            members,
        },
        buffer,
    })
}

/// Loads the elastic-membership state saved with a checkpoint, if the
/// manifest declares one (`None` for v1/v2 checkpoints and non-elastic
/// runs).
///
/// # Errors
/// Returns an error if the manifest is unreadable or a declared
/// `membership.bin` is missing or corrupt.
pub fn load_elastic_state(dir: &Path) -> Result<Option<ElasticState>> {
    let manifest_json = fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: CheckpointManifest = serde_json::from_str(&manifest_json)
        .map_err(|e| crate::CoreError::InvalidConfig(format!("bad manifest: {e}")))?;
    if !manifest.has_membership {
        return Ok(None);
    }
    let bin = fs::read(dir.join("membership.bin"))?;
    decode_elastic_state(&bin)
        .map(Some)
        .map_err(crate::CoreError::InvalidConfig)
}

fn encode_hierarchy_state(state: &HierarchyState) -> Vec<u8> {
    let mut bin = Vec::with_capacity(16 + state.dead_shards.len() * 4);
    bin.extend_from_slice(HIER_MAGIC);
    bin.extend_from_slice(&(state.dead_shards.len() as u32).to_le_bytes());
    for &shard in &state.dead_shards {
        bin.extend_from_slice(&shard.to_le_bytes());
    }
    let crc = crc32(&bin);
    bin.extend_from_slice(&crc.to_le_bytes());
    bin
}

fn decode_hierarchy_state(bin: &[u8]) -> std::result::Result<HierarchyState, String> {
    if bin.len() < 16 || &bin[..8] != HIER_MAGIC {
        return Err("hierarchy.bin is not a photon hierarchy state".into());
    }
    let (body, crc_bytes) = bin.split_at(bin.len() - 4);
    let declared = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != declared {
        return Err("hierarchy.bin failed its integrity check".into());
    }
    let n = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")) as usize;
    if body.len() != 12 + n * 4 {
        return Err("hierarchy.bin length disagrees with its header".into());
    }
    let dead_shards: Vec<u32> = body[12..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    if dead_shards.windows(2).any(|w| w[0] >= w[1]) {
        return Err("hierarchy.bin dead set is not strictly ascending".into());
    }
    Ok(HierarchyState { dead_shards })
}

/// Loads the aggregation tree's dead-shard set saved with a checkpoint,
/// if the manifest declares one (`None` for pre-v5 checkpoints and flat
/// runs).
///
/// # Errors
/// Returns an error if the manifest is unreadable or a declared
/// `hierarchy.bin` is missing or corrupt.
pub fn load_hierarchy_state(dir: &Path) -> Result<Option<HierarchyState>> {
    let manifest_json = fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: CheckpointManifest = serde_json::from_str(&manifest_json)
        .map_err(|e| crate::CoreError::InvalidConfig(format!("bad manifest: {e}")))?;
    if !manifest.has_hierarchy {
        return Ok(None);
    }
    let bin = fs::read(dir.join("hierarchy.bin"))?;
    decode_hierarchy_state(&bin)
        .map(Some)
        .map_err(crate::CoreError::InvalidConfig)
}

fn encode_opt_state(state: &ServerOptState) -> Vec<u8> {
    let mut bin = Vec::new();
    bin.extend_from_slice(OPT_MAGIC);
    bin.extend_from_slice(&(state.kind.len() as u32).to_le_bytes());
    bin.extend_from_slice(state.kind.as_bytes());
    bin.extend_from_slice(&state.step.to_le_bytes());
    bin.extend_from_slice(&(state.slots.len() as u32).to_le_bytes());
    for slot in &state.slots {
        bin.extend_from_slice(&(slot.len() as u64).to_le_bytes());
        for &v in slot {
            bin.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&bin);
    bin.extend_from_slice(&crc.to_le_bytes());
    bin
}

fn decode_opt_state(bin: &[u8]) -> std::result::Result<ServerOptState, String> {
    if bin.len() < 12 || &bin[..8] != OPT_MAGIC {
        return Err("server_opt.bin is not a photon optimizer state".into());
    }
    let (body, crc_bytes) = bin.split_at(bin.len() - 4);
    let declared = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != declared {
        return Err("server_opt.bin failed its integrity check".into());
    }
    let mut cursor = 8usize;
    let take = |cursor: &mut usize, n: usize| -> std::result::Result<&[u8], String> {
        let end = cursor
            .checked_add(n)
            .filter(|&e| e <= body.len())
            .ok_or("server_opt.bin truncated")?;
        let slice = &body[*cursor..end];
        *cursor = end;
        Ok(slice)
    };
    let kind_len = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
    let kind = String::from_utf8(take(&mut cursor, kind_len)?.to_vec())
        .map_err(|_| "server_opt.bin kind is not utf-8".to_string())?;
    let step = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes"));
    let n_slots = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        let len = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes")) as usize;
        let raw = take(
            &mut cursor,
            len.checked_mul(4).ok_or("slot length overflow")?,
        )?;
        slots.push(
            raw.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        );
    }
    if cursor != body.len() {
        return Err("server_opt.bin has trailing bytes".into());
    }
    Ok(ServerOptState { kind, step, slots })
}

/// Loads the server optimizer state saved with a checkpoint, if the
/// checkpoint's manifest declares one (`None` for legacy v1 checkpoints
/// and runs saved without optimizer state).
///
/// # Errors
/// Returns an error if the manifest is unreadable or a declared
/// `server_opt.bin` is missing or corrupt.
pub fn load_server_opt_state(dir: &Path) -> Result<Option<ServerOptState>> {
    let manifest_json = fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: CheckpointManifest = serde_json::from_str(&manifest_json)
        .map_err(|e| crate::CoreError::InvalidConfig(format!("bad manifest: {e}")))?;
    if !manifest.has_server_opt {
        return Ok(None);
    }
    let bin = fs::read(dir.join("server_opt.bin"))?;
    decode_opt_state(&bin)
        .map(Some)
        .map_err(crate::CoreError::InvalidConfig)
}

/// Loads a checkpoint saved by [`save_checkpoint`].
///
/// # Errors
/// Returns an error on missing files, bad magic, CRC mismatch, or a
/// manifest/parameter disagreement.
pub fn load_checkpoint(dir: &Path) -> Result<(CheckpointManifest, Vec<f32>)> {
    let manifest_json = fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: CheckpointManifest = serde_json::from_str(&manifest_json)
        .map_err(|e| crate::CoreError::InvalidConfig(format!("bad manifest: {e}")))?;

    let bin = fs::read(dir.join("params.bin"))?;
    if bin.len() < 20 || &bin[..8] != PARAMS_MAGIC {
        return Err(crate::CoreError::InvalidConfig(
            "params.bin is not a photon checkpoint".into(),
        ));
    }
    let (body, crc_bytes) = bin.split_at(bin.len() - 4);
    let declared = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != declared {
        return Err(crate::CoreError::InvalidConfig(
            "params.bin failed its integrity check".into(),
        ));
    }
    let n = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")) as usize;
    if n != manifest.param_count || body.len() != 16 + n * manifest.dtype.bytes_per_param() {
        return Err(crate::CoreError::InvalidConfig(
            "checkpoint length disagrees with manifest".into(),
        ));
    }
    let params = match manifest.dtype {
        Dtype::F32 => body[16..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect(),
        Dtype::Bf16 => body[16..]
            .chunks_exact(2)
            .map(|c| bf16_to_f32(u16::from_le_bytes(c.try_into().expect("2 bytes"))))
            .collect(),
    };
    Ok((manifest, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_nn::ModelConfig;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("photon-core-ckpt").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> FederationConfig {
        FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 2)
    }

    #[test]
    fn roundtrip() {
        let dir = tmp_dir("roundtrip");
        let params: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        save_checkpoint(&dir, &cfg(), 12, &params).unwrap();
        let (manifest, loaded) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.round, 12);
        assert_eq!(manifest.param_count, 100);
        assert_eq!(loaded, params);
        assert_eq!(manifest.config, cfg());
        assert_eq!(manifest.format_version, CHECKPOINT_FORMAT_VERSION);
        assert!(!manifest.has_server_opt);
        assert_eq!(load_server_opt_state(&dir).unwrap(), None);
    }

    #[test]
    fn server_opt_state_roundtrips() {
        let dir = tmp_dir("opt-state");
        let state = ServerOptState {
            kind: "fedadam".into(),
            step: 17,
            slots: vec![vec![0.5, -1.25, 3.0], vec![0.0, 2.5, -0.125]],
        };
        save_checkpoint_with_opt(&dir, &cfg(), 4, &[1.0, 2.0], Some(&state)).unwrap();
        let (manifest, _) = load_checkpoint(&dir).unwrap();
        assert!(manifest.has_server_opt);
        assert_eq!(load_server_opt_state(&dir).unwrap(), Some(state));
    }

    #[test]
    fn legacy_v1_manifest_loads_without_opt_state() {
        let dir = tmp_dir("legacy-v1");
        save_checkpoint(&dir, &cfg(), 3, &[1.0; 8]).unwrap();
        // Rewrite the manifest as a v1 manifest (no format_version /
        // has_server_opt fields).
        let path = dir.join("manifest.json");
        let mut lines: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| {
                !l.contains("format_version")
                    && !l.contains("has_server_opt")
                    && !l.contains("has_membership")
            })
            .map(String::from)
            .collect();
        // The removed fields were last; un-comma the new final field so the
        // manifest stays valid JSON.
        let last_field = lines.len() - 2;
        lines[last_field] = lines[last_field].trim_end_matches(',').to_string();
        fs::write(&path, lines.join("\n")).unwrap();
        let (manifest, params) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.format_version, 0);
        assert!(!manifest.has_server_opt);
        assert_eq!(params, vec![1.0; 8]);
        assert_eq!(load_server_opt_state(&dir).unwrap(), None);
    }

    #[test]
    fn elastic_state_roundtrips() {
        use crate::membership::{MembershipConfig, MembershipRegistry};
        let dir = tmp_dir("elastic");
        let mut reg = MembershipRegistry::new(MembershipConfig::default(), 3);
        reg.begin_round(0, None);
        let elastic = ElasticState {
            membership: reg.snapshot(),
            buffer: Some(vec![BufferedUpdate {
                client_id: 2,
                origin_round: 4,
                arrival_round: 6,
                base_weight: 1.5,
                mean_loss: 2.25,
                delta: vec![0.5, -1.0, f32::NAN], // NaN must survive byte-exact
            }]),
        };
        save_checkpoint_full(&dir, &cfg(), 5, &[1.0, 2.0], None, Some(&elastic), None).unwrap();
        let (manifest, _) = load_checkpoint(&dir).unwrap();
        assert!(manifest.has_membership);
        assert_eq!(manifest.format_version, CHECKPOINT_FORMAT_VERSION);
        let loaded = load_elastic_state(&dir).unwrap().unwrap();
        assert_eq!(loaded.membership, elastic.membership);
        let (a, b) = (
            &loaded.buffer.as_ref().unwrap()[0],
            &elastic.buffer.as_ref().unwrap()[0],
        );
        assert_eq!(a.client_id, b.client_id);
        assert_eq!(a.base_weight, b.base_weight);
        assert_eq!(a.delta[..2], b.delta[..2]);
        assert!(a.delta[2].is_nan(), "NaN coordinate lost in roundtrip");
        // The registry reconstructs exactly.
        assert_eq!(
            MembershipRegistry::from_snapshot(&loaded.membership).unwrap(),
            reg
        );
    }

    #[test]
    fn v2_checkpoints_without_membership_still_load() {
        let dir = tmp_dir("legacy-v2");
        let state = ServerOptState {
            kind: "fedmom".into(),
            step: 2,
            slots: vec![vec![0.5; 4]],
        };
        save_checkpoint_with_opt(&dir, &cfg(), 7, &[2.0; 4], Some(&state)).unwrap();
        // Rewrite the manifest as a v2 manifest: no has_membership or
        // has_hierarchy fields, format_version 2.
        let path = dir.join("manifest.json");
        let json = fs::read_to_string(&path)
            .unwrap()
            .replace("\"format_version\": 5", "\"format_version\": 2")
            .lines()
            .filter(|l| !l.contains("has_membership") && !l.contains("has_hierarchy"))
            .collect::<Vec<_>>()
            .join("\n");
        let json = {
            // Un-comma the new final field so the manifest stays valid.
            let mut lines: Vec<String> = json.lines().map(String::from).collect();
            let last_field = lines.len() - 2;
            lines[last_field] = lines[last_field].trim_end_matches(',').to_string();
            lines.join("\n")
        };
        fs::write(&path, json).unwrap();
        let (manifest, params) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.format_version, 2);
        assert!(!manifest.has_membership);
        assert_eq!(params, vec![2.0; 4]);
        assert_eq!(load_server_opt_state(&dir).unwrap(), Some(state));
        assert!(load_elastic_state(&dir).unwrap().is_none());
    }

    #[test]
    fn hierarchy_state_roundtrips() {
        let dir = tmp_dir("hierarchy");
        let state = HierarchyState {
            dead_shards: vec![1, 5, 6],
        };
        save_checkpoint_full(&dir, &cfg(), 9, &[1.0, 2.0], None, None, Some(&state)).unwrap();
        let (manifest, _) = load_checkpoint(&dir).unwrap();
        assert!(manifest.has_hierarchy);
        assert_eq!(manifest.format_version, CHECKPOINT_FORMAT_VERSION);
        assert_eq!(load_hierarchy_state(&dir).unwrap(), Some(state));

        // A fully-live tree round-trips too (empty dead set).
        let dir = tmp_dir("hierarchy-live");
        let live = HierarchyState::default();
        save_checkpoint_full(&dir, &cfg(), 1, &[1.0], None, None, Some(&live)).unwrap();
        assert_eq!(load_hierarchy_state(&dir).unwrap(), Some(live));
    }

    #[test]
    fn v4_checkpoints_without_hierarchy_still_load() {
        let dir = tmp_dir("legacy-v4");
        save_checkpoint(&dir, &cfg(), 3, &[1.0; 4]).unwrap();
        // Rewrite the manifest as a v4 manifest: no has_hierarchy field,
        // format_version 4.
        let path = dir.join("manifest.json");
        let json = fs::read_to_string(&path)
            .unwrap()
            .replace("\"format_version\": 5", "\"format_version\": 4")
            .lines()
            .filter(|l| !l.contains("has_hierarchy"))
            .collect::<Vec<_>>()
            .join("\n");
        let json = {
            // Un-comma the new final field so the manifest stays valid.
            let mut lines: Vec<String> = json.lines().map(String::from).collect();
            let last_field = lines.len() - 2;
            lines[last_field] = lines[last_field].trim_end_matches(',').to_string();
            lines.join("\n")
        };
        fs::write(&path, json).unwrap();
        let (manifest, params) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.format_version, 4);
        assert!(!manifest.has_hierarchy);
        assert_eq!(params, vec![1.0; 4]);
        assert!(load_hierarchy_state(&dir).unwrap().is_none());
    }

    #[test]
    fn hierarchy_state_corruption_detected() {
        let dir = tmp_dir("hierarchy-corrupt");
        let state = HierarchyState {
            dead_shards: vec![0, 3],
        };
        save_checkpoint_full(&dir, &cfg(), 1, &[1.0], None, None, Some(&state)).unwrap();
        let path = dir.join("hierarchy.bin");
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert!(load_hierarchy_state(&dir).is_err());

        // Truncation is caught too.
        let dir = tmp_dir("hierarchy-torn");
        save_checkpoint_full(&dir, &cfg(), 1, &[1.0], None, None, Some(&state)).unwrap();
        let path = dir.join("hierarchy.bin");
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 6]).unwrap();
        assert!(load_hierarchy_state(&dir).is_err());
    }

    #[test]
    fn elastic_state_corruption_detected() {
        let dir = tmp_dir("elastic-corrupt");
        let reg = crate::membership::MembershipRegistry::new(
            crate::membership::MembershipConfig::default(),
            2,
        );
        let elastic = ElasticState {
            membership: reg.snapshot(),
            buffer: None,
        };
        save_checkpoint_full(&dir, &cfg(), 1, &[1.0], None, Some(&elastic), None).unwrap();
        let path = dir.join("membership.bin");
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert!(load_elastic_state(&dir).is_err());
    }

    #[test]
    fn opt_state_corruption_detected() {
        let dir = tmp_dir("opt-corrupt");
        let state = ServerOptState {
            kind: "fedmom".into(),
            step: 1,
            slots: vec![vec![1.0; 16]],
        };
        save_checkpoint_with_opt(&dir, &cfg(), 1, &[1.0, 2.0], Some(&state)).unwrap();
        let path = dir.join("server_opt.bin");
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert!(load_server_opt_state(&dir).is_err());
    }

    #[test]
    fn bf16_checkpoint_roundtrips_and_halves_storage() {
        let dir = tmp_dir("bf16");
        let mut cfg_bf16 = cfg();
        cfg_bf16.dtype = Dtype::Bf16;
        // Values exactly representable in bf16 restore bit-exactly.
        let params: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.25).collect();
        save_checkpoint(&dir, &cfg_bf16, 9, &params).unwrap();
        let (manifest, loaded) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.dtype, Dtype::Bf16);
        assert_eq!(loaded, params);

        let bf16_size = fs::metadata(dir.join("params.bin")).unwrap().len();
        let dir_f32 = tmp_dir("bf16-vs-f32");
        save_checkpoint(&dir_f32, &cfg(), 9, &params).unwrap();
        let f32_size = fs::metadata(dir_f32.join("params.bin")).unwrap().len();
        assert!(
            (bf16_size as f64) < 0.6 * f32_size as f64,
            "bf16 {bf16_size} vs f32 {f32_size}"
        );
    }

    #[test]
    fn overwrite_replaces_previous() {
        let dir = tmp_dir("overwrite");
        save_checkpoint(&dir, &cfg(), 1, &[1.0, 2.0]).unwrap();
        save_checkpoint(&dir, &cfg(), 2, &[3.0, 4.0, 5.0]).unwrap();
        let (manifest, params) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.round, 2);
        assert_eq!(params, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn corruption_detected() {
        let dir = tmp_dir("corrupt");
        save_checkpoint(&dir, &cfg(), 1, &[1.0; 64]).unwrap();
        let path = dir.join("params.bin");
        let mut raw = fs::read(&path).unwrap();
        raw[30] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert!(load_checkpoint(&dir).is_err());
    }

    #[test]
    fn missing_checkpoint_errors() {
        assert!(load_checkpoint(Path::new("/nonexistent/ckpt")).is_err());
    }

    #[test]
    fn torn_params_write_is_detected() {
        // A crash can leave params.bin truncated mid-write; the length and
        // CRC checks must reject it instead of restoring garbage.
        let dir = tmp_dir("torn-params");
        save_checkpoint(&dir, &cfg(), 2, &[1.0; 64]).unwrap();
        let path = dir.join("params.bin");
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert!(load_checkpoint(&dir).is_err());
    }

    #[test]
    fn torn_manifest_write_is_detected() {
        let dir = tmp_dir("torn-manifest");
        save_checkpoint(&dir, &cfg(), 2, &[1.0; 16]).unwrap();
        let path = dir.join("manifest.json");
        let json = fs::read_to_string(&path).unwrap();
        fs::write(&path, &json[..json.len() / 2]).unwrap();
        assert!(load_checkpoint(&dir).is_err());
    }

    #[test]
    fn stale_tmp_files_do_not_affect_loading() {
        // A crash between write and rename leaves a *.tmp behind; the
        // published checkpoint must load as if it were not there.
        let dir = tmp_dir("stale-tmp");
        let params: Vec<f32> = (0..32).map(|i| i as f32).collect();
        save_checkpoint(&dir, &cfg(), 6, &params).unwrap();
        fs::write(dir.join("params.bin.tmp"), b"torn garbage").unwrap();
        fs::write(dir.join("manifest.json.tmp"), b"{\"round\":").unwrap();
        let (manifest, loaded) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.round, 6);
        assert_eq!(loaded, params);
    }

    #[test]
    fn aggregator_resumes_from_checkpoint() {
        let dir = tmp_dir("resume");
        let cfg = cfg();
        let mut fed = crate::build_federation(&cfg, 2_000).unwrap();
        fed.aggregator.run_round(&mut fed.clients).unwrap();
        save_checkpoint(&dir, &cfg, fed.aggregator.round(), fed.aggregator.params()).unwrap();

        let (manifest, params) = load_checkpoint(&dir).unwrap();
        let mut fresh = crate::Aggregator::new(manifest.config.clone()).unwrap();
        fresh.restore(manifest.round, params).unwrap();
        assert_eq!(fresh.round(), fed.aggregator.round());
        assert_eq!(fresh.params(), fed.aggregator.params());
    }
}
