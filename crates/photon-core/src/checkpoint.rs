//! Global-model checkpointing (Algorithm 1, L.11): a JSON manifest plus a
//! CRC-protected binary parameter file, written atomically enough for the
//! paper's failure-recovery story (write to temp, rename).

use crate::{FederationConfig, Result};
use photon_comms::crc32;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;

const PARAMS_MAGIC: &[u8; 8] = b"PHTNCKP1";

/// Checkpoint metadata saved alongside the parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Completed rounds at save time.
    pub round: u64,
    /// The run configuration.
    pub config: FederationConfig,
    /// Parameter count (sanity check at load).
    pub param_count: usize,
}

/// Saves a checkpoint into `dir` (created if missing): `manifest.json` and
/// `params.bin`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_checkpoint(
    dir: &Path,
    cfg: &FederationConfig,
    round: u64,
    params: &[f32],
) -> Result<()> {
    fs::create_dir_all(dir)?;
    let manifest = CheckpointManifest {
        round,
        config: cfg.clone(),
        param_count: params.len(),
    };
    let manifest_json =
        serde_json::to_string_pretty(&manifest).expect("manifest serialization cannot fail");

    let mut bin = Vec::with_capacity(16 + params.len() * 4);
    bin.extend_from_slice(PARAMS_MAGIC);
    bin.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for &p in params {
        bin.extend_from_slice(&p.to_le_bytes());
    }
    let crc = crc32(&bin);
    bin.extend_from_slice(&crc.to_le_bytes());

    // Write-then-rename so an interrupted save never corrupts the previous
    // checkpoint.
    let tmp_params = dir.join("params.bin.tmp");
    let tmp_manifest = dir.join("manifest.json.tmp");
    fs::File::create(&tmp_params)?.write_all(&bin)?;
    fs::File::create(&tmp_manifest)?.write_all(manifest_json.as_bytes())?;
    fs::rename(&tmp_params, dir.join("params.bin"))?;
    fs::rename(&tmp_manifest, dir.join("manifest.json"))?;
    Ok(())
}

/// Loads a checkpoint saved by [`save_checkpoint`].
///
/// # Errors
/// Returns an error on missing files, bad magic, CRC mismatch, or a
/// manifest/parameter disagreement.
pub fn load_checkpoint(dir: &Path) -> Result<(CheckpointManifest, Vec<f32>)> {
    let manifest_json = fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: CheckpointManifest = serde_json::from_str(&manifest_json)
        .map_err(|e| crate::CoreError::InvalidConfig(format!("bad manifest: {e}")))?;

    let bin = fs::read(dir.join("params.bin"))?;
    if bin.len() < 20 || &bin[..8] != PARAMS_MAGIC {
        return Err(crate::CoreError::InvalidConfig(
            "params.bin is not a photon checkpoint".into(),
        ));
    }
    let (body, crc_bytes) = bin.split_at(bin.len() - 4);
    let declared = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != declared {
        return Err(crate::CoreError::InvalidConfig(
            "params.bin failed its integrity check".into(),
        ));
    }
    let n = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")) as usize;
    if n != manifest.param_count || body.len() != 16 + n * 4 {
        return Err(crate::CoreError::InvalidConfig(
            "checkpoint length disagrees with manifest".into(),
        ));
    }
    let params = body[16..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Ok((manifest, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_nn::ModelConfig;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("photon-core-ckpt").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> FederationConfig {
        FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 2)
    }

    #[test]
    fn roundtrip() {
        let dir = tmp_dir("roundtrip");
        let params: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        save_checkpoint(&dir, &cfg(), 12, &params).unwrap();
        let (manifest, loaded) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.round, 12);
        assert_eq!(manifest.param_count, 100);
        assert_eq!(loaded, params);
        assert_eq!(manifest.config, cfg());
    }

    #[test]
    fn overwrite_replaces_previous() {
        let dir = tmp_dir("overwrite");
        save_checkpoint(&dir, &cfg(), 1, &[1.0, 2.0]).unwrap();
        save_checkpoint(&dir, &cfg(), 2, &[3.0, 4.0, 5.0]).unwrap();
        let (manifest, params) = load_checkpoint(&dir).unwrap();
        assert_eq!(manifest.round, 2);
        assert_eq!(params, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn corruption_detected() {
        let dir = tmp_dir("corrupt");
        save_checkpoint(&dir, &cfg(), 1, &[1.0; 64]).unwrap();
        let path = dir.join("params.bin");
        let mut raw = fs::read(&path).unwrap();
        raw[30] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert!(load_checkpoint(&dir).is_err());
    }

    #[test]
    fn missing_checkpoint_errors() {
        assert!(load_checkpoint(Path::new("/nonexistent/ckpt")).is_err());
    }

    #[test]
    fn aggregator_resumes_from_checkpoint() {
        let dir = tmp_dir("resume");
        let cfg = cfg();
        let mut fed = crate::build_federation(&cfg, 2_000).unwrap();
        fed.aggregator.run_round(&mut fed.clients).unwrap();
        save_checkpoint(&dir, &cfg, fed.aggregator.round(), fed.aggregator.params()).unwrap();

        let (manifest, params) = load_checkpoint(&dir).unwrap();
        let mut fresh = crate::Aggregator::new(manifest.config.clone()).unwrap();
        fresh.restore(manifest.round, params).unwrap();
        assert_eq!(fresh.round(), fed.aggregator.round());
        assert_eq!(fresh.params(), fed.aggregator.params());
    }
}
