//! Deterministic fault injection for the federation engine.
//!
//! The paper's setting assumes accelerators "can be sporadically available
//! throughout a full training cycle" (§2.1) and that billion-scale runs
//! survive intermittent participation and aggregator restarts. This module
//! turns that assumption into a testable contract: a [`FaultSpec`]
//! describes *rates* of client crashes, stragglers, corrupted result
//! frames and aggregator crashes; [`FaultSpec::plan`] expands it into a
//! concrete, seeded [`FaultPlan`] — a pure function of `(spec, population,
//! rounds)` that is independent of thread budgets and query order, so
//! every chaos run replays bit-identically.

use photon_comms::{PartitionKind, PartitionSchedule, PartitionSpec};
use photon_tensor::SeedStream;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Salt separating the link-loss draw column from the client fault chain,
/// so `lossy=` rates never perturb a legacy plan.
const LINK_LOSS_SALT: u64 = 0x6c6f_7373_7921; // "lossy!"

/// Leading transmission attempts a single `lossy=` firing may swallow.
const LINK_LOSS_BURST: usize = 2;

/// Salt separating the sub-aggregator shard fault column from every other
/// draw, so `shardcrash=`/`shardhang=` rates never perturb a legacy plan.
const SHARD_FAULT_SALT: u64 = 0x7368_6172_6421; // "shard!"

/// A fault injected into one client for one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClientFault {
    /// The client disconnects mid-round and never sends a result frame.
    Crash,
    /// The client finishes, but `delay_ms` of simulated wall-time late —
    /// past the round deadline it is dropped into the partial-update path.
    Straggle {
        /// Simulated lateness in milliseconds.
        delay_ms: u64,
    },
    /// The client's first `attempts` result-frame transmissions arrive
    /// corrupted (caught by the Link CRC and retransmitted).
    Corrupt {
        /// Number of leading transmissions that arrive corrupted.
        attempts: u32,
    },
    /// Byzantine: the client reports an all-NaN pseudo-gradient.
    NanUpdate,
    /// Byzantine: the client negates its pseudo-gradient (gradient-ascent
    /// poisoning — numerically healthy, directionally adversarial).
    SignFlip,
    /// Byzantine: the client rescales its pseudo-gradient by `factor`.
    Scale {
        /// Multiplier applied to every delta coordinate.
        factor: f64,
    },
}

impl ClientFault {
    /// Parses the targeted-fault kind grammar: `crash`, `nan-update`,
    /// `sign-flip`, `scale:<x>`, `straggle:<ms>`, `corrupt:<n>`.
    ///
    /// # Errors
    /// Returns a message naming the offending kind or parameter.
    pub fn parse_kind(s: &str) -> Result<ClientFault, String> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let bad = |what: &str| format!("invalid {what} in fault kind {s:?}");
        match (name, param) {
            ("crash", None) => Ok(ClientFault::Crash),
            ("nan-update", None) => Ok(ClientFault::NanUpdate),
            ("sign-flip", None) => Ok(ClientFault::SignFlip),
            ("scale", Some(p)) => {
                let factor: f64 = p.parse().map_err(|_| bad("factor"))?;
                if !factor.is_finite() {
                    return Err(bad("factor"));
                }
                Ok(ClientFault::Scale { factor })
            }
            ("straggle", Some(p)) => Ok(ClientFault::Straggle {
                delay_ms: p.parse().map_err(|_| bad("delay"))?,
            }),
            ("corrupt", Some(p)) => Ok(ClientFault::Corrupt {
                attempts: p.parse().map_err(|_| bad("attempts"))?,
            }),
            _ => Err(format!(
                "unknown fault kind {s:?} \
                 (crash|nan-update|sign-flip|scale:<x>|straggle:<ms>|corrupt:<n>)"
            )),
        }
    }
}

/// A fault pinned to one specific `(round, client)` cell, bypassing the
/// probabilistic draw — `sign-flip@r3c1` injects a sign flip into client 1
/// at round 3 regardless of the seeded rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetedFault {
    /// Round the fault fires in.
    pub round: u64,
    /// Client hit by the fault.
    pub client: u32,
    /// What happens to the client.
    pub fault: ClientFault,
}

impl TargetedFault {
    /// Parses a `kind@rNcM` entry, e.g. `sign-flip@r3c1` or
    /// `scale:50@r2c0`.
    ///
    /// # Errors
    /// Returns a message naming the malformed part.
    pub fn parse(s: &str) -> Result<TargetedFault, String> {
        let (kind, cell) = s
            .split_once('@')
            .ok_or_else(|| format!("targeted fault {s:?} is not kind@rNcM"))?;
        let fault = ClientFault::parse_kind(kind)?;
        let rest = cell
            .strip_prefix('r')
            .ok_or_else(|| format!("targeted fault cell {cell:?} is not rNcM"))?;
        let (round, client) = rest
            .split_once('c')
            .ok_or_else(|| format!("targeted fault cell {cell:?} is not rNcM"))?;
        let round = round
            .parse()
            .map_err(|_| format!("invalid round in {cell:?}"))?;
        let client = client
            .parse()
            .map_err(|_| format!("invalid client in {cell:?}"))?;
        Ok(TargetedFault {
            round,
            client,
            fault,
        })
    }
}

/// Per-run fault rates, expanded into a [`FaultPlan`] by [`FaultSpec::plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-(round, client) probability of a mid-round crash.
    pub p_crash: f64,
    /// Per-(round, client) probability of straggling.
    pub p_straggle: f64,
    /// Straggler delays are uniform in `[1, straggle_ms_max]`.
    pub straggle_ms_max: u64,
    /// Per-(round, client) probability of result-frame corruption.
    pub p_corrupt: f64,
    /// Corrupted transmission counts are uniform in `[1, corrupt_attempts_max]`.
    pub corrupt_attempts_max: u32,
    /// Per-round probability the aggregator crashes after the round.
    pub p_agg_crash: f64,
    /// Per-(round, client) probability of an all-NaN Byzantine update.
    #[serde(default)]
    pub p_nan: f64,
    /// Per-(round, client) probability of a sign-flipped Byzantine update.
    #[serde(default)]
    pub p_sign_flip: f64,
    /// Per-(round, client) probability of a rescaled Byzantine update.
    #[serde(default)]
    pub p_scale: f64,
    /// Multiplier used by `p_scale` draws.
    #[serde(default = "default_scale_factor")]
    pub scale_factor: f64,
    /// Per-round probability a brand-new client joins the federation
    /// (elastic membership; each firing admits exactly one client).
    #[serde(default)]
    pub p_join: f64,
    /// Per-(round, client) probability a founding member *permanently*
    /// departs (unlike a crash, a departed client never returns).
    #[serde(default)]
    pub p_leave: f64,
    /// Rounds with a pinned join (`join@rN` grammar), on top of `p_join`.
    #[serde(default)]
    pub targeted_joins: Vec<u64>,
    /// Pinned departures (`leave@rNcM` grammar). Unlike the probabilistic
    /// draw these may target clients beyond the founding population —
    /// a client that joined mid-run can be told to leave again.
    #[serde(default)]
    pub targeted_leaves: Vec<(u64, u32)>,
    /// Faults pinned to specific `(round, client)` cells, applied on top
    /// of (and overriding) the probabilistic draws.
    #[serde(default)]
    pub targeted: Vec<TargetedFault>,
    /// Per-(round, client) probability the link *loses* leading result
    /// transmissions (`lossy=` grammar). Drawn from its own salted column,
    /// never the client fault chain — loss is a link property, and a spec
    /// with `lossy=0` expands to the exact legacy plan.
    #[serde(default)]
    pub p_link_loss: f64,
    /// Links pinned slow for one round (`slowlink@rNcM` grammar): the
    /// network model multiplies that delivery's latency by the configured
    /// slow factor.
    #[serde(default)]
    pub targeted_slowlinks: Vec<(u64, u32)>,
    /// Partition windows (`partition@rN[-rM]:a|b` grammar, `.`-separated
    /// client ids, `~` marking the severed group asymmetric).
    #[serde(default)]
    pub partitions: Vec<PartitionSpec>,
    /// Process-level connection severs (`netcrash@rNcM` grammar): the
    /// client's transport connection is killed mid-round, forcing a
    /// reconnect with capped backoff and a session resume. Injected at the
    /// transport layer only — the in-process simulator has no connection
    /// to sever, so sim plans are unaffected.
    #[serde(default)]
    pub targeted_netcrashes: Vec<(u64, u32)>,
    /// Process-level silent hangs (`nethang@rNcM` grammar): the client
    /// keeps its connection open but goes mute (heartbeats included) for
    /// the round, exercising heartbeat-miss detection.
    #[serde(default)]
    pub targeted_nethangs: Vec<(u64, u32)>,
    /// Coordinator kills (`coordkill@rN` grammar): the serve process
    /// exits right after committing round N; a restart must restore the
    /// state machine from the checkpoint and re-sync live clients.
    #[serde(default)]
    pub targeted_coordkills: Vec<u64>,
    /// Per-(round, shard) probability a sub-aggregator shard *crashes*
    /// mid-round: its slice of the cohort is lost that round, the shard is
    /// permanently dead, and its orphans are re-parented to siblings from
    /// the next round on. Drawn from its own salted column over
    /// [`FaultSpec::shards`] shards.
    #[serde(default)]
    pub p_shard_crash: f64,
    /// Per-(round, shard) probability a sub-aggregator shard *hangs* for
    /// one round: its slice is lost that round but the shard recovers.
    #[serde(default)]
    pub p_shard_hang: f64,
    /// How many sub-aggregator shards the probabilistic shard columns
    /// cover (set from the hierarchy config; 0 disables the columns).
    #[serde(default)]
    pub shards: usize,
    /// Pinned shard crashes (`shardcrash@rNsM` grammar).
    #[serde(default)]
    pub targeted_shardcrashes: Vec<(u64, u32)>,
    /// Pinned shard hangs (`shardhang@rNsM` grammar).
    #[serde(default)]
    pub targeted_shardhangs: Vec<(u64, u32)>,
    /// Seed for the fault schedule (independent of the training seed).
    pub seed: u64,
}

fn default_scale_factor() -> f64 {
    100.0
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a CLI default).
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            p_crash: 0.0,
            p_straggle: 0.0,
            straggle_ms_max: 1_000,
            p_corrupt: 0.0,
            corrupt_attempts_max: 2,
            p_agg_crash: 0.0,
            p_nan: 0.0,
            p_sign_flip: 0.0,
            p_scale: 0.0,
            scale_factor: default_scale_factor(),
            p_join: 0.0,
            p_leave: 0.0,
            targeted_joins: Vec::new(),
            targeted_leaves: Vec::new(),
            targeted: Vec::new(),
            p_link_loss: 0.0,
            targeted_slowlinks: Vec::new(),
            partitions: Vec::new(),
            targeted_netcrashes: Vec::new(),
            targeted_nethangs: Vec::new(),
            targeted_coordkills: Vec::new(),
            p_shard_crash: 0.0,
            p_shard_hang: 0.0,
            shards: 0,
            targeted_shardcrashes: Vec::new(),
            targeted_shardhangs: Vec::new(),
            seed,
        }
    }

    /// Parses a compact CLI spec: comma-separated entries that are either
    /// `key=value` rate pairs — keys `crash`, `straggle`, `straggle-ms`,
    /// `corrupt`, `corrupt-attempts`, `agg`, `nan`, `sign-flip`, `scale`,
    /// `scale-factor`, `join`, `leave`, `lossy`, `seed` — or targeted
    /// entries: `kind@rNcM` faults, `join@rN` admissions, `leave@rNcM`
    /// departures, `slowlink@rNcM` slow links, and partition windows
    /// `partition@rN[-rM]:a|b` (client ids `.`-separated; `~` before the
    /// severed group makes the partition asymmetric), e.g.
    /// `crash=0.05,lossy=0.1,partition@r2-r5:0|1.2,slowlink@r3c0,seed=9`.
    ///
    /// # Errors
    /// Returns a message naming the offending entry or value.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::none(0);
        for pair in s.split(',').filter(|p| !p.trim().is_empty()) {
            let pair = pair.trim();
            if let Some(window) = pair.strip_prefix("partition@") {
                spec.partitions.push(parse_partition(window)?);
                continue;
            }
            if let Some(cell) = pair.strip_prefix("slowlink@") {
                let parsed = cell
                    .strip_prefix('r')
                    .and_then(|rest| rest.split_once('c'))
                    .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)));
                let (round, client) = parsed
                    .ok_or_else(|| format!("targeted slowlink {pair:?} is not slowlink@rNcM"))?;
                spec.targeted_slowlinks.push((round, client));
                continue;
            }
            if let Some(cell) = pair.strip_prefix("join@") {
                let round = cell
                    .strip_prefix('r')
                    .and_then(|r| r.parse().ok())
                    .ok_or_else(|| format!("targeted join {pair:?} is not join@rN"))?;
                spec.targeted_joins.push(round);
                continue;
            }
            if let Some(cell) = pair.strip_prefix("netcrash@") {
                let parsed = cell
                    .strip_prefix('r')
                    .and_then(|rest| rest.split_once('c'))
                    .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)));
                let (round, client) = parsed
                    .ok_or_else(|| format!("targeted netcrash {pair:?} is not netcrash@rNcM"))?;
                spec.targeted_netcrashes.push((round, client));
                continue;
            }
            if let Some(cell) = pair.strip_prefix("nethang@") {
                let parsed = cell
                    .strip_prefix('r')
                    .and_then(|rest| rest.split_once('c'))
                    .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)));
                let (round, client) = parsed
                    .ok_or_else(|| format!("targeted nethang {pair:?} is not nethang@rNcM"))?;
                spec.targeted_nethangs.push((round, client));
                continue;
            }
            if let Some(cell) = pair.strip_prefix("coordkill@") {
                let round = cell
                    .strip_prefix('r')
                    .and_then(|r| r.parse().ok())
                    .ok_or_else(|| format!("targeted coordkill {pair:?} is not coordkill@rN"))?;
                spec.targeted_coordkills.push(round);
                continue;
            }
            if let Some(cell) = pair.strip_prefix("shardcrash@") {
                let parsed = cell
                    .strip_prefix('r')
                    .and_then(|rest| rest.split_once('s'))
                    .and_then(|(r, s)| Some((r.parse().ok()?, s.parse().ok()?)));
                let (round, shard) = parsed.ok_or_else(|| {
                    format!("targeted shardcrash {pair:?} is not shardcrash@rNsM")
                })?;
                spec.targeted_shardcrashes.push((round, shard));
                continue;
            }
            if let Some(cell) = pair.strip_prefix("shardhang@") {
                let parsed = cell
                    .strip_prefix('r')
                    .and_then(|rest| rest.split_once('s'))
                    .and_then(|(r, s)| Some((r.parse().ok()?, s.parse().ok()?)));
                let (round, shard) = parsed
                    .ok_or_else(|| format!("targeted shardhang {pair:?} is not shardhang@rNsM"))?;
                spec.targeted_shardhangs.push((round, shard));
                continue;
            }
            if let Some(cell) = pair.strip_prefix("leave@") {
                let parsed = cell
                    .strip_prefix('r')
                    .and_then(|rest| rest.split_once('c'))
                    .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)));
                let (round, client) =
                    parsed.ok_or_else(|| format!("targeted leave {pair:?} is not leave@rNcM"))?;
                spec.targeted_leaves.push((round, client));
                continue;
            }
            if pair.contains('@') {
                spec.targeted.push(TargetedFault::parse(pair)?);
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {pair:?} is not key=value"))?;
            let bad = || format!("invalid fault value for {key}: {value:?}");
            match key.trim() {
                "crash" => spec.p_crash = value.parse().map_err(|_| bad())?,
                "straggle" => spec.p_straggle = value.parse().map_err(|_| bad())?,
                "straggle-ms" => spec.straggle_ms_max = value.parse().map_err(|_| bad())?,
                "corrupt" => spec.p_corrupt = value.parse().map_err(|_| bad())?,
                "corrupt-attempts" => {
                    spec.corrupt_attempts_max = value.parse().map_err(|_| bad())?
                }
                "agg" => spec.p_agg_crash = value.parse().map_err(|_| bad())?,
                "nan" => spec.p_nan = value.parse().map_err(|_| bad())?,
                "sign-flip" => spec.p_sign_flip = value.parse().map_err(|_| bad())?,
                "scale" => spec.p_scale = value.parse().map_err(|_| bad())?,
                "scale-factor" => spec.scale_factor = value.parse().map_err(|_| bad())?,
                "join" => spec.p_join = value.parse().map_err(|_| bad())?,
                "leave" => spec.p_leave = value.parse().map_err(|_| bad())?,
                "lossy" => spec.p_link_loss = value.parse().map_err(|_| bad())?,
                "shardcrash" => spec.p_shard_crash = value.parse().map_err(|_| bad())?,
                "shardhang" => spec.p_shard_hang = value.parse().map_err(|_| bad())?,
                "shards" => spec.shards = value.parse().map_err(|_| bad())?,
                "seed" => spec.seed = value.parse().map_err(|_| bad())?,
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks probabilities and ranges.
    ///
    /// # Errors
    /// Returns a description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("crash", self.p_crash),
            ("straggle", self.p_straggle),
            ("corrupt", self.p_corrupt),
            ("agg", self.p_agg_crash),
            ("nan", self.p_nan),
            ("sign-flip", self.p_sign_flip),
            ("scale", self.p_scale),
            ("join", self.p_join),
            ("leave", self.p_leave),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault probability {name}={p} outside [0, 1]"));
            }
        }
        let client_sum = self.p_crash
            + self.p_straggle
            + self.p_corrupt
            + self.p_nan
            + self.p_sign_flip
            + self.p_scale
            + self.p_leave;
        if client_sum > 1.0 {
            return Err("client fault probabilities sum past 1.0".into());
        }
        if self.straggle_ms_max == 0 || self.corrupt_attempts_max == 0 {
            return Err("fault magnitudes must be at least 1".into());
        }
        if !self.scale_factor.is_finite() {
            return Err(format!("scale factor {} must be finite", self.scale_factor));
        }
        if !self.p_link_loss.is_finite() || !(0.0..=1.0).contains(&self.p_link_loss) {
            return Err(format!(
                "fault probability lossy={} outside [0, 1]",
                self.p_link_loss
            ));
        }
        for (name, p) in [
            ("shardcrash", self.p_shard_crash),
            ("shardhang", self.p_shard_hang),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("fault probability {name}={p} outside [0, 1]"));
            }
        }
        if self.p_shard_crash + self.p_shard_hang > 1.0 {
            return Err("shard fault probabilities sum past 1.0".into());
        }
        self.partitions.iter().try_for_each(PartitionSpec::validate)
    }

    /// Expands the rates into a concrete schedule over `population`
    /// clients and `rounds` rounds. Every (round, client) cell draws from
    /// its own stream keyed by `(seed, round, client)`, so the plan is
    /// identical whatever order (or thread budget) it is built or queried
    /// under.
    ///
    /// # Panics
    /// Panics if the spec fails [`FaultSpec::validate`].
    pub fn plan(&self, population: usize, rounds: u64) -> FaultPlan {
        self.validate().expect("invalid fault spec");
        let mut client_faults = BTreeMap::new();
        let mut leaves = BTreeSet::new();
        for round in 0..rounds {
            for client in 0..population as u32 {
                let mut rng = cell_stream(self.seed, round, client);
                let u = rng.next_f64();
                // New thresholds extend the chain AFTER the legacy kinds
                // (Byzantine after the PR-2 set, churn after Byzantine), so
                // a spec with the new rates at zero expands to the exact
                // plan older versions produced.
                let t_crash = self.p_crash;
                let t_straggle = t_crash + self.p_straggle;
                let t_corrupt = t_straggle + self.p_corrupt;
                let t_nan = t_corrupt + self.p_nan;
                let t_flip = t_nan + self.p_sign_flip;
                let t_scale = t_flip + self.p_scale;
                let t_leave = t_scale + self.p_leave;
                let fault = if u < t_crash {
                    Some(ClientFault::Crash)
                } else if u < t_straggle {
                    Some(ClientFault::Straggle {
                        delay_ms: 1 + rng.next_below(self.straggle_ms_max as usize) as u64,
                    })
                } else if u < t_corrupt {
                    Some(ClientFault::Corrupt {
                        attempts: 1 + rng.next_below(self.corrupt_attempts_max as usize) as u32,
                    })
                } else if u < t_nan {
                    Some(ClientFault::NanUpdate)
                } else if u < t_flip {
                    Some(ClientFault::SignFlip)
                } else if u < t_scale {
                    Some(ClientFault::Scale {
                        factor: self.scale_factor,
                    })
                } else if u < t_leave {
                    // A departure is a membership event, not a round fault:
                    // the registry retires the client permanently.
                    leaves.insert((round, client));
                    None
                } else {
                    None
                };
                if let Some(f) = fault {
                    client_faults.insert((round, client), f);
                }
            }
        }
        // Targeted faults override whatever the probabilistic draw chose
        // for their cell; out-of-horizon targets are ignored.
        for t in &self.targeted {
            if t.round < rounds && (t.client as usize) < population {
                client_faults.insert((t.round, t.client), t.fault);
            }
        }
        let agg_crashes = (0..rounds)
            .filter(|&round| cell_stream(self.seed, round, u32::MAX).next_f64() < self.p_agg_crash)
            .collect();
        // Joins draw from their own reserved cell column (client id
        // u32::MAX - 1, disjoint from the agg-crash column): at most one
        // admission per round from the rate, plus any pinned join@rN.
        let mut joins: BTreeMap<u64, u32> = (0..rounds)
            .filter(|&round| cell_stream(self.seed, round, u32::MAX - 1).next_f64() < self.p_join)
            .map(|round| (round, 1))
            .collect();
        for &round in &self.targeted_joins {
            if round < rounds {
                *joins.entry(round).or_insert(0) += 1;
            }
        }
        // Targeted leaves may name any client id — including one only
        // admitted mid-run — so they are not bounded by `population`.
        for &(round, client) in &self.targeted_leaves {
            if round < rounds {
                leaves.insert((round, client));
            }
        }
        // Link losses draw from their own salted column (never the client
        // fault chain), so `lossy=0` leaves legacy plans bit-identical.
        let mut link_losses = BTreeMap::new();
        if self.p_link_loss > 0.0 {
            for round in 0..rounds {
                for client in 0..population as u32 {
                    let mut rng = cell_stream(self.seed ^ LINK_LOSS_SALT, round, client);
                    if rng.next_f64() < self.p_link_loss {
                        let burst = 1 + rng.next_below(LINK_LOSS_BURST) as u32;
                        link_losses.insert((round, client), burst);
                    }
                }
            }
        }
        // Slow links, like targeted leaves, may name clients admitted
        // mid-run, so they are bounded only by the round horizon.
        let slow_links = self
            .targeted_slowlinks
            .iter()
            .filter(|&&(round, _)| round < rounds)
            .copied()
            .collect();
        // Process faults are targeted-only (no probabilistic column), so
        // legacy specs expand to bit-identical plans with empty sets.
        let netcrashes = self
            .targeted_netcrashes
            .iter()
            .filter(|&&(round, _)| round < rounds)
            .copied()
            .collect();
        let nethangs = self
            .targeted_nethangs
            .iter()
            .filter(|&&(round, _)| round < rounds)
            .copied()
            .collect();
        let coordkills = self
            .targeted_coordkills
            .iter()
            .filter(|&&round| round < rounds)
            .copied()
            .collect();
        // Shard faults draw from their own salted (round, shard) column,
        // gated on the rates, so legacy specs expand bit-identically.
        let mut shardcrashes = BTreeSet::new();
        let mut shardhangs = BTreeSet::new();
        if (self.p_shard_crash > 0.0 || self.p_shard_hang > 0.0) && self.shards > 0 {
            for round in 0..rounds {
                for shard in 0..self.shards as u32 {
                    let mut rng = cell_stream(self.seed ^ SHARD_FAULT_SALT, round, shard);
                    let u = rng.next_f64();
                    if u < self.p_shard_crash {
                        shardcrashes.insert((round, shard));
                    } else if u < self.p_shard_crash + self.p_shard_hang {
                        shardhangs.insert((round, shard));
                    }
                }
            }
        }
        for &(round, shard) in &self.targeted_shardcrashes {
            if round < rounds {
                shardcrashes.insert((round, shard));
            }
        }
        for &(round, shard) in &self.targeted_shardhangs {
            if round < rounds {
                shardhangs.insert((round, shard));
            }
        }
        FaultPlan {
            client_faults,
            agg_crashes,
            joins,
            leaves,
            link_losses,
            slow_links,
            partitions: PartitionSchedule::new(self.partitions.clone()),
            netcrashes,
            nethangs,
            coordkills,
            shardcrashes,
            shardhangs,
            rounds,
        }
    }
}

/// Parses a partition window `rN[-rM]:a|b` (after the `partition@`
/// prefix): client ids `.`-separated, `a` the side documented as staying
/// connected (may be empty or `*`), `b` the severed side, `~` before `b`
/// marking the partition asymmetric (severed clients still receive
/// broadcasts but their results are lost).
fn parse_partition(s: &str) -> Result<PartitionSpec, String> {
    let bad = |what: &str| format!("invalid {what} in partition window {s:?}");
    let (span, groups) = s.split_once(':').ok_or_else(|| bad("shape (rN:a|b)"))?;
    let span = span.strip_prefix('r').ok_or_else(|| bad("round span"))?;
    let (start_round, heal_round) = match span.split_once("-r") {
        Some((start, heal)) => (
            start.parse().map_err(|_| bad("start round"))?,
            Some(heal.parse().map_err(|_| bad("heal round"))?),
        ),
        None => (span.parse().map_err(|_| bad("start round"))?, None),
    };
    let (a, b) = groups.split_once('|').ok_or_else(|| bad("groups (a|b)"))?;
    let (b, asymmetric) = match b.strip_prefix('~') {
        Some(rest) => (rest, true),
        None => (b, false),
    };
    let parse_ids = |side: &str| -> Result<Vec<u32>, String> {
        if side.is_empty() || side == "*" {
            return Ok(Vec::new());
        }
        side.split('.')
            .map(|id| id.parse().map_err(|_| bad("client id")))
            .collect()
    };
    let spec = PartitionSpec {
        start_round,
        heal_round,
        connected: parse_ids(a)?,
        severed: parse_ids(b)?,
        asymmetric,
    };
    spec.validate()?;
    Ok(spec)
}

/// Derives the independent stream for one (round, client) cell.
fn cell_stream(seed: u64, round: u64, client: u32) -> SeedStream {
    // FNV-style mix over the cell coordinates: pure, order-free.
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for byte in round.to_le_bytes().into_iter().chain(client.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SeedStream::new(h)
}

/// A concrete, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    client_faults: BTreeMap<(u64, u32), ClientFault>,
    agg_crashes: BTreeSet<u64>,
    joins: BTreeMap<u64, u32>,
    leaves: BTreeSet<(u64, u32)>,
    link_losses: BTreeMap<(u64, u32), u32>,
    slow_links: BTreeSet<(u64, u32)>,
    partitions: PartitionSchedule,
    netcrashes: BTreeSet<(u64, u32)>,
    nethangs: BTreeSet<(u64, u32)>,
    coordkills: BTreeSet<u64>,
    shardcrashes: BTreeSet<(u64, u32)>,
    shardhangs: BTreeSet<(u64, u32)>,
    rounds: u64,
}

impl FaultPlan {
    /// The fault (if any) scheduled for `client` at `round`.
    pub fn client_fault(&self, round: u64, client: u32) -> Option<ClientFault> {
        self.client_faults.get(&(round, client)).copied()
    }

    /// Whether the aggregator is scheduled to crash right after `round`
    /// completes (before the next checkpoint).
    pub fn aggregator_crashes_after(&self, round: u64) -> bool {
        self.agg_crashes.contains(&round)
    }

    /// How many new clients join the federation at `round`.
    pub fn joins_at(&self, round: u64) -> u32 {
        self.joins.get(&round).copied().unwrap_or(0)
    }

    /// The clients scheduled to permanently depart at `round`, ascending.
    pub fn leaves_at(&self, round: u64) -> Vec<u32> {
        self.leaves
            .range((round, 0)..=(round, u32::MAX))
            .map(|&(_, c)| c)
            .collect()
    }

    /// Number of scheduled client faults.
    pub fn client_fault_count(&self) -> usize {
        self.client_faults.len()
    }

    /// Number of scheduled aggregator crashes.
    pub fn agg_crash_count(&self) -> usize {
        self.agg_crashes.len()
    }

    /// Number of scheduled joins across the horizon.
    pub fn join_count(&self) -> usize {
        self.joins.values().map(|&n| n as usize).sum()
    }

    /// Number of scheduled permanent departures.
    pub fn leave_count(&self) -> usize {
        self.leaves.len()
    }

    /// Leading result transmissions lost on `client`'s link at `round`
    /// (0 = the link delivers normally).
    pub fn link_loss(&self, round: u64, client: u32) -> u32 {
        self.link_losses.get(&(round, client)).copied().unwrap_or(0)
    }

    /// Whether `client`'s link is pinned slow at `round`.
    pub fn slowlink_at(&self, round: u64, client: u32) -> bool {
        self.slow_links.contains(&(round, client))
    }

    /// The scheduled partition windows.
    pub fn partitions(&self) -> &PartitionSchedule {
        &self.partitions
    }

    /// Number of cells scheduled to lose transmissions.
    pub fn link_loss_count(&self) -> usize {
        self.link_losses.len()
    }

    /// Number of cells pinned slow.
    pub fn slowlink_count(&self) -> usize {
        self.slow_links.len()
    }

    /// Number of scheduled partition windows.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Whether `client`'s transport connection is scheduled to be severed
    /// mid-round at `round` (reconnect + session resume expected).
    pub fn netcrash_at(&self, round: u64, client: u32) -> bool {
        self.netcrashes.contains(&(round, client))
    }

    /// Whether `client` is scheduled to go silent (socket open, no frames
    /// or heartbeats) at `round`.
    pub fn nethang_at(&self, round: u64, client: u32) -> bool {
        self.nethangs.contains(&(round, client))
    }

    /// Whether the coordinator process is scheduled to die right after
    /// committing `round`.
    pub fn coordkill_after(&self, round: u64) -> bool {
        self.coordkills.contains(&round)
    }

    /// Number of scheduled transport connection severs.
    pub fn netcrash_count(&self) -> usize {
        self.netcrashes.len()
    }

    /// Number of scheduled transport hangs.
    pub fn nethang_count(&self) -> usize {
        self.nethangs.len()
    }

    /// Number of scheduled coordinator kills.
    pub fn coordkill_count(&self) -> usize {
        self.coordkills.len()
    }

    /// Whether sub-aggregator `shard` is scheduled to crash mid-round at
    /// `round` (permanent death; orphans re-parent next round).
    pub fn shardcrash_at(&self, round: u64, shard: u32) -> bool {
        self.shardcrashes.contains(&(round, shard))
    }

    /// Whether sub-aggregator `shard` is scheduled to hang for `round`
    /// (its slice is lost that round only).
    pub fn shardhang_at(&self, round: u64, shard: u32) -> bool {
        self.shardhangs.contains(&(round, shard))
    }

    /// Number of scheduled shard crashes.
    pub fn shardcrash_count(&self) -> usize {
        self.shardcrashes.len()
    }

    /// Number of scheduled shard hangs.
    pub fn shardhang_count(&self) -> usize {
        self.shardhangs.len()
    }

    /// The planning horizon in rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Read-only fault oracle handed to the aggregator's round loop. Queries
/// are pure, so the injector can be shared across client threads.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a prepared plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// Builds the plan for `spec` over a run shape.
    pub fn from_spec(spec: &FaultSpec, population: usize, rounds: u64) -> Self {
        FaultInjector::new(spec.plan(population, rounds))
    }

    /// The fault (if any) scheduled for `client` at `round`.
    pub fn client_fault(&self, round: u64, client: u32) -> Option<ClientFault> {
        self.plan.client_fault(round, client)
    }

    /// Whether the aggregator crashes after `round`.
    pub fn aggregator_crashes_after(&self, round: u64) -> bool {
        self.plan.aggregator_crashes_after(round)
    }

    /// How many clients join at `round`.
    pub fn joins_at(&self, round: u64) -> u32 {
        self.plan.joins_at(round)
    }

    /// The clients permanently departing at `round`.
    pub fn leaves_at(&self, round: u64) -> Vec<u32> {
        self.plan.leaves_at(round)
    }

    /// Leading result transmissions lost on `client`'s link at `round`.
    pub fn link_loss(&self, round: u64, client: u32) -> u32 {
        self.plan.link_loss(round, client)
    }

    /// Whether `client`'s link is pinned slow at `round`.
    pub fn slowlink_at(&self, round: u64, client: u32) -> bool {
        self.plan.slowlink_at(round, client)
    }

    /// The severing in effect for `client` at `round`, if any.
    pub fn partition_state(&self, round: u64, client: u32) -> Option<PartitionKind> {
        self.plan.partitions().state(round, client)
    }

    /// Whether a partition window heals exactly at `round`.
    pub fn partition_heals_at(&self, round: u64) -> bool {
        self.plan.partitions().heals_at(round)
    }

    /// Whether `client`'s transport connection is severed at `round`.
    pub fn netcrash_at(&self, round: u64, client: u32) -> bool {
        self.plan.netcrash_at(round, client)
    }

    /// Whether `client` goes silent at `round`.
    pub fn nethang_at(&self, round: u64, client: u32) -> bool {
        self.plan.nethang_at(round, client)
    }

    /// Whether the coordinator process dies after committing `round`.
    pub fn coordkill_after(&self, round: u64) -> bool {
        self.plan.coordkill_after(round)
    }

    /// Whether sub-aggregator `shard` crashes mid-round at `round`.
    pub fn shardcrash_at(&self, round: u64, shard: u32) -> bool {
        self.plan.shardcrash_at(round, shard)
    }

    /// Whether sub-aggregator `shard` hangs for `round`.
    pub fn shardhang_at(&self, round: u64, shard: u32) -> bool {
        self.plan.shardhang_at(round, shard)
    }

    /// The underlying schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_spec(seed: u64) -> FaultSpec {
        FaultSpec {
            p_crash: 0.1,
            p_straggle: 0.2,
            straggle_ms_max: 500,
            p_corrupt: 0.15,
            corrupt_attempts_max: 3,
            p_agg_crash: 0.1,
            ..FaultSpec::none(seed)
        }
    }

    #[test]
    fn plans_replay_bit_identically() {
        let a = chaos_spec(7).plan(16, 50);
        let b = chaos_spec(7).plan(16, 50);
        assert_eq!(a, b);
        assert!(a.client_fault_count() > 0, "chaos spec injected nothing");
    }

    #[test]
    fn different_seeds_differ() {
        let a = chaos_spec(7).plan(16, 50);
        let b = chaos_spec(8).plan(16, 50);
        assert_ne!(a, b);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = chaos_spec(3).plan(32, 200);
        let cells = 32.0 * 200.0;
        let frac = plan.client_fault_count() as f64 / cells;
        // p_crash + p_straggle + p_corrupt = 0.45.
        assert!((frac - 0.45).abs() < 0.05, "fault rate {frac}");
        let agg_frac = plan.agg_crash_count() as f64 / 200.0;
        assert!((agg_frac - 0.1).abs() < 0.08, "agg crash rate {agg_frac}");
    }

    #[test]
    fn zero_spec_injects_nothing() {
        let plan = FaultSpec::none(9).plan(8, 100);
        assert_eq!(plan.client_fault_count(), 0);
        assert_eq!(plan.agg_crash_count(), 0);
    }

    #[test]
    fn all_crash_spec_crashes_everyone() {
        let mut spec = FaultSpec::none(1);
        spec.p_crash = 1.0;
        let plan = spec.plan(4, 5);
        for round in 0..5 {
            for client in 0..4 {
                assert_eq!(plan.client_fault(round, client), Some(ClientFault::Crash));
            }
        }
    }

    #[test]
    fn fault_magnitudes_in_range() {
        let plan = chaos_spec(11).plan(16, 100);
        for round in 0..100 {
            for client in 0..16 {
                match plan.client_fault(round, client) {
                    Some(ClientFault::Straggle { delay_ms }) => {
                        assert!((1..=500).contains(&delay_ms))
                    }
                    Some(ClientFault::Corrupt { attempts }) => {
                        assert!((1..=3).contains(&attempts))
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn parse_roundtrips_the_cli_grammar() {
        let spec = FaultSpec::parse(
            "crash=0.05,straggle=0.1,straggle-ms=200,corrupt=0.02,agg=0.01,seed=4",
        )
        .unwrap();
        assert_eq!(spec.p_crash, 0.05);
        assert_eq!(spec.p_straggle, 0.1);
        assert_eq!(spec.straggle_ms_max, 200);
        assert_eq!(spec.p_corrupt, 0.02);
        assert_eq!(spec.p_agg_crash, 0.01);
        assert_eq!(spec.seed, 4);
        assert!(FaultSpec::parse("crash=2.0").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("crash").is_err());
        assert!(FaultSpec::parse("crash=0.5,straggle=0.4,corrupt=0.3").is_err());
    }

    #[test]
    fn byzantine_rates_expand_into_byzantine_faults() {
        let spec = FaultSpec {
            p_nan: 0.1,
            p_sign_flip: 0.1,
            p_scale: 0.1,
            scale_factor: 40.0,
            ..FaultSpec::none(13)
        };
        let plan = spec.plan(16, 100);
        let mut nans = 0;
        let mut flips = 0;
        let mut scales = 0;
        for round in 0..100 {
            for client in 0..16 {
                match plan.client_fault(round, client) {
                    Some(ClientFault::NanUpdate) => nans += 1,
                    Some(ClientFault::SignFlip) => flips += 1,
                    Some(ClientFault::Scale { factor }) => {
                        assert_eq!(factor, 40.0);
                        scales += 1;
                    }
                    Some(_) => panic!("unexpected legacy fault"),
                    None => {}
                }
            }
        }
        assert!(nans > 0 && flips > 0 && scales > 0);
    }

    #[test]
    fn zero_byzantine_rates_leave_legacy_plans_unchanged() {
        // The threshold chain appends the new kinds after the old ones, so
        // a spec without Byzantine rates expands to the exact legacy plan.
        let legacy = chaos_spec(7).plan(16, 50);
        let extended = FaultSpec {
            scale_factor: 999.0, // irrelevant while p_scale == 0
            ..chaos_spec(7)
        }
        .plan(16, 50);
        assert_eq!(legacy, extended);
    }

    #[test]
    fn targeted_faults_override_the_draw() {
        let spec = FaultSpec {
            targeted: vec![
                TargetedFault::parse("sign-flip@r3c1").unwrap(),
                TargetedFault::parse("scale:50@r2c0").unwrap(),
                TargetedFault::parse("nan-update@r99c0").unwrap(), // out of horizon
            ],
            ..FaultSpec::none(5)
        };
        let plan = spec.plan(4, 6);
        assert_eq!(plan.client_fault(3, 1), Some(ClientFault::SignFlip));
        assert_eq!(
            plan.client_fault(2, 0),
            Some(ClientFault::Scale { factor: 50.0 })
        );
        assert_eq!(plan.client_fault_count(), 2, "out-of-horizon target kept");
    }

    #[test]
    fn targeted_grammar_roundtrips() {
        let spec = FaultSpec::parse("sign-flip@r3c1,crash=0.05,scale:2.5@r0c2,seed=8").unwrap();
        assert_eq!(spec.seed, 8);
        assert_eq!(spec.p_crash, 0.05);
        assert_eq!(
            spec.targeted,
            vec![
                TargetedFault {
                    round: 3,
                    client: 1,
                    fault: ClientFault::SignFlip
                },
                TargetedFault {
                    round: 0,
                    client: 2,
                    fault: ClientFault::Scale { factor: 2.5 }
                },
            ]
        );
        assert_eq!(
            ClientFault::parse_kind("straggle:75").unwrap(),
            ClientFault::Straggle { delay_ms: 75 }
        );
        assert_eq!(
            ClientFault::parse_kind("corrupt:2").unwrap(),
            ClientFault::Corrupt { attempts: 2 }
        );
        assert!(TargetedFault::parse("sign-flip@x3c1").is_err());
        assert!(TargetedFault::parse("sign-flip@r3").is_err());
        assert!(TargetedFault::parse("warp@r1c1").is_err());
        assert!(ClientFault::parse_kind("scale:inf").is_err());
        assert!(FaultSpec::parse("nan=0.5,sign-flip=0.4,scale=0.3").is_err());
    }

    #[test]
    fn process_fault_grammar_parses_and_plans() {
        let spec =
            FaultSpec::parse("netcrash@r2c1,nethang@r3c0,coordkill@r4,crash=0.05,seed=9").unwrap();
        assert_eq!(spec.targeted_netcrashes, vec![(2, 1)]);
        assert_eq!(spec.targeted_nethangs, vec![(3, 0)]);
        assert_eq!(spec.targeted_coordkills, vec![4]);
        let plan = spec.plan(4, 8);
        assert!(plan.netcrash_at(2, 1));
        assert!(!plan.netcrash_at(2, 0));
        assert!(plan.nethang_at(3, 0));
        assert!(plan.coordkill_after(4));
        assert!(!plan.coordkill_after(3));
        assert_eq!(plan.netcrash_count(), 1);
        assert_eq!(plan.nethang_count(), 1);
        assert_eq!(plan.coordkill_count(), 1);
        // Out-of-horizon targets are dropped, like every other targeted kind.
        let short = spec.plan(4, 2);
        assert_eq!(short.netcrash_count(), 0);
        assert_eq!(short.coordkill_count(), 0);
        // Malformed cells are named in the error.
        assert!(FaultSpec::parse("netcrash@r2").is_err());
        assert!(FaultSpec::parse("nethang@x2c1").is_err());
        assert!(FaultSpec::parse("coordkill@c1").is_err());
    }

    #[test]
    fn process_faults_leave_legacy_plans_unchanged() {
        // Process faults are targeted-only: a spec without them expands to
        // the exact legacy plan, so sim-mode runs stay bit-identical.
        let legacy = chaos_spec(7).plan(16, 50);
        let extended = FaultSpec {
            targeted_netcrashes: Vec::new(),
            targeted_nethangs: Vec::new(),
            targeted_coordkills: Vec::new(),
            ..chaos_spec(7)
        }
        .plan(16, 50);
        assert_eq!(legacy, extended);
        assert_eq!(legacy.netcrash_count(), 0);
        assert_eq!(legacy.nethang_count(), 0);
        assert_eq!(legacy.coordkill_count(), 0);
    }

    #[test]
    fn zero_churn_rates_leave_legacy_plans_unchanged() {
        // Churn thresholds extend the chain after every older kind, so a
        // churn-free spec expands to the exact legacy plan.
        let legacy = chaos_spec(7).plan(16, 50);
        let extended = FaultSpec {
            targeted_joins: Vec::new(),
            targeted_leaves: Vec::new(),
            ..chaos_spec(7)
        }
        .plan(16, 50);
        assert_eq!(legacy, extended);
        assert_eq!(legacy.join_count(), 0);
        assert_eq!(legacy.leave_count(), 0);
    }

    #[test]
    fn churn_rates_expand_into_joins_and_leaves() {
        let spec = FaultSpec {
            p_join: 0.3,
            p_leave: 0.02,
            ..FaultSpec::none(17)
        };
        let plan = spec.plan(16, 100);
        let joins = plan.join_count() as f64 / 100.0;
        assert!((joins - 0.3).abs() < 0.12, "join rate {joins}");
        let leaves = plan.leave_count() as f64 / (16.0 * 100.0);
        assert!((leaves - 0.02).abs() < 0.015, "leave rate {leaves}");
        // A leave is a membership event, never also a round fault.
        for round in 0..100 {
            for client in plan.leaves_at(round) {
                assert_eq!(plan.client_fault(round, client), None);
            }
        }
        // Plans replay bit-identically with churn enabled.
        assert_eq!(plan, spec.plan(16, 100));
    }

    #[test]
    fn churn_grammar_parses_and_targets_fire() {
        let spec =
            FaultSpec::parse("join=0.1,leave=0.01,join@r4,join@r4,leave@r6c20,seed=3").unwrap();
        assert_eq!(spec.p_join, 0.1);
        assert_eq!(spec.p_leave, 0.01);
        assert_eq!(spec.targeted_joins, vec![4, 4]);
        assert_eq!(spec.targeted_leaves, vec![(6, 20)]);
        let plan = FaultSpec {
            targeted_joins: vec![4, 4, 99],
            targeted_leaves: vec![(6, 20), (99, 0)],
            ..FaultSpec::none(3)
        }
        .plan(8, 10);
        assert_eq!(plan.joins_at(4), 2, "both pinned joins fire");
        assert_eq!(plan.joins_at(5), 0);
        // Targeted leaves are not bounded by the founding population:
        // client 20 joined mid-run and can still be told to depart.
        assert_eq!(plan.leaves_at(6), vec![20]);
        assert_eq!(plan.join_count(), 2, "out-of-horizon join dropped");
        assert_eq!(plan.leave_count(), 1, "out-of-horizon leave dropped");
        assert!(FaultSpec::parse("join@x4").is_err());
        assert!(FaultSpec::parse("leave@r6").is_err());
        assert!(FaultSpec::parse("join=1.5").is_err());
        assert!(FaultSpec::parse("crash=0.6,leave=0.5").is_err(), "sum cap");
    }

    #[test]
    fn network_grammar_parses_and_expands() {
        let spec = FaultSpec::parse(
            "lossy=0.2,partition@r2-r5:0|1.2,partition@r6:*|~3,slowlink@r3c0,seed=9",
        )
        .unwrap();
        assert_eq!(spec.p_link_loss, 0.2);
        assert_eq!(spec.targeted_slowlinks, vec![(3, 0)]);
        assert_eq!(spec.partitions.len(), 2);
        assert_eq!(spec.partitions[0].start_round, 2);
        assert_eq!(spec.partitions[0].heal_round, Some(5));
        assert_eq!(spec.partitions[0].severed, vec![1, 2]);
        assert!(!spec.partitions[0].asymmetric);
        assert_eq!(spec.partitions[1].heal_round, None);
        assert!(spec.partitions[1].asymmetric);

        let plan = spec.plan(8, 10);
        assert!(plan.link_loss_count() > 0, "lossy=0.2 scheduled nothing");
        assert_eq!(plan.slowlink_count(), 1);
        assert!(plan.slowlink_at(3, 0));
        assert!(!plan.slowlink_at(3, 1));
        assert_eq!(plan.partition_count(), 2);
        assert_eq!(
            plan.partitions().state(3, 1),
            Some(PartitionKind::Full),
            "client 1 severed during the window"
        );
        assert_eq!(plan.partitions().state(5, 1), None, "healed");
        assert_eq!(
            plan.partitions().state(7, 3),
            Some(PartitionKind::Asymmetric)
        );
        // Loss bursts stay within the configured burst cap.
        for round in 0..10 {
            for client in 0..8 {
                let burst = plan.link_loss(round, client);
                assert!(burst <= 1 + LINK_LOSS_BURST as u32);
            }
        }
        // Malformed windows are rejected.
        assert!(FaultSpec::parse("partition@r2").is_err());
        assert!(
            FaultSpec::parse("partition@r2:0|").is_err(),
            "empty severed"
        );
        assert!(
            FaultSpec::parse("partition@r5-r2:0|1").is_err(),
            "heal<start"
        );
        assert!(FaultSpec::parse("partition@r2:1|1").is_err(), "overlap");
        assert!(FaultSpec::parse("slowlink@r3").is_err());
        assert!(FaultSpec::parse("lossy=1.5").is_err());
    }

    #[test]
    fn zero_network_rates_leave_legacy_plans_unchanged() {
        // `lossy=` draws from its own salted column and partitions ride in
        // separate fields, so a network-free spec expands to the exact
        // legacy plan.
        let legacy = chaos_spec(7).plan(16, 50);
        let extended = FaultSpec {
            p_link_loss: 0.0,
            targeted_slowlinks: Vec::new(),
            partitions: Vec::new(),
            ..chaos_spec(7)
        }
        .plan(16, 50);
        assert_eq!(legacy, extended);
        assert_eq!(legacy.link_loss_count(), 0);
        assert_eq!(legacy.partition_count(), 0);
    }

    #[test]
    fn link_loss_column_is_independent_of_the_fault_chain() {
        // Turning `lossy=` on must not move a single client fault: the
        // loss draw lives in a disjoint salted column.
        let base = chaos_spec(7);
        let lossy = FaultSpec {
            p_link_loss: 0.5,
            ..chaos_spec(7)
        };
        let a = base.plan(16, 50);
        let b = lossy.plan(16, 50);
        assert!(b.link_loss_count() > 0);
        for round in 0..50 {
            for client in 0..16 {
                assert_eq!(a.client_fault(round, client), b.client_fault(round, client));
            }
        }
        assert_eq!(a.agg_crash_count(), b.agg_crash_count());
        // Loss plans themselves replay bit-identically.
        assert_eq!(b, lossy.plan(16, 50));
    }

    #[test]
    fn shard_fault_grammar_parses_and_plans() {
        let spec = FaultSpec::parse(
            "shardcrash=0.1,shardhang=0.2,shards=8,shardcrash@r3s2,shardhang@r1s0",
        )
        .unwrap();
        assert_eq!(spec.p_shard_crash, 0.1);
        assert_eq!(spec.p_shard_hang, 0.2);
        assert_eq!(spec.shards, 8);
        assert_eq!(spec.targeted_shardcrashes, vec![(3, 2)]);
        assert_eq!(spec.targeted_shardhangs, vec![(1, 0)]);
        let plan = spec.plan(16, 10);
        assert!(plan.shardcrash_at(3, 2));
        assert!(plan.shardhang_at(1, 0));
        assert!(plan.shardcrash_count() + plan.shardhang_count() >= 2);
        // The probabilistic columns replay bit-identically.
        assert_eq!(plan, spec.plan(16, 10));
        // Malformed cells are rejected.
        assert!(FaultSpec::parse("shardcrash@r3c2").is_err());
        assert!(FaultSpec::parse("shardhang@s2").is_err());
        assert!(FaultSpec::parse("shardcrash=1.5").is_err());
    }

    #[test]
    fn zero_shard_rates_leave_legacy_plans_unchanged() {
        // Shard faults draw from their own salted (round, shard) column
        // and are gated on the rates, so a shard-free spec expands to the
        // exact legacy plan — and turning them on moves no client fault.
        let legacy = chaos_spec(7).plan(16, 50);
        let extended = FaultSpec {
            p_shard_crash: 0.0,
            p_shard_hang: 0.0,
            shards: 4,
            ..chaos_spec(7)
        }
        .plan(16, 50);
        assert_eq!(legacy, extended);
        let sharded = FaultSpec {
            p_shard_crash: 0.3,
            p_shard_hang: 0.3,
            shards: 4,
            ..chaos_spec(7)
        }
        .plan(16, 50);
        assert!(sharded.shardcrash_count() > 0);
        assert!(sharded.shardhang_count() > 0);
        for round in 0..50 {
            for client in 0..16 {
                assert_eq!(
                    legacy.client_fault(round, client),
                    sharded.client_fault(round, client)
                );
            }
        }
        assert_eq!(legacy.agg_crash_count(), sharded.agg_crash_count());
    }

    #[test]
    fn shard_injector_delegates_to_plan() {
        let spec = FaultSpec {
            p_shard_crash: 0.2,
            shards: 4,
            targeted_shardhangs: vec![(2, 1)],
            ..FaultSpec::none(5)
        };
        let injector = FaultInjector::from_spec(&spec, 8, 10);
        let plan = spec.plan(8, 10);
        for round in 0..10 {
            for shard in 0..4 {
                assert_eq!(
                    injector.shardcrash_at(round, shard),
                    plan.shardcrash_at(round, shard)
                );
                assert_eq!(
                    injector.shardhang_at(round, shard),
                    plan.shardhang_at(round, shard)
                );
            }
        }
        assert!(injector.shardhang_at(2, 1));
    }

    #[test]
    fn injector_delegates_to_plan() {
        let spec = chaos_spec(2);
        let injector = FaultInjector::from_spec(&spec, 8, 20);
        let plan = spec.plan(8, 20);
        for round in 0..20 {
            assert_eq!(
                injector.aggregator_crashes_after(round),
                plan.aggregator_crashes_after(round)
            );
            for client in 0..8 {
                assert_eq!(
                    injector.client_fault(round, client),
                    plan.client_fault(round, client)
                );
            }
        }
    }
}
