use std::fmt;

/// Errors surfaced by the Photon federation engine.
#[derive(Debug)]
pub enum CoreError {
    /// A configuration value is inconsistent.
    InvalidConfig(String),
    /// A Link frame failed to decode.
    Wire(photon_comms::WireError),
    /// Secure aggregation failed.
    SecureAgg(photon_comms::SecureAggError),
    /// A client thread panicked or disconnected mid-round.
    ClientFailure(String),
    /// Checkpoint I/O failed.
    Checkpoint(std::io::Error),
    /// The loss-spike watchdog detected divergence before applying the
    /// round's aggregate; the recovery driver rolls back to the last-good
    /// checkpoint.
    Divergence {
        /// Round the watchdog fired in (the round was not applied).
        round: u64,
        /// Human-readable description of the tripped check.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Wire(e) => write!(f, "link protocol error: {e}"),
            CoreError::SecureAgg(e) => write!(f, "secure aggregation error: {e}"),
            CoreError::ClientFailure(msg) => write!(f, "client failure: {msg}"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint i/o failed: {e}"),
            CoreError::Divergence { round, reason } => {
                write!(f, "divergence detected at round {round}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Wire(e) => Some(e),
            CoreError::SecureAgg(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<photon_comms::WireError> for CoreError {
    fn from(e: photon_comms::WireError) -> Self {
        CoreError::Wire(e)
    }
}

impl From<photon_comms::SecureAggError> for CoreError {
    fn from(e: photon_comms::SecureAggError) -> Self {
        CoreError::SecureAgg(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::InvalidConfig("population is zero".into());
        assert!(e.to_string().contains("population"));
        let e: CoreError = photon_comms::WireError::BadMagic.into();
        assert!(e.to_string().contains("magic"));
        let e = CoreError::Divergence {
            round: 4,
            reason: "mean client loss 9.7 > 3x EMA 2.1".into(),
        };
        assert!(e.to_string().contains("round 4"));
        assert!(e.to_string().contains("EMA"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
