use std::fmt;

/// Errors surfaced by the Photon federation engine.
#[derive(Debug)]
pub enum CoreError {
    /// A configuration value is inconsistent.
    InvalidConfig(String),
    /// A Link frame failed to decode.
    Wire(photon_comms::WireError),
    /// Secure aggregation failed.
    SecureAgg(photon_comms::SecureAggError),
    /// A client thread panicked or disconnected mid-round.
    ClientFailure(String),
    /// Checkpoint I/O failed.
    Checkpoint(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Wire(e) => write!(f, "link protocol error: {e}"),
            CoreError::SecureAgg(e) => write!(f, "secure aggregation error: {e}"),
            CoreError::ClientFailure(msg) => write!(f, "client failure: {msg}"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Wire(e) => Some(e),
            CoreError::SecureAgg(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<photon_comms::WireError> for CoreError {
    fn from(e: photon_comms::WireError) -> Self {
        CoreError::Wire(e)
    }
}

impl From<photon_comms::SecureAggError> for CoreError {
    fn from(e: photon_comms::SecureAggError) -> Self {
        CoreError::SecureAgg(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::InvalidConfig("population is zero".into());
        assert!(e.to_string().contains("population"));
        let e: CoreError = photon_comms::WireError::BadMagic.into();
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
