use photon_data::{Batch, TokenStream};
use photon_nn::{Activations, Gpt, ModelConfig};
use photon_optim::{clip_global_norm, AdamW, AdamWConfig, LrSchedule, Optimizer};
use photon_tensor::SeedStream;

/// The centralized pre-training baseline Photon is compared against:
/// one optimizer stepping on a large global batch every step (Table 5's
/// `Batch Size Cent` column). For the data-parallel variant with explicit
/// multi-worker gradient all-reduce, see [`crate::ddp_train`].
pub struct CentralizedTrainer {
    model: Gpt,
    opt: AdamW,
    schedule: LrSchedule,
    grad_clip: Option<f32>,
    stream: Box<dyn TokenStream>,
    acts: Activations,
    grads: Vec<f32>,
    batch: Batch,
    step: u64,
    accum_steps: u32,
}

impl std::fmt::Debug for CentralizedTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentralizedTrainer")
            .field("step", &self.step)
            .field("params", &self.model.param_count())
            .finish()
    }
}

impl CentralizedTrainer {
    /// Creates a trainer with a fresh model.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    pub fn new(
        model_cfg: ModelConfig,
        batch_size: usize,
        adamw: AdamWConfig,
        schedule: LrSchedule,
        grad_clip: Option<f32>,
        stream: Box<dyn TokenStream>,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut rng = SeedStream::new(seed);
        let model = Gpt::new(model_cfg, &mut rng);
        let grads = model.grad_buffer();
        CentralizedTrainer {
            acts: Activations::new(&model_cfg, batch_size, model_cfg.seq_len),
            batch: Batch::zeros(batch_size, model_cfg.seq_len),
            model,
            opt: AdamW::new(adamw, grads.len()),
            schedule,
            grad_clip,
            stream,
            grads,
            step: 0,
            accum_steps: 1,
        }
    }

    /// Enables gradient accumulation: each optimizer step averages the
    /// gradients of `n` micro-batches, emulating an `n`-times larger batch
    /// when VRAM cannot hold it (§2.2 — the paper tunes batch sizes so
    /// that, ideally, no accumulation is needed).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_grad_accumulation(mut self, n: u32) -> Self {
        assert!(n > 0, "accumulation steps must be positive");
        self.accum_steps = n;
        self
    }

    /// Runs one optimizer step (accumulating `accum_steps` micro-batches),
    /// returning the mean micro-batch loss.
    pub fn step(&mut self) -> f32 {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
        let mut loss_sum = 0.0f64;
        for _ in 0..self.accum_steps {
            self.stream.next_batch(&mut self.batch);
            let loss = self
                .model
                .forward(
                    &self.batch.inputs,
                    Some(&self.batch.targets),
                    &mut self.acts,
                )
                .expect("targets provided");
            loss_sum += loss as f64;
            self.model.backward(
                &self.batch.inputs,
                &self.batch.targets,
                &mut self.acts,
                &mut self.grads,
            );
        }
        if self.accum_steps > 1 {
            photon_tensor::ops::scale(1.0 / self.accum_steps as f32, &mut self.grads);
        }
        if let Some(max_norm) = self.grad_clip {
            clip_global_norm(&mut self.grads, max_norm);
        }
        let lr = self.schedule.lr_at(self.step);
        self.opt.step(self.model.params_mut(), &self.grads, lr);
        self.step += 1;
        (loss_sum / self.accum_steps as f64) as f32
    }

    /// Runs `n` steps, returning the mean loss.
    pub fn train_steps(&mut self, n: u64) -> f32 {
        let mut sum = 0.0f64;
        for _ in 0..n {
            sum += self.step() as f64;
        }
        (sum / n.max(1) as f64) as f32
    }

    /// The trained model.
    pub fn model(&self) -> &Gpt {
        &self.model
    }

    /// Overwrites the model weights (e.g. to continue from a federated
    /// checkpoint — the §6 continual pre-training workflow).
    ///
    /// # Panics
    /// Panics if the parameter length does not match.
    pub fn set_params(&mut self, params: &[f32]) {
        self.model.set_params(params);
    }

    /// Steps taken so far.
    pub fn global_step(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_data::{Shard, ShardStream};
    use photon_optim::ScheduleKind;
    use std::sync::Arc;

    fn trainer(batch: usize, lr: f32) -> CentralizedTrainer {
        let model = ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 17,
            seq_len: 8,
        };
        let shard = Shard::from_range("t", Arc::new((0..500u32).map(|i| i % 17).collect()), 0, 500);
        CentralizedTrainer::new(
            model,
            batch,
            AdamWConfig::default(),
            LrSchedule::new(ScheduleKind::Constant, lr, lr / 10.0, 1, 1000),
            Some(1.0),
            Box::new(ShardStream::new(shard, SeedStream::new(1))),
            0,
        )
    }

    #[test]
    fn loss_decreases_on_learnable_data() {
        let mut t = trainer(4, 1e-2);
        let first = t.train_steps(5);
        let later = t.train_steps(40);
        assert!(later < first, "{first} -> {later}");
        assert_eq!(t.global_step(), 45);
    }

    #[test]
    fn grad_accumulation_emulates_larger_batches() {
        // 4 micro-batches of 2 should behave like batch 8 (same data
        // distribution, same variance reduction), and definitely train.
        let mut t = trainer(2, 1e-2).with_grad_accumulation(4);
        let first = t.train_steps(5);
        let later = t.train_steps(30);
        assert!(later < first, "{first} -> {later}");
        // One optimizer step per accumulation group.
        assert_eq!(t.global_step(), 35);
    }

    #[test]
    fn very_high_lr_small_batch_is_unstable() {
        // The §3 motivation: centralized small-batch training cannot
        // tolerate very high learning rates; loss stays high or explodes
        // relative to a tuned configuration.
        let mut sane = trainer(4, 1e-2);
        let mut wild = trainer(4, 2.0);
        let sane_loss = {
            sane.train_steps(30);
            sane.train_steps(10)
        };
        let wild_loss = {
            wild.train_steps(30);
            wild.train_steps(10)
        };
        assert!(
            !wild_loss.is_finite() || wild_loss > sane_loss * 1.2,
            "expected instability: sane={sane_loss} wild={wild_loss}"
        );
    }
}
