use serde::{Deserialize, Serialize};

/// Summary of one federated round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index.
    pub round: u64,
    /// Client ids that participated.
    pub cohort: Vec<usize>,
    /// Sampled clients that dropped out before returning a result
    /// (crashes plus retransmit-budget exhaustion).
    #[serde(default)]
    pub dropouts: usize,
    /// Clients whose results missed the round deadline and were dropped
    /// into the partial-update path (§4).
    #[serde(default)]
    pub stragglers: usize,
    /// Result-frame retransmissions triggered by CRC failures this round.
    #[serde(default)]
    pub retransmits: u64,
    /// Mean local training loss across the cohort.
    pub mean_client_loss: f32,
    /// L2 norm of the aggregated pseudo-gradient.
    pub pseudo_grad_norm: f32,
    /// Total Link bytes this round (broadcasts + results).
    pub wire_bytes: u64,
    /// Global-model validation perplexity, when evaluated this round.
    pub eval_ppl: Option<f64>,
    /// Updates the admission guard rejected this round (non-finite plus
    /// cohort outliers).
    #[serde(default)]
    pub guard_rejected: usize,
    /// Updates admitted after guard norm clipping.
    #[serde(default)]
    pub guard_clipped: usize,
    /// Cohort members skipped because they were quarantined.
    #[serde(default)]
    pub quarantined: usize,
    /// Whether this round was neutralized after a watchdog rollback (its
    /// update is skipped on replay so recovery terminates).
    #[serde(default)]
    pub neutralized: bool,
    /// New clients admitted this round (elastic membership).
    #[serde(default)]
    pub joined: usize,
    /// Members that permanently departed this round.
    #[serde(default)]
    pub departed: usize,
    /// Members whose liveness lease lapsed this round.
    #[serde(default)]
    pub lease_expired: usize,
    /// Expired members that warm-rejoined this round.
    #[serde(default)]
    pub rejoined: usize,
    /// Updates waiting in the aggregation buffer after this round
    /// (buffered mode only).
    #[serde(default)]
    pub buffered: usize,
    /// Whether a buffered round ended *below* quorum and deferred its
    /// commit (inverted so the serde default — `false`, i.e. committed —
    /// is right for synchronous rounds and legacy records).
    #[serde(default)]
    pub commit_deferred: bool,
    /// Whether this round ran in degraded mode: received results fell
    /// below the reachability quorum, so the deadline was lifted and the
    /// server-opt step skipped until the partition heals.
    #[serde(default)]
    pub degraded: bool,
    /// Sampled clients whose deliveries were severed by an active network
    /// partition this round.
    #[serde(default)]
    pub unreachable: usize,
    /// The straggler deadline enforced this round (static or adaptive);
    /// `None` when no deadline applied (including degraded rounds).
    #[serde(default)]
    pub effective_deadline_ms: Option<u64>,
    /// Live sub-aggregator shards the cohort was partitioned over this
    /// round (0 = flat single-level aggregation).
    #[serde(default)]
    pub shards: usize,
    /// Shards whose slice was dropped for missing the per-shard quorum.
    #[serde(default)]
    pub shard_degraded: usize,
    /// Sub-aggregator crashes this round (each kills its shard for good).
    #[serde(default)]
    pub shard_crashes: usize,
    /// Sub-aggregator hangs this round (the slice is lost, shard recovers).
    #[serde(default)]
    pub shard_hangs: usize,
    /// Cohort members routed to a foster shard because their home shard
    /// is dead (crash re-parenting).
    #[serde(default)]
    pub reparented: usize,
    /// Peak update vectors resident in any shard's streaming merge
    /// (accumulator included); bounded by `max_resident`.
    #[serde(default)]
    pub peak_resident: usize,
}

/// The full record of a training run, with helpers used by the
/// time-to-target-perplexity experiments (Figs. 5–6, Table 3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
}

impl TrainingHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        TrainingHistory::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether any rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// First round (1-based count of completed rounds) whose evaluation
    /// perplexity reached `target`, if any — the quantity Figs. 5–6 and
    /// Table 3 convert into wall time.
    pub fn rounds_to_target(&self, target: f64) -> Option<u64> {
        self.rounds
            .iter()
            .find(|r| r.eval_ppl.is_some_and(|p| p <= target))
            .map(|r| r.round + 1)
    }

    /// Best (lowest) finite evaluated perplexity seen. Non-finite
    /// evaluations (a diverged or poisoned round) are skipped rather than
    /// panicking, so degenerate runs still report their best healthy eval.
    pub fn best_ppl(&self) -> Option<f64> {
        self.rounds
            .iter()
            .filter_map(|r| r.eval_ppl)
            .filter(|p| p.is_finite())
            .min_by(f64::total_cmp)
    }

    /// Final evaluated perplexity (the last round that ran an eval).
    pub fn final_ppl(&self) -> Option<f64> {
        self.rounds.iter().rev().find_map(|r| r.eval_ppl)
    }

    /// Total Link traffic over the run.
    pub fn total_wire_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.wire_bytes).sum()
    }

    /// Serializes to pretty JSON for experiment reports.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("history serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u64, ppl: Option<f64>) -> RoundRecord {
        RoundRecord {
            round,
            cohort: vec![0, 1],
            dropouts: 0,
            stragglers: 0,
            retransmits: 0,
            mean_client_loss: 2.0,
            pseudo_grad_norm: 0.5,
            wire_bytes: 100,
            eval_ppl: ppl,
            guard_rejected: 0,
            guard_clipped: 0,
            quarantined: 0,
            neutralized: false,
            joined: 0,
            departed: 0,
            lease_expired: 0,
            rejoined: 0,
            buffered: 0,
            commit_deferred: false,
            degraded: false,
            unreachable: 0,
            effective_deadline_ms: None,
            shards: 0,
            shard_degraded: 0,
            shard_crashes: 0,
            shard_hangs: 0,
            reparented: 0,
            peak_resident: 0,
        }
    }

    #[test]
    fn legacy_records_without_churn_fields_load() {
        let mut h = TrainingHistory::new();
        h.push(record(0, Some(40.0)));
        let json = h
            .to_json()
            .replace("\"joined\": 0,", "")
            .replace("\"departed\": 0,", "")
            .replace("\"lease_expired\": 0,", "")
            .replace("\"rejoined\": 0,", "")
            .replace("\"buffered\": 0,", "")
            .replace("\"commit_deferred\": false,", "")
            .replace("\"degraded\": false,", "")
            .replace("\"unreachable\": 0,", "")
            .replace("\"shards\": 0,", "")
            .replace("\"shard_degraded\": 0,", "")
            .replace("\"shard_crashes\": 0,", "")
            .replace("\"shard_hangs\": 0,", "")
            .replace("\"reparented\": 0,", "")
            .replace("\"peak_resident\": 0", "\"buffered\": 0")
            .replace("\"effective_deadline_ms\": null,", "");
        let back: TrainingHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h, "serde defaults must reconstruct the record");
    }

    #[test]
    fn rounds_to_target_finds_first_crossing() {
        let mut h = TrainingHistory::new();
        h.push(record(0, Some(50.0)));
        h.push(record(1, None));
        h.push(record(2, Some(34.0)));
        h.push(record(3, Some(30.0)));
        assert_eq!(h.rounds_to_target(35.0), Some(3));
        assert_eq!(h.rounds_to_target(60.0), Some(1));
        assert_eq!(h.rounds_to_target(10.0), None);
    }

    #[test]
    fn best_and_final() {
        let mut h = TrainingHistory::new();
        assert!(h.best_ppl().is_none());
        h.push(record(0, Some(40.0)));
        h.push(record(1, Some(33.0)));
        h.push(record(2, None));
        assert_eq!(h.best_ppl(), Some(33.0));
        assert_eq!(h.final_ppl(), Some(33.0));
        assert_eq!(h.total_wire_bytes(), 300);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn best_ppl_skips_non_finite_evals() {
        let mut h = TrainingHistory::new();
        h.push(record(0, Some(f64::NAN)));
        h.push(record(1, Some(44.0)));
        h.push(record(2, Some(f64::INFINITY)));
        assert_eq!(h.best_ppl(), Some(44.0));
        let mut all_bad = TrainingHistory::new();
        all_bad.push(record(0, Some(f64::NAN)));
        assert_eq!(all_bad.best_ppl(), None);
    }

    #[test]
    fn json_roundtrip() {
        let mut h = TrainingHistory::new();
        h.push(record(0, Some(40.0)));
        let back: TrainingHistory = serde_json::from_str(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }
}
