use crate::{DataSource, DdpConfig, FederationConfig};
use photon_cluster::{select_strategy, SiloSpec, TrainingStrategy};
use photon_comms::{mask_update, TrainMetrics};
use photon_data::Batch;
use photon_nn::{Activations, Gpt};
use photon_optim::{clip_global_norm, AdamW, Optimizer};
use photon_tensor::SeedStream;

/// The result of one client's local round (before Link framing).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// Pseudo-gradient `θ_global − θ_local` (possibly post-processed).
    pub delta: Vec<f32>,
    /// Aggregation weight.
    pub weight: f64,
    /// Local training metrics.
    pub metrics: TrainMetrics,
}

/// A Photon LLM client (LLM-C, §3.1): owns a bound [`DataSource`], an
/// optional hardware silo description, and the local training pipeline of
/// Algorithm 1 (L.13–28), including strategy selection and the
/// sub-federation branch.
#[derive(Debug)]
pub struct LlmClient {
    id: u32,
    ds: DataSource,
    silo: Option<SiloSpec>,
    rng: SeedStream,
    /// Persistent local optimizer for the stateful mode
    /// (`stateless_local = false`); single-worker pipelines only.
    opt_state: Option<AdamW>,
    /// Rounds on which this client simulates a mid-round failure
    /// (disconnect before returning a result).
    fail_rounds: Vec<u64>,
    /// Rounds on which one sub-federation node thread panics mid-train —
    /// exercising the path that surfaces a node panic as a
    /// [`CoreError::ClientFailure`](crate::CoreError::ClientFailure)
    /// instead of aborting the whole client.
    panic_node_rounds: Vec<u64>,
}

impl LlmClient {
    /// Creates a client bound to a data source. Passing a silo enables
    /// hardware-aware strategy selection; `None` trains single-worker.
    pub fn new(id: u32, ds: DataSource, silo: Option<SiloSpec>, rng: SeedStream) -> Self {
        LlmClient {
            id,
            ds,
            silo,
            rng,
            opt_state: None,
            fail_rounds: Vec::new(),
            panic_node_rounds: Vec::new(),
        }
    }

    /// Schedules simulated mid-round failures (the client trains but drops
    /// the connection before returning a result) — used to exercise the
    /// aggregator's partial-update path (§4: the parameter server
    /// "handles worker dropouts well").
    pub fn fail_on_rounds(&mut self, rounds: Vec<u64>) {
        self.fail_rounds = rounds;
    }

    /// Whether this client is scheduled to fail on `round`.
    pub fn fails_on(&self, round: u64) -> bool {
        self.fail_rounds.contains(&round)
    }

    /// Schedules a deterministic panic inside one sub-federation node
    /// thread on the given rounds (only meaningful for clients whose
    /// strategy selects the sub-federation branch).
    pub fn panic_node_on_rounds(&mut self, rounds: Vec<u64>) {
        self.panic_node_rounds = rounds;
    }

    /// Client identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The bound data source.
    pub fn data_source(&self) -> &DataSource {
        &self.ds
    }

    /// The execution strategy this client's hardware selects for `cfg`'s
    /// model (Algorithm 1, L.15–16).
    pub fn strategy(&self, cfg: &FederationConfig) -> TrainingStrategy {
        match &self.silo {
            Some(silo) => select_strategy(&cfg.model, silo),
            None => TrainingStrategy::SingleGpu,
        }
    }

    /// Runs one local round from the broadcast `global` parameters,
    /// returning the post-processed pseudo-gradient. `cohort` lists all
    /// participating client ids this round (needed for secure-aggregation
    /// masking).
    ///
    /// # Errors
    /// Returns [`CoreError::ClientFailure`](crate::CoreError::ClientFailure)
    /// when a sub-federation node thread panics: the node's loss is
    /// contained to this client's round result, exactly like a client
    /// thread panic is contained to the aggregator's round.
    ///
    /// # Panics
    /// Panics if `global` has the wrong length for the configured model,
    /// or secure aggregation is enabled and this client is missing from
    /// the cohort.
    pub fn run_round(
        &mut self,
        global: &[f32],
        round: u64,
        cohort: &[u32],
        cfg: &FederationConfig,
    ) -> crate::Result<ClientOutcome> {
        let strategy = self.strategy(cfg);
        let workers = match strategy {
            TrainingStrategy::SubFederation { partitions } => partitions,
            other => other.parallel_workers(),
        }
        .clamp(1, 8);

        // All in-round randomness forks off a round-keyed stream (never
        // advancing the client's base stream), so a client rebuilt from
        // scratch after a crash replays any round bit-identically.
        let mut round_rng = self.rng.fork(&format!("round-{round}"));

        let (local_params, metrics) = if let TrainingStrategy::SubFederation { .. } = strategy {
            self.run_sub_federation(global, round, workers, cfg, &mut round_rng)?
        } else if workers == 1 && !cfg.stateless_local {
            self.run_single_stateful(global, round, cfg, &mut round_rng)
        } else {
            // Standard distributed training across the silo's GPUs
            // (Algorithm 1, L.16–18). Stateless: fresh optimizer per round.
            let ddp_cfg = self.ddp_config(round, workers, cfg);
            let streams = if workers == 1 {
                vec![self.ds.bind_stream(round_rng.split("round-stream"))]
            } else {
                self.ds.partition_streams(workers, &mut round_rng)
            };
            let (params, report) = crate::ddp_train(global, &ddp_cfg, streams);
            (
                params,
                TrainMetrics {
                    mean_loss: report.mean_loss,
                    tokens: report.tokens,
                    steps: report.steps,
                },
            )
        };

        let mut delta = photon_fedopt::delta_from(global, &local_params);
        self.post_process(&mut delta, round, cohort, cfg, &mut round_rng);
        Ok(ClientOutcome {
            delta,
            weight: 1.0,
            metrics,
        })
    }

    fn ddp_config(&self, round: u64, workers: usize, cfg: &FederationConfig) -> DdpConfig {
        let _ = workers;
        DdpConfig {
            model: cfg.model,
            per_worker_batch: cfg.local_batch,
            seq_len: cfg.model.seq_len,
            steps: cfg.local_steps,
            start_step: round * cfg.local_steps,
            adamw: cfg.adamw,
            schedule: cfg.schedule,
            grad_clip: cfg.grad_clip,
            fedprox_mu: cfg.fedprox_mu,
        }
    }

    /// Sub-federation branch (Algorithm 1, L.19–25): each node trains an
    /// independent replica on a stream partition; the client averages the
    /// node models into one update before returning it.
    fn run_sub_federation(
        &mut self,
        global: &[f32],
        round: u64,
        partitions: usize,
        cfg: &FederationConfig,
        rng: &mut SeedStream,
    ) -> crate::Result<(Vec<f32>, TrainMetrics)> {
        let ddp_cfg = self.ddp_config(round, 1, cfg);
        let streams = self.ds.partition_streams(partitions, rng);
        // Like DDP replicas, concurrent sub-federation nodes split the
        // caller's kernel-thread budget rather than oversubscribing it.
        let kernel_threads =
            (photon_tensor::ops::pool::effective_parallelism() / partitions.max(1)).max(1);
        let panic_scheduled = self.panic_node_rounds.contains(&round);
        let client_id = self.id;
        let handles: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(node, stream)| {
                let ddp_cfg = ddp_cfg.clone();
                let global = global.to_vec();
                std::thread::spawn(move || {
                    if panic_scheduled && node == 0 {
                        panic!("injected sub-federation node fault (client {client_id}, round {round})");
                    }
                    photon_tensor::ops::pool::with_parallelism(kernel_threads, move || {
                        crate::ddp_train(&global, &ddp_cfg, vec![stream])
                    })
                })
            })
            .collect();
        // Join every node before surfacing a failure, so a panicking node
        // never leaves siblings running detached into the next round.
        let mut results = Vec::with_capacity(handles.len());
        let mut failure: Option<String> = None;
        for (node, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(result) => results.push(result),
                Err(payload) => {
                    let reason = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    failure.get_or_insert(format!(
                        "sub-federation node {node} of client {client_id} \
                         panicked in round {round}: {reason}"
                    ));
                }
            }
        }
        if let Some(message) = failure {
            return Err(crate::CoreError::ClientFailure(message));
        }

        // L.24: θ_k = (1/|I|) Σ θ_i.
        let n = results.len();
        let mut avg = vec![0.0f32; global.len()];
        let mut loss = 0.0f32;
        let mut tokens = 0u64;
        for (params, report) in &results {
            photon_tensor::ops::axpy(1.0 / n as f32, params, &mut avg);
            loss += report.mean_loss / n as f32;
            tokens += report.tokens;
        }
        Ok((
            avg,
            TrainMetrics {
                mean_loss: loss,
                tokens,
                steps: cfg.local_steps,
            },
        ))
    }

    /// Single-worker path with a persistent local optimizer (used when
    /// `stateless_local = false`; the paper keeps momenta local rather
    /// than communicating them, Appendix C.1).
    fn run_single_stateful(
        &mut self,
        global: &[f32],
        round: u64,
        cfg: &FederationConfig,
        rng: &mut SeedStream,
    ) -> (Vec<f32>, TrainMetrics) {
        let mut model = Gpt::from_params(cfg.model, global.to_vec());
        let opt = self
            .opt_state
            .get_or_insert_with(|| AdamW::new(cfg.adamw, global.len()));
        let mut stream = self.ds.bind_stream(rng.split("round-stream"));
        let mut acts = Activations::new(&cfg.model, cfg.local_batch, cfg.model.seq_len);
        let mut grads = model.grad_buffer();
        let mut batch = Batch::zeros(cfg.local_batch, cfg.model.seq_len);
        let mut loss_sum = 0.0f64;
        for i in 0..cfg.local_steps {
            stream.next_batch(&mut batch);
            grads.iter_mut().for_each(|g| *g = 0.0);
            let loss = model
                .forward(&batch.inputs, Some(&batch.targets), &mut acts)
                .expect("targets provided");
            loss_sum += loss as f64;
            model.backward(&batch.inputs, &batch.targets, &mut acts, &mut grads);
            if let Some(mu) = cfg.fedprox_mu {
                let w = model.params();
                for ((g, &wi), &ai) in grads.iter_mut().zip(w).zip(global) {
                    *g += mu * (wi - ai);
                }
            }
            if let Some(max_norm) = cfg.grad_clip {
                clip_global_norm(&mut grads, max_norm);
            }
            let lr = cfg.schedule.lr_at(round * cfg.local_steps + i);
            opt.step(model.params_mut(), &grads, lr);
        }
        let tokens = cfg.local_steps * (cfg.local_batch * cfg.model.seq_len) as u64;
        (
            model.into_params(),
            TrainMetrics {
                mean_loss: (loss_sum / cfg.local_steps.max(1) as f64) as f32,
                tokens,
                steps: cfg.local_steps,
            },
        )
    }

    /// Algorithm 1, L.28: `PostProcess` — clip, add DP noise, mask.
    fn post_process(
        &mut self,
        delta: &mut [f32],
        round: u64,
        cohort: &[u32],
        cfg: &FederationConfig,
        rng: &mut SeedStream,
    ) {
        if let Some(max_norm) = cfg.post.clip_update_norm {
            clip_global_norm(delta, max_norm);
        }
        if let Some(std) = cfg.post.dp_noise_std {
            let mut noise_rng = rng.split("dp-noise");
            for d in delta.iter_mut() {
                *d += std * noise_rng.next_normal();
            }
        }
        if cfg.secure_agg {
            let round_key = cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(round);
            mask_update(delta, self.id, cohort, round_key)
                .expect("secure aggregation cohort invalid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_data::Shard;
    use photon_nn::ModelConfig;
    use std::sync::Arc;

    fn test_cfg() -> FederationConfig {
        let model = ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 17,
            seq_len: 8,
        };
        let mut cfg = FederationConfig::quick_demo(model, 2);
        cfg.local_steps = 4;
        cfg.local_batch = 2;
        cfg
    }

    fn client(id: u32, tokens: usize) -> LlmClient {
        let shard = Shard::from_range(
            "c",
            Arc::new((0..tokens as u32).map(|i| i % 17).collect()),
            0,
            tokens,
        );
        LlmClient::new(
            id,
            DataSource::new("ds", shard),
            None,
            SeedStream::new(id as u64),
        )
    }

    fn global_params(cfg: &FederationConfig) -> Vec<f32> {
        Gpt::new(cfg.model, &mut SeedStream::new(9)).into_params()
    }

    #[test]
    fn round_produces_nonzero_delta_and_metrics() {
        let cfg = test_cfg();
        let global = global_params(&cfg);
        let mut c = client(0, 300);
        let out = c.run_round(&global, 0, &[0], &cfg).unwrap();
        assert_eq!(out.delta.len(), global.len());
        assert!(photon_tensor::ops::l2_norm(&out.delta) > 0.0);
        assert_eq!(out.metrics.steps, 4);
        assert_eq!(out.metrics.tokens, 4 * 2 * 8);
        assert_eq!(out.weight, 1.0);
    }

    #[test]
    fn stateful_mode_keeps_momenta_across_rounds() {
        let mut cfg = test_cfg();
        cfg.stateless_local = false;
        let global = global_params(&cfg);
        let mut c = client(0, 300);
        let first = c.run_round(&global, 0, &[0], &cfg).unwrap();
        assert!(c.opt_state.is_some());
        let second = c.run_round(&global, 1, &[0], &cfg).unwrap();
        // With warm momenta the second round's update differs from a cold
        // restart producing the identical first-round update.
        assert_ne!(first.delta, second.delta);
    }

    #[test]
    fn round_replay_is_rebuild_stable() {
        // A client rebuilt from scratch (same seed) must reproduce any
        // round bit-identically without replaying the earlier rounds —
        // the property crash recovery depends on.
        let mut cfg = test_cfg();
        cfg.post.dp_noise_std = Some(0.01); // exercise in-round randomness
        let global = global_params(&cfg);
        let mut walked = client(0, 300);
        walked.run_round(&global, 0, &[0], &cfg).unwrap();
        walked.run_round(&global, 1, &[0], &cfg).unwrap();
        let third = walked.run_round(&global, 2, &[0], &cfg).unwrap();
        let mut fresh = client(0, 300);
        let replayed = fresh.run_round(&global, 2, &[0], &cfg).unwrap();
        assert_eq!(third.delta, replayed.delta);
    }

    #[test]
    fn update_clipping_bounds_delta_norm() {
        let mut cfg = test_cfg();
        cfg.post.clip_update_norm = Some(0.01);
        let global = global_params(&cfg);
        let mut c = client(0, 300);
        let out = c.run_round(&global, 0, &[0], &cfg).unwrap();
        assert!(photon_tensor::ops::l2_norm(&out.delta) <= 0.0101);
    }

    #[test]
    fn dp_noise_changes_update() {
        let cfg = test_cfg();
        let mut noisy_cfg = cfg.clone();
        noisy_cfg.post.dp_noise_std = Some(0.1);
        let global = global_params(&cfg);
        let clean = client(0, 300).run_round(&global, 0, &[0], &cfg).unwrap();
        let noisy = client(0, 300)
            .run_round(&global, 0, &[0], &noisy_cfg)
            .unwrap();
        assert_ne!(clean.delta, noisy.delta);
    }

    #[test]
    fn strategy_defaults_to_single_gpu_without_silo() {
        let cfg = test_cfg();
        let c = client(0, 100);
        assert_eq!(c.strategy(&cfg), TrainingStrategy::SingleGpu);
    }

    #[test]
    fn sub_federation_averages_partitions() {
        use photon_cluster::{GpuSpec, Interconnect, NodeSpec, Region};
        let cfg = test_cfg();
        let silo = SiloSpec {
            name: "slow-cluster".into(),
            nodes: vec![
                NodeSpec::nvlink(GpuSpec::h100(), 1),
                NodeSpec::nvlink(GpuSpec::h100(), 1),
            ],
            inter_node: Interconnect::Ethernet { gbps: 1.0 },
            region: Region::Quebec,
        };
        let shard = Shard::from_range("c", Arc::new((0..600u32).map(|i| i % 17).collect()), 0, 600);
        let mut c = LlmClient::new(
            0,
            DataSource::new("ds", shard),
            Some(silo),
            SeedStream::new(5),
        );
        assert_eq!(
            c.strategy(&cfg),
            TrainingStrategy::SubFederation { partitions: 2 }
        );
        let global = global_params(&cfg);
        let out = c.run_round(&global, 0, &[0], &cfg).unwrap();
        assert!(photon_tensor::ops::l2_norm(&out.delta) > 0.0);
        // Both partitions' tokens are counted.
        assert_eq!(out.metrics.tokens, 2 * 4 * 2 * 8);
    }

    #[test]
    fn sub_federation_node_panic_surfaces_as_client_failure() {
        use photon_cluster::{GpuSpec, Interconnect, NodeSpec, Region};
        let cfg = test_cfg();
        let silo = SiloSpec {
            name: "slow-cluster".into(),
            nodes: vec![
                NodeSpec::nvlink(GpuSpec::h100(), 1),
                NodeSpec::nvlink(GpuSpec::h100(), 1),
            ],
            inter_node: Interconnect::Ethernet { gbps: 1.0 },
            region: Region::Quebec,
        };
        let shard = Shard::from_range("c", Arc::new((0..600u32).map(|i| i % 17).collect()), 0, 600);
        let mut c = LlmClient::new(
            7,
            DataSource::new("ds", shard),
            Some(silo),
            SeedStream::new(5),
        );
        assert_eq!(
            c.strategy(&cfg),
            TrainingStrategy::SubFederation { partitions: 2 }
        );
        c.panic_node_on_rounds(vec![1]);
        let global = global_params(&cfg);
        // Round 0 is clean.
        assert!(c.run_round(&global, 0, &[7], &cfg).is_ok());
        // Round 1's node panic is contained: an error, not an abort, with
        // the panic payload preserved in the message.
        let err = c.run_round(&global, 1, &[7], &cfg).unwrap_err();
        match err {
            crate::CoreError::ClientFailure(msg) => {
                assert!(msg.contains("node 0 of client 7"), "{msg}");
                assert!(msg.contains("injected sub-federation node fault"), "{msg}");
            }
            other => panic!("expected ClientFailure, got {other:?}"),
        }
        // The client is still usable afterwards.
        assert!(c.run_round(&global, 2, &[7], &cfg).is_ok());
    }
}
