use crate::{CohortSpec, CoreError, DataSource, FederationConfig, LlmClient, Result, RoundRecord};
use crossbeam::channel::unbounded;
use photon_data::{partition_iid, DomainKind, SyntheticDomain, TokenCorpus};
use photon_fedopt::{
    AvailabilitySampler, AvailabilityTraces, ClientSampler, ClientUpdate, FullParticipation,
    ServerOpt, UniformSampler,
};
use photon_nn::Gpt;
use photon_tensor::SeedStream;
use photon_tokenizer::ByteTokenizer;

/// The Photon Aggregator (Agg, §3.1): owns the global model, orchestrates
/// rounds over real Link frames, aggregates pseudo-gradients and applies
/// the server optimizer (Algorithm 1, L.1–12).
pub struct Aggregator {
    cfg: FederationConfig,
    params: Vec<f32>,
    server_opt: Box<dyn ServerOpt>,
    sampler: Box<dyn ClientSampler>,
    round: u64,
    telemetry: crate::Telemetry,
}

impl std::fmt::Debug for Aggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aggregator")
            .field("round", &self.round)
            .field("params", &self.params.len())
            .field("server_opt", &self.server_opt.name())
            .finish()
    }
}

impl Aggregator {
    /// Initializes the global model (`InitModel`, L.2) and server state.
    ///
    /// # Errors
    /// Returns an error if the configuration is inconsistent.
    pub fn new(cfg: FederationConfig) -> Result<Self> {
        cfg.validate()?;
        let mut rng = SeedStream::new(cfg.seed);
        let model = Gpt::with_positions(cfg.model, cfg.positions, &mut rng.split("global-init"));
        let params = model.into_params();
        let server_opt = cfg.server_opt.build(params.len());
        // Sporadic availability wraps whichever cohort policy is set: only
        // currently-up clients are candidates (§2.1 / Appendix A).
        let sampler: Box<dyn ClientSampler> = match (cfg.availability, cfg.cohort) {
            (Some(model), cohort) => {
                const HORIZON: usize = 100_000;
                let traces = AvailabilityTraces::sample(
                    model,
                    cfg.population,
                    HORIZON,
                    &mut rng.split("availability"),
                );
                let k = match cohort {
                    CohortSpec::Full => cfg.population,
                    CohortSpec::Sample { k } => k,
                };
                Box::new(AvailabilitySampler::new(traces, k, rng.split("sampler")))
            }
            (None, CohortSpec::Full) => Box::new(FullParticipation),
            (None, CohortSpec::Sample { k }) => {
                Box::new(UniformSampler::new(k, rng.split("sampler")))
            }
        };
        Ok(Aggregator {
            cfg,
            params,
            server_opt,
            sampler,
            round: 0,
            telemetry: crate::Telemetry::new(),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// Current round index (completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current global parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Materializes the global model for evaluation or deployment.
    pub fn global_model(&self) -> Gpt {
        Gpt::from_params(self.cfg.model, self.params.clone())
    }

    /// The federation's metrics hub (`AggMetrics`, Algorithm 1 L.10).
    pub fn telemetry(&self) -> &crate::Telemetry {
        &self.telemetry
    }

    /// Restores aggregator state from a checkpoint.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] if the parameter vector does
    /// not match the configured model.
    pub fn restore(&mut self, round: u64, params: Vec<f32>) -> Result<()> {
        if params.len() != self.params.len() {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint has {} parameters, model needs {}",
                params.len(),
                self.params.len()
            )));
        }
        self.params = params;
        self.round = round;
        Ok(())
    }

    /// Executes one federated round (Algorithm 1, L.4–11): samples the
    /// cohort, broadcasts the model as a Link frame, runs each sampled
    /// client on its own thread, decodes result frames, aggregates and
    /// applies the server optimizer.
    ///
    /// # Errors
    /// Returns an error if a client thread fails or a frame is corrupt.
    pub fn run_round(&mut self, clients: &mut [LlmClient]) -> Result<RoundRecord> {
        let cohort_idx = self.sampler.sample(clients.len(), self.round);
        if cohort_idx.is_empty() {
            return Err(CoreError::InvalidConfig("empty cohort".into()));
        }
        let cohort_ids: Vec<u32> = cohort_idx.iter().map(|&i| clients[i].id()).collect();

        // L.5–6: broadcast and train in parallel, over real Link frames.
        let broadcast = photon_comms::Message::ModelBroadcast {
            round: self.round,
            params: self.params.clone(),
        }
        .to_frame(self.cfg.compress_link);
        let broadcast_bytes = broadcast.len() as u64 * cohort_idx.len() as u64;

        let (tx, rx) = unbounded();
        let round = self.round;
        let cfg = &self.cfg;
        let cohort_ids_ref = &cohort_ids;
        crossbeam::thread::scope(|scope| {
            for (i, client) in clients.iter_mut().enumerate() {
                if !cohort_idx.contains(&i) {
                    continue;
                }
                let tx = tx.clone();
                let frame = broadcast.clone();
                scope.spawn(move |_| {
                    let msg =
                        photon_comms::Message::from_frame(frame).expect("broadcast frame corrupt");
                    let photon_comms::Message::ModelBroadcast { round: r, params } = msg else {
                        panic!("expected a model broadcast");
                    };
                    debug_assert_eq!(r, round);
                    if client.fails_on(round) {
                        // Simulated mid-round disconnect: no result frame.
                        return;
                    }
                    let outcome = client.run_round(&params, round, cohort_ids_ref, cfg);
                    let reply = photon_comms::Message::ClientResult {
                        round,
                        client_id: client.id(),
                        delta: outcome.delta,
                        weight: outcome.weight,
                        metrics: outcome.metrics,
                    }
                    .to_frame(cfg.compress_link);
                    tx.send(reply).expect("aggregator hung up");
                });
            }
        })
        .map_err(|_| CoreError::ClientFailure("a client thread panicked".into()))?;
        drop(tx);

        // L.7–8: collect updates and aggregate. Results arrive in thread
        // completion order; sort by client id so float accumulation is
        // bit-reproducible across runs.
        let mut collected = Vec::with_capacity(cohort_idx.len());
        let mut result_bytes = 0u64;
        for frame in rx.iter() {
            result_bytes += frame.len() as u64;
            match photon_comms::Message::from_frame(frame)? {
                photon_comms::Message::ClientResult {
                    client_id,
                    delta,
                    weight,
                    metrics,
                    ..
                } => collected.push((client_id, ClientUpdate::new(delta, weight), metrics)),
                other => {
                    return Err(CoreError::ClientFailure(format!(
                        "unexpected message from client: {other:?}"
                    )))
                }
            }
        }
        collected.sort_by_key(|(id, _, _)| *id);
        let mut updates = Vec::with_capacity(collected.len());
        let mut losses = Vec::with_capacity(collected.len());
        let mut survivor_ids = Vec::with_capacity(collected.len());
        for (id, update, metrics) in collected {
            self.telemetry.record(id, self.round, &metrics);
            losses.push(metrics.mean_loss);
            survivor_ids.push(id);
            updates.push(update);
        }
        let dropouts = cohort_idx.len() - updates.len();
        if dropouts > 0 && (!self.cfg.allow_partial_results || updates.is_empty()) {
            // §4: only the partial-update path may proceed with survivors.
            return Err(CoreError::ClientFailure(format!(
                "expected {} results, got {} (enable allow_partial_results \
                 to aggregate survivors)",
                cohort_idx.len(),
                updates.len()
            )));
        }

        let avg_delta = self.cfg.aggregation.aggregate(&updates);
        let pseudo_grad_norm = photon_tensor::ops::l2_norm(&avg_delta);
        // §6 client-contribution measurement: cosine alignment between each
        // client's update and the aggregate.
        if pseudo_grad_norm > 0.0 {
            for (id, update) in survivor_ids.iter().zip(&updates) {
                let dot = photon_tensor::ops::dot(&update.delta, &avg_delta);
                let norm = update.norm();
                if norm > 0.0 {
                    self.telemetry
                        .record_alignment(*id, dot / (norm * pseudo_grad_norm));
                }
            }
        }
        // L.9: apply the server optimization policy.
        self.server_opt
            .apply(&mut self.params, &avg_delta, self.round);

        let record = RoundRecord {
            round: self.round,
            cohort: cohort_idx,
            dropouts,
            mean_client_loss: losses.iter().sum::<f32>() / losses.len() as f32,
            pseudo_grad_norm,
            wire_bytes: broadcast_bytes + result_bytes,
            eval_ppl: None,
        };
        self.round += 1;
        Ok(record)
    }
}

/// A ready-to-run federation: aggregator plus its client population.
#[derive(Debug)]
pub struct Federation {
    /// The central aggregator.
    pub aggregator: Aggregator,
    /// The client population (index = client id).
    pub clients: Vec<LlmClient>,
}

/// Builds a federation over IID shards of a synthetic web corpus — the
/// C4-style setup of §5.1 ("randomly partitioning the dataset uniformly
/// into equally sized shards").
///
/// # Errors
/// Returns an error if the configuration is invalid.
pub fn build_federation(cfg: &FederationConfig, tokens_per_client: usize) -> Result<Federation> {
    cfg.validate()?;
    let mut rng = SeedStream::new(cfg.seed);
    let tokenizer = ByteTokenizer::new();
    let mut data_rng = rng.split("data");
    let domain = SyntheticDomain::preset(DomainKind::Web, &mut data_rng);
    let corpus = TokenCorpus::from_domain(
        &domain,
        &tokenizer,
        tokens_per_client * cfg.population,
        &mut data_rng,
    );
    let block = (cfg.model.seq_len + 1).max(32);
    let shards = partition_iid(&corpus, cfg.population, block, &mut data_rng);
    let clients = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            LlmClient::new(
                i as u32,
                DataSource::new(format!("ds-{i}"), shard),
                None,
                rng.split(&format!("client-{i}")),
            )
        })
        .collect();
    Ok(Federation {
        aggregator: Aggregator::new(cfg.clone())?,
        clients,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_nn::ModelConfig;

    fn tiny_model() -> ModelConfig {
        ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 257,
            seq_len: 16,
        }
    }

    fn quick_cfg(n: usize) -> FederationConfig {
        let mut cfg = FederationConfig::quick_demo(tiny_model(), n);
        cfg.local_steps = 4;
        cfg.local_batch = 2;
        cfg
    }

    #[test]
    fn one_round_updates_the_global_model() {
        let cfg = quick_cfg(3);
        let mut fed = build_federation(&cfg, 2_000).unwrap();
        let before = fed.aggregator.params().to_vec();
        let record = fed.aggregator.run_round(&mut fed.clients).unwrap();
        assert_ne!(fed.aggregator.params(), &before[..]);
        assert_eq!(record.cohort, vec![0, 1, 2]);
        assert!(record.mean_client_loss.is_finite());
        assert!(record.pseudo_grad_norm > 0.0);
        assert!(record.wire_bytes > 0);
        assert_eq!(fed.aggregator.round(), 1);
    }

    #[test]
    fn training_reduces_client_loss_over_rounds() {
        let cfg = quick_cfg(2);
        let mut fed = build_federation(&cfg, 2_000).unwrap();
        let first = fed.aggregator.run_round(&mut fed.clients).unwrap();
        let mut last = first.clone();
        for _ in 0..6 {
            last = fed.aggregator.run_round(&mut fed.clients).unwrap();
        }
        assert!(
            last.mean_client_loss < first.mean_client_loss,
            "{} -> {}",
            first.mean_client_loss,
            last.mean_client_loss
        );
    }

    #[test]
    fn secure_aggregation_matches_plain_aggregation() {
        let mut plain_cfg = quick_cfg(3);
        plain_cfg.seed = 7;
        let mut secure_cfg = plain_cfg.clone();
        secure_cfg.secure_agg = true;

        let mut plain = build_federation(&plain_cfg, 2_000).unwrap();
        let mut secure = build_federation(&secure_cfg, 2_000).unwrap();
        plain.aggregator.run_round(&mut plain.clients).unwrap();
        secure.aggregator.run_round(&mut secure.clients).unwrap();

        // The pairwise masks cancel in the aggregate, so the resulting
        // global models agree to floating-point noise.
        let diff: f32 = plain
            .aggregator
            .params()
            .iter()
            .zip(secure.aggregator.params())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 2e-3, "secure aggregation diverged: {diff}");
    }

    #[test]
    fn compressed_link_is_lossless() {
        let mut cfg_a = quick_cfg(2);
        cfg_a.seed = 13;
        let mut cfg_b = cfg_a.clone();
        cfg_b.compress_link = true;
        let mut fed_a = build_federation(&cfg_a, 2_000).unwrap();
        let mut fed_b = build_federation(&cfg_b, 2_000).unwrap();
        fed_a.aggregator.run_round(&mut fed_a.clients).unwrap();
        fed_b.aggregator.run_round(&mut fed_b.clients).unwrap();
        assert_eq!(fed_a.aggregator.params(), fed_b.aggregator.params());
    }

    #[test]
    fn partial_participation_samples_a_subset() {
        let mut cfg = quick_cfg(6);
        cfg.cohort = CohortSpec::Sample { k: 2 };
        let mut fed = build_federation(&cfg, 2_000).unwrap();
        let record = fed.aggregator.run_round(&mut fed.clients).unwrap();
        assert_eq!(record.cohort.len(), 2);
        assert!(record.cohort.iter().all(|&i| i < 6));
    }

    #[test]
    fn restore_validates_length() {
        let cfg = quick_cfg(2);
        let mut agg = Aggregator::new(cfg).unwrap();
        assert!(agg.restore(3, vec![0.0; 5]).is_err());
        let n = agg.params().len();
        agg.restore(3, vec![0.0; n]).unwrap();
        assert_eq!(agg.round(), 3);
    }
}
