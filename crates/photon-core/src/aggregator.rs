use crate::checkpoint::ElasticState;
use crate::faults::{ClientFault, FaultInjector};
use crate::hierarchy::{HierarchyState, ShardTree};
use crate::membership::MembershipRegistry;
use crate::{CohortSpec, CoreError, DataSource, FederationConfig, LlmClient, Result, RoundRecord};
use crossbeam::channel::unbounded;
use photon_data::{partition_iid, DomainKind, SyntheticDomain, TokenCorpus};
use photon_fedopt::{
    canonical_fold, sample_live, AggregationKind, AvailabilitySampler, AvailabilityTraces,
    BufferedUpdate, ClientSampler, ClientUpdate, FullParticipation, ServerOpt, StreamingMerge,
    UniformSampler, UpdateBuffer, UpdateGuard,
};
use photon_nn::Gpt;
use photon_tensor::SeedStream;
use photon_tokenizer::ByteTokenizer;
use std::collections::BTreeSet;

/// EMA blend for the watchdog's loss/norm trackers: history-weighted
/// enough to ignore single-round noise, fresh enough to track the loss
/// curve's natural decay.
const WATCHDOG_EMA_BETA: f64 = 0.7;

/// Pseudo-client id base for shard aggregates entering the root guard
/// screen: high enough that no real client id collides, so a shard that
/// repeatedly emits poisoned aggregates earns its own quarantine sentence.
const SHARD_GUARD_BASE: u32 = 0x8000_0000;

/// The Photon Aggregator (Agg, §3.1): owns the global model, orchestrates
/// rounds over real Link frames, aggregates pseudo-gradients and applies
/// the server optimizer (Algorithm 1, L.1–12).
pub struct Aggregator {
    cfg: FederationConfig,
    params: Vec<f32>,
    server_opt: Box<dyn ServerOpt>,
    sampler: Box<dyn ClientSampler>,
    round: u64,
    telemetry: crate::Telemetry,
    /// Admission guard, present when `cfg.guard.enabled`.
    guard: Option<UpdateGuard>,
    /// Loss-spike watchdog trackers (None until the first healthy round).
    loss_ema: Option<f64>,
    norm_ema: Option<f64>,
    /// Rounds neutralized after a watchdog rollback: they run (keeping
    /// client state deterministic) but skip the update application, so a
    /// replay of the divergent round terminates instead of re-diverging.
    neutralized: BTreeSet<u64>,
    /// Elastic membership registry, present when `cfg.membership` is set.
    membership: Option<MembershipRegistry>,
    /// Staleness-aware update buffer, present when `cfg.buffer` is set.
    buffer: Option<UpdateBuffer>,
    /// Cohort-sampling stream for membership mode. Its state is frozen at
    /// construction; [`sample_live`] forks a round-keyed child per round,
    /// so warm joiners and restores replay identical cohorts.
    member_rng: Option<SeedStream>,
    /// Simulated chaos network, present when `cfg.network` is set.
    network: Option<photon_comms::NetworkModel>,
    /// Whether the previous round left the aggregator degraded (below the
    /// reachability quorum); lifts the deadline until quorum returns.
    degraded: bool,
    /// Observed per-delivery simulated latencies feeding the adaptive
    /// deadline. Window-bounded; not checkpointed — like the watchdog
    /// EMAs it re-warms deterministically from the replayed rounds.
    latency_obs: Vec<u64>,
    /// Sub-aggregator tree, present when `cfg.hierarchy` is set. Its dead
    /// set is the only hierarchical state and rides in checkpoint v5.
    hierarchy: Option<ShardTree>,
}

impl std::fmt::Debug for Aggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aggregator")
            .field("round", &self.round)
            .field("params", &self.params.len())
            .field("server_opt", &self.server_opt.name())
            .finish()
    }
}

impl Aggregator {
    /// Initializes the global model (`InitModel`, L.2) and server state.
    ///
    /// # Errors
    /// Returns an error if the configuration is inconsistent.
    pub fn new(cfg: FederationConfig) -> Result<Self> {
        cfg.validate()?;
        let mut rng = SeedStream::new(cfg.seed);
        let model = Gpt::with_positions(cfg.model, cfg.positions, &mut rng.split("global-init"));
        let params = model.into_params();
        let server_opt = cfg.server_opt.build(params.len());
        // Sporadic availability wraps whichever cohort policy is set: only
        // currently-up clients are candidates (§2.1 / Appendix A).
        let sampler: Box<dyn ClientSampler> = match (cfg.availability, cfg.cohort) {
            (Some(model), cohort) => {
                // Lazily materialized: chains extend on demand, so short
                // runs never pay for a long horizon and long runs never
                // fall off one.
                let traces =
                    AvailabilityTraces::lazy(model, cfg.population, &mut rng.split("availability"));
                let k = match cohort {
                    CohortSpec::Full => cfg.population,
                    CohortSpec::Sample { k } => k,
                };
                Box::new(AvailabilitySampler::new(traces, k, rng.split("sampler")))
            }
            (None, CohortSpec::Full) => Box::new(FullParticipation),
            (None, CohortSpec::Sample { k }) => {
                Box::new(UniformSampler::new(k, rng.split("sampler")))
            }
        };
        let guard = cfg
            .guard
            .enabled
            .then(|| UpdateGuard::new(cfg.guard, cfg.seed));
        let membership = cfg
            .membership
            .map(|m| MembershipRegistry::new(m, cfg.population));
        let member_rng = membership.is_some().then(|| rng.split("member-sampler"));
        let buffer = cfg.buffer.map(|_| UpdateBuffer::new());
        let network = cfg
            .network
            .map(|n| photon_comms::NetworkModel::new(n.profile, cfg.seed));
        let hierarchy = cfg.hierarchy.map(|h| ShardTree::new(h, cfg.seed));
        Ok(Aggregator {
            cfg,
            params,
            server_opt,
            sampler,
            round: 0,
            telemetry: crate::Telemetry::new(),
            guard,
            loss_ema: None,
            norm_ema: None,
            neutralized: BTreeSet::new(),
            membership,
            buffer,
            member_rng,
            network,
            degraded: false,
            latency_obs: Vec::new(),
            hierarchy,
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// Current round index (completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current global parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Materializes the global model for evaluation or deployment.
    pub fn global_model(&self) -> Gpt {
        Gpt::from_params(self.cfg.model, self.params.clone())
    }

    /// The federation's metrics hub (`AggMetrics`, Algorithm 1 L.10).
    pub fn telemetry(&self) -> &crate::Telemetry {
        &self.telemetry
    }

    /// The server optimizer's exportable state (for checkpointing).
    pub fn server_opt_state(&self) -> photon_fedopt::ServerOptState {
        self.server_opt.export_state()
    }

    /// Restores aggregator state from a checkpoint *without* server
    /// optimizer state: stateful optimizers (FedMom, FedAdam, DiLoCo) are
    /// reinitialized with a logged warning. Prefer
    /// [`Aggregator::restore_with_opt`] with the state saved by
    /// [`crate::save_checkpoint_with_opt`].
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] if the parameter vector does
    /// not match the configured model.
    pub fn restore(&mut self, round: u64, params: Vec<f32>) -> Result<()> {
        self.restore_with_opt(round, params, None)
    }

    /// Restores aggregator state from a checkpoint, including the server
    /// optimizer's state when the checkpoint carries one. Passing `None`
    /// (legacy v1 checkpoints) reinitializes the optimizer; if it is
    /// stateful, a warning is logged because its momentum is lost.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] if the parameter vector does
    /// not match the configured model or the optimizer state belongs to a
    /// different optimizer or shape.
    pub fn restore_with_opt(
        &mut self,
        round: u64,
        params: Vec<f32>,
        server_opt: Option<&photon_fedopt::ServerOptState>,
    ) -> Result<()> {
        if params.len() != self.params.len() {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint has {} parameters, model needs {}",
                params.len(),
                self.params.len()
            )));
        }
        match server_opt {
            Some(state) => self
                .server_opt
                .import_state(state)
                .map_err(|e| CoreError::InvalidConfig(format!("server optimizer state: {e}")))?,
            None => {
                let is_stateful = !self.server_opt.export_state().slots.is_empty();
                if is_stateful {
                    eprintln!(
                        "warning: checkpoint carries no server-optimizer state; \
                         {} momentum reinitialized",
                        self.server_opt.name()
                    );
                }
                self.server_opt = self.cfg.server_opt.build(self.params.len());
            }
        }
        self.params = params;
        self.round = round;
        // Guard and watchdog state is not checkpointed: it re-warms
        // deterministically from the replayed rounds.
        self.guard = self
            .cfg
            .guard
            .enabled
            .then(|| UpdateGuard::new(self.cfg.guard, self.cfg.seed));
        self.loss_ema = None;
        self.norm_ema = None;
        // Degraded mode and the adaptive-deadline window likewise re-warm
        // from the replayed rounds rather than being checkpointed.
        self.degraded = false;
        self.latency_obs.clear();
        // Roster and buffer reset to the founding state; a v3 checkpoint's
        // [`Aggregator::restore_elastic`] overwrites them with the exact
        // image the crashed run had.
        self.membership = self
            .cfg
            .membership
            .map(|m| MembershipRegistry::new(m, self.cfg.population));
        self.buffer = self.cfg.buffer.map(|_| UpdateBuffer::new());
        // The shard tree resets to fully live; a v5 checkpoint's
        // [`Aggregator::restore_hierarchy`] overwrites the dead set with
        // the exact image the crashed run had.
        self.hierarchy = self.cfg.hierarchy.map(|h| ShardTree::new(h, self.cfg.seed));
        Ok(())
    }

    /// The hierarchical-aggregation image to carry in a v5 checkpoint:
    /// the set of crashed shards. `None` when the run has no hierarchy
    /// config.
    pub fn hierarchy_state(&self) -> Option<HierarchyState> {
        self.hierarchy.as_ref().map(ShardTree::state)
    }

    /// Restores the shard tree's dead set from a v5 checkpoint, so the
    /// resumed run re-derives the identical routing — including the
    /// deterministic re-parenting of every orphaned client — the crashed
    /// run had.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] if the run has no hierarchy
    /// config or the dead set references shards outside the tree.
    pub fn restore_hierarchy(&mut self, state: &HierarchyState) -> Result<()> {
        let Some(hcfg) = self.cfg.hierarchy else {
            return Err(CoreError::InvalidConfig(
                "checkpoint carries hierarchy state but the run has no hierarchy config".into(),
            ));
        };
        if let Some(&bad) = state
            .dead_shards
            .iter()
            .find(|&&s| s as usize >= hcfg.shards)
        {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint marks shard {bad} dead but the tree has {} shards",
                hcfg.shards
            )));
        }
        self.hierarchy = Some(ShardTree::from_state(hcfg, self.cfg.seed, state));
        Ok(())
    }

    /// The elastic-membership image to carry in a v3 checkpoint: the
    /// roster snapshot plus any in-flight buffered updates. `None` when
    /// the run has no membership config.
    pub fn elastic_state(&self) -> Option<ElasticState> {
        self.membership.as_ref().map(|reg| ElasticState {
            membership: reg.snapshot(),
            buffer: self.buffer.as_ref().map(|b| b.entries().to_vec()),
        })
    }

    /// Restores the membership registry and update buffer from a v3
    /// checkpoint, so the resumed run continues with the exact roster —
    /// including mid-run joiners and departures — the crashed run had.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] if the run has no membership
    /// config, the snapshot is malformed, or the checkpoint carries
    /// buffered updates while buffering is disabled.
    pub fn restore_elastic(&mut self, state: &ElasticState) -> Result<()> {
        if self.cfg.membership.is_none() {
            return Err(CoreError::InvalidConfig(
                "checkpoint carries membership state but the run has no membership config".into(),
            ));
        }
        let reg = MembershipRegistry::from_snapshot(&state.membership)
            .map_err(|e| CoreError::InvalidConfig(format!("membership snapshot: {e}")))?;
        self.membership = Some(reg);
        match (&state.buffer, self.cfg.buffer.is_some()) {
            (Some(entries), true) => {
                self.buffer = Some(UpdateBuffer::from_entries(entries.clone()))
            }
            (None, true) => self.buffer = Some(UpdateBuffer::new()),
            (Some(entries), false) if !entries.is_empty() => {
                return Err(CoreError::InvalidConfig(
                    "checkpoint carries buffered updates but buffering is disabled".into(),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// How many clients the roster requires (founding members plus every
    /// join so far). `None` when the run has no membership config.
    pub fn roster_len(&self) -> Option<usize> {
        self.membership.as_ref().map(|r| r.roster_len())
    }

    /// Marks `round` as neutralized: it will execute (keeping client-side
    /// state deterministic) but skip the update application and watchdog.
    /// The recovery driver calls this for the round a watchdog rollback
    /// fired in, so the post-restore replay terminates instead of
    /// re-diverging on the same poisoned aggregate.
    pub fn neutralize_round(&mut self, round: u64) {
        self.neutralized.insert(round);
    }

    /// Executes one federated round (Algorithm 1, L.4–11): samples the
    /// cohort, broadcasts the model as a Link frame, runs each sampled
    /// client on its own thread, decodes result frames, aggregates and
    /// applies the server optimizer.
    ///
    /// # Errors
    /// Returns an error if a client thread fails or a frame is corrupt.
    pub fn run_round(&mut self, clients: &mut [LlmClient]) -> Result<RoundRecord> {
        self.run_round_with(clients, None)
    }

    /// [`Aggregator::run_round`] with an optional seeded fault schedule:
    /// scheduled crashes drop the client's result, stragglers are measured
    /// against `round_deadline_ms`, and corrupted result frames go through
    /// the Link retransmit budget before counting as dropouts.
    ///
    /// # Errors
    /// Returns an error if a client thread fails, a frame is corrupt past
    /// recovery, or dropouts exceed what the configuration tolerates.
    pub fn run_round_with(
        &mut self,
        clients: &mut [LlmClient],
        injector: Option<&FaultInjector>,
    ) -> Result<RoundRecord> {
        // Observability: freeze the simulated clock at the round start so
        // every event this round emits carries the same replayable
        // timestamp, then open the round's root span on the driver lane.
        let round_ms = self.cfg.membership.map_or(1_000, |m| m.round_ms);
        if photon_trace::enabled() {
            photon_trace::set_sim_time_us(photon_comms::SimClock::new(round_ms).now_us(self.round));
            photon_trace::set_actor(0);
        }
        let mut round_span =
            photon_trace::span(photon_trace::Phase::Round).arg("round", self.round);
        round_span.set_sim_dur_us(round_ms.saturating_mul(1_000));

        // Elastic membership: apply this round's churn (joins, leaves,
        // lease renewals and expiries) before sampling, then draw the
        // cohort from the live roster instead of the static population.
        let mut churn = crate::membership::ChurnEvents::default();
        let mut handshake_bytes = 0u64;
        let cohort_idx: Vec<usize> = if let Some(reg) = self.membership.as_mut() {
            churn = reg.begin_round(self.round, injector);
            self.telemetry.record_churn(
                churn.joined.len() as u64,
                churn.departed.len() as u64,
                churn.expired.len() as u64,
                churn.rejoined.len() as u64,
            );
            // Every (re)join runs the Hello/LeaseGrant handshake over the
            // Link; the frames count toward the round's wire traffic.
            let mcfg = reg.config();
            let expires_ms = mcfg.clock().now_ms(self.round) + mcfg.lease_ms;
            for &id in churn.joined.iter().chain(&churn.rejoined) {
                let hello = photon_comms::Message::Hello {
                    client_id: id,
                    birth_round: reg.birth_round(id).unwrap_or(self.round),
                }
                .to_frame_opts(self.cfg.wire_opts());
                let grant = photon_comms::Message::LeaseGrant {
                    client_id: id,
                    expires_ms,
                }
                .to_frame_opts(self.cfg.wire_opts());
                handshake_bytes += hello.len() as u64 + grant.len() as u64;
            }
            let live = reg.live_members();
            let mut universe = if live.is_empty() {
                // Every lease lapsed at once: fall back to all reachable
                // members rather than stalling the run.
                reg.reachable_members()
            } else {
                live
            };
            // A client admitted this round spends it on the
            // Hello/LeaseGrant handshake and model transfer; it becomes
            // sampleable from the next round (which also gives the driver
            // a chance to provision its client-side state).
            universe.retain(|id| !churn.joined.contains(id));
            if universe.is_empty() {
                return Err(CoreError::ClientFailure(
                    "no trained member is available to sample this round".into(),
                ));
            }
            let k = match self.cfg.cohort {
                CohortSpec::Full => universe.len(),
                CohortSpec::Sample { k } => k,
            };
            let rng = self
                .member_rng
                .as_ref()
                .expect("membership mode always has a sampling stream");
            sample_live(&universe, k, rng, self.round)
                .into_iter()
                .map(|id| id as usize)
                .collect()
        } else {
            self.sampler.sample(clients.len(), self.round)
        };
        if cohort_idx.is_empty() {
            return Err(CoreError::InvalidConfig("empty cohort".into()));
        }
        if let Some(&max) = cohort_idx.iter().max() {
            if max >= clients.len() {
                return Err(CoreError::InvalidConfig(format!(
                    "cohort references client {max} but only {} are provisioned \
                     (call Federation::sync_roster after membership churn)",
                    clients.len()
                )));
            }
        }
        let cohort_ids: Vec<u32> = cohort_idx.iter().map(|&i| clients[i].id()).collect();

        // Active partitions: fully severed clients exchange no traffic this
        // round (no broadcast charged, result dropped); asymmetrically
        // severed ones hear the broadcast but lose the result on the way
        // back.
        let severed_full = injector.map_or(0, |inj| {
            cohort_ids
                .iter()
                .filter(|&&id| {
                    inj.partition_state(self.round, id) == Some(photon_comms::PartitionKind::Full)
                })
                .count()
        });

        // The straggler deadline this round: adaptive (a percentile of the
        // observed latency window) when configured, the static knob
        // otherwise — and lifted entirely while the aggregator is degraded,
        // so a healing partition's late results are not re-dropped.
        let effective_deadline_ms = if self.degraded {
            None
        } else if let Some(ad) = self.cfg.adaptive_deadline {
            Some(ad.effective_deadline_ms(&self.latency_obs))
        } else {
            self.cfg.round_deadline_ms
        };

        // L.5–6: broadcast and train in parallel, over real Link frames.
        let broadcast = {
            let mut bspan = photon_trace::span(photon_trace::Phase::Broadcast)
                .arg("cohort", cohort_idx.len() as u64);
            let frame = photon_comms::Message::ModelBroadcast {
                round: self.round,
                params: self.params.clone(),
            }
            .to_frame_opts(self.cfg.wire_opts());
            bspan.set_arg("frame_bytes", frame.len() as u64);
            frame
        };
        let broadcast_bytes = broadcast.len() as u64 * (cohort_idx.len() - severed_full) as u64;
        photon_trace::counter_add("round.broadcast_bytes", broadcast_bytes);

        let (tx, rx) = unbounded::<ClientReply>();
        let round = self.round;
        let cfg = &self.cfg;
        let cohort_ids_ref = &cohort_ids;
        // Membership test via sorted lookup: the provisioned roster can be
        // 10^5+ clients while the cohort is thousands, so a linear
        // `contains` per client would make the spawn loop O(pop × cohort).
        let mut cohort_sorted = cohort_idx.clone();
        cohort_sorted.sort_unstable();
        crossbeam::thread::scope(|scope| {
            for (i, client) in clients.iter_mut().enumerate() {
                if cohort_sorted.binary_search(&i).is_err() {
                    continue;
                }
                let tx = tx.clone();
                let frame = broadcast.clone();
                scope.spawn(move |_| {
                    let id = client.id();
                    // Send failures mean the aggregator stopped listening;
                    // the thread just winds down (no panic either way).
                    let _ = tx.send(client_round(client, frame, round, cohort_ids_ref, cfg, {
                        injector.and_then(|inj| inj.client_fault(round, id))
                    }));
                });
            }
        })
        .map_err(|_| CoreError::ClientFailure("a client thread panicked".into()))?;
        drop(tx);

        // L.7–8: collect updates and aggregate. Results arrive in thread
        // completion order; sort by client id so float accumulation is
        // bit-reproducible across runs.
        let buffered_mode = self.buffer.is_some();
        let mut collected = Vec::with_capacity(cohort_idx.len());
        let mut result_bytes = 0u64;
        let mut crashes = 0usize;
        let mut stragglers = 0usize;
        let mut link_dropouts = 0usize;
        let mut retransmits = 0u64;
        let mut partition_drops = 0usize;
        let mut net_losses = 0u64;
        let mut net_duplicates = 0u64;
        let mut net_reorders = 0u64;
        let mut round_latencies: Vec<u64> = Vec::new();
        // Replies arrive in thread-completion order; process them in
        // client-id order so the aggregator-side Link deliveries (and the
        // trace events they emit) replay in a deterministic sequence.
        let mut replies: Vec<ClientReply> = rx.iter().collect();
        replies.sort_by_key(ClientReply::client_id);
        for reply in replies {
            let (client_id, frame, delay_ms, corrupt_attempts) = match reply {
                ClientReply::Crash { .. } => {
                    crashes += 1;
                    continue;
                }
                ClientReply::Error { client_id, message } => {
                    return Err(CoreError::ClientFailure(format!(
                        "client {client_id}: {message}"
                    )));
                }
                ClientReply::Frame {
                    client_id,
                    frame,
                    delay_ms,
                    corrupt_attempts,
                } => (client_id, frame, delay_ms, corrupt_attempts),
            };
            // A severed client's result never reaches the aggregator (it
            // still trained, keeping its local state deterministic across
            // the heal).
            if let Some(kind) = injector.and_then(|inj| inj.partition_state(self.round, client_id))
            {
                partition_drops += 1;
                photon_trace::instant(
                    photon_trace::Phase::NetPartition,
                    "net_partition",
                    &[
                        ("client", client_id as u64),
                        ("full", u64::from(kind == photon_comms::PartitionKind::Full)),
                    ],
                );
                continue;
            }
            // The chaos network decides what the link does to this
            // delivery; the fault plan can pile scheduled losses and a
            // pinned-slow link on top.
            let frame_len = frame.len() as u64;
            let outcome = self
                .network
                .as_ref()
                .map(|net| net.link_outcome(self.round, client_id, frame.len()))
                .unwrap_or_default();
            let mut latency_ms = outcome.latency_ms;
            if injector.is_some_and(|inj| inj.slowlink_at(self.round, client_id)) {
                let factor = self.cfg.network.map_or(10, |n| n.slow_factor);
                latency_ms = latency_ms.saturating_mul(factor).max(1_000);
            }
            let lost_attempts = outcome.lost_attempts
                + injector.map_or(0, |inj| inj.link_loss(self.round, client_id));
            net_losses += lost_attempts as u64;
            net_duplicates += outcome.duplicates as u64;
            net_reorders += u64::from(outcome.reorder_ms > 0);
            // The result frame crosses the lossy Link: CRC-failed and lost
            // attempts are retransmitted (deterministically) up to the
            // budget, each paying the link's one-way latency.
            let link_seed = mix_link_seed(self.cfg.seed, self.round, client_id);
            let (delivered, report) = photon_comms::deliver_chaos(
                &frame,
                corrupt_attempts,
                lost_attempts,
                latency_ms,
                link_seed,
                &self.cfg.retransmit,
            );
            result_bytes += report.wire_bytes;
            retransmits += u64::from(report.attempts.saturating_sub(1));
            let frame = match delivered {
                Ok(f) => f,
                Err(_) => {
                    // Budget (or delivery timeout) exhausted: the client
                    // counts as dropped out.
                    link_dropouts += 1;
                    continue;
                }
            };
            // Straggler policy: simulated lateness is the injected delay
            // plus the delivery's in-flight time, retry backoff and any
            // reorder delay. Synchronous rounds drop late results; buffered
            // rounds defer them to the simulated round their lateness lands
            // them in, where they commit with a staleness discount instead.
            let lateness = delay_ms + report.backoff_ms + report.latency_ms + outcome.reorder_ms;
            if self.network.is_some() {
                self.telemetry.record_link_latency(lateness);
                photon_trace::observe("net.latency_ms", lateness);
            }
            round_latencies.push(lateness);
            let mut arrival_round = self.round;
            if let Some(deadline) = effective_deadline_ms {
                if lateness > deadline {
                    stragglers += 1;
                    if buffered_mode {
                        arrival_round = self.round + 1 + (lateness - deadline) / round_ms;
                    } else {
                        continue;
                    }
                }
            }
            match photon_comms::Message::from_frame(frame)? {
                photon_comms::Message::ClientResult {
                    client_id,
                    delta,
                    weight,
                    metrics,
                    ..
                } => {
                    // A duplicating link re-delivers the decoded frame; the
                    // copy is charged to the wire and discarded by dedup.
                    for _ in 0..outcome.duplicates {
                        result_bytes += frame_len;
                        collected.push((client_id, delta.clone(), weight, metrics, arrival_round));
                    }
                    collected.push((client_id, delta, weight, metrics, arrival_round));
                }
                other => {
                    return Err(CoreError::ClientFailure(format!(
                        "unexpected message from client: {other:?}"
                    )))
                }
            }
        }
        collected.sort_by_key(|(id, _, _, _, _)| *id);
        // Dedup: a duplicating link must never double-apply one client's
        // update. Within a round each client legitimately appears once, so
        // id-adjacent equals are exactly the link's duplicate deliveries.
        let before_dedup = collected.len();
        collected.dedup_by(|a, b| a.0 == b.0);
        let dup_drops = (before_dedup - collected.len()) as u64;
        let received = collected.len();

        // Feed the adaptive-deadline window (bounded, deterministic: the
        // replies were processed in client-id order).
        if let Some(ad) = self.cfg.adaptive_deadline {
            self.latency_obs.extend(&round_latencies);
            if self.latency_obs.len() > ad.window {
                let excess = self.latency_obs.len() - ad.window;
                self.latency_obs.drain(..excess);
            }
        }

        let wire_bytes = broadcast_bytes + result_bytes + handshake_bytes;
        round_span.set_arg("cohort", cohort_ids.len() as u64);
        round_span.set_arg("wire_bytes", wire_bytes);
        round_span.set_arg("received", received as u64);
        photon_trace::counter_add("round.wire_bytes", wire_bytes);
        photon_trace::observe("round.wire_bytes", wire_bytes);
        photon_trace::counter_add("rounds.total", 1);

        // Shard faults are drawn from the salted fault-plan columns for
        // the shards still alive this round (a dead shard cannot crash or
        // hang again).
        let (shard_crashes, shard_hangs) = match (&self.hierarchy, injector) {
            (Some(tree), Some(inj)) => {
                let live = tree.live_shards();
                (
                    live.iter()
                        .copied()
                        .filter(|&s| inj.shardcrash_at(self.round, s))
                        .collect(),
                    live.iter()
                        .copied()
                        .filter(|&s| inj.shardhang_at(self.round, s))
                        .collect(),
                )
            }
            _ => (Vec::new(), Vec::new()),
        };
        let acct = RoundAccounting {
            crashes,
            stragglers,
            link_dropouts,
            retransmits,
            wire_bytes,
            joined: churn.joined.len(),
            departed: churn.departed.len(),
            lease_expired: churn.expired.len(),
            rejoined: churn.rejoined.len(),
            unreachable: partition_drops,
            effective_deadline_ms,
            net_losses,
            net_duplicates,
            net_reorders,
            dup_drops,
            shard_crashes,
            shard_hangs,
        };
        if buffered_mode {
            return self.finish_buffered_round(collected, cohort_idx, acct);
        }
        self.finish_round(collected, cohort_idx, acct)
    }

    /// The synchronous commit tail of a round, shared verbatim between the
    /// in-process simulator ([`Aggregator::run_round_with`]) and the
    /// multi-process TCP deployment ([`Aggregator::commit_external_round`]):
    /// network telemetry, the degraded-quorum gate, guard screening, the
    /// partial-results gate, the loss-spike watchdog, robust aggregation,
    /// and the server-optimizer step. Keeping one tail means both backends
    /// apply results with identical semantics — bit-identical in sim mode.
    fn finish_round(
        &mut self,
        collected: Vec<(u32, Vec<f32>, f64, photon_comms::TrainMetrics, u64)>,
        cohort_idx: Vec<usize>,
        acct: RoundAccounting,
    ) -> Result<RoundRecord> {
        if self.hierarchy.is_some() {
            return self.finish_hierarchy_round(collected, cohort_idx, acct);
        }
        let received = collected.len();
        if acct.net_losses + acct.net_duplicates + acct.net_reorders + acct.dup_drops > 0
            || acct.unreachable > 0
        {
            self.telemetry.record_network(
                acct.net_losses,
                acct.net_duplicates,
                acct.net_reorders,
                acct.dup_drops,
                acct.unreachable as u64,
            );
        }

        // Graceful degradation: when an active partition (or mass loss)
        // leaves the round below the reachability quorum, committing the
        // minority slice would skew the model toward whoever stayed
        // connected. The round records its telemetry but commits nothing;
        // the deadline stays lifted until a round reaches quorum again, at
        // which point the aggregator recovers automatically.
        let mut degraded_round = false;
        if let Some(net) = self.cfg.network {
            let quorum = (((cohort_idx.len() as f64) * net.min_quorum_frac).ceil() as usize).max(1);
            if received < quorum {
                degraded_round = true;
                self.degraded = true;
                self.telemetry.record_degraded_round();
                photon_trace::instant(
                    photon_trace::Phase::DegradedRound,
                    "degraded_round",
                    &[
                        ("round", self.round),
                        ("received", received as u64),
                        ("quorum", quorum as u64),
                    ],
                );
            } else if self.degraded {
                self.degraded = false;
                self.telemetry.record_degraded_recovery();
            }
        }
        if degraded_round {
            self.telemetry.record_round_faults(
                acct.crashes as u64,
                acct.stragglers as u64,
                acct.retransmits,
                acct.link_dropouts as u64,
            );
            let mut losses = Vec::with_capacity(collected.len());
            for (id, _, _, metrics, _) in &collected {
                self.telemetry.record(*id, self.round, metrics);
                losses.push(metrics.mean_loss);
            }
            let mean_client_loss = if losses.is_empty() {
                0.0
            } else {
                losses.iter().sum::<f32>() / losses.len() as f32
            };
            let record = RoundRecord {
                round: self.round,
                cohort: cohort_idx,
                dropouts: acct.crashes + acct.link_dropouts,
                stragglers: acct.stragglers,
                retransmits: acct.retransmits,
                mean_client_loss,
                pseudo_grad_norm: 0.0,
                wire_bytes: acct.wire_bytes,
                eval_ppl: None,
                guard_rejected: 0,
                guard_clipped: 0,
                quarantined: 0,
                neutralized: self.neutralized.contains(&self.round),
                joined: acct.joined,
                departed: acct.departed,
                lease_expired: acct.lease_expired,
                rejoined: acct.rejoined,
                buffered: 0,
                commit_deferred: false,
                degraded: true,
                unreachable: acct.unreachable,
                effective_deadline_ms: acct.effective_deadline_ms,
                shards: 0,
                shard_degraded: 0,
                shard_crashes: 0,
                shard_hangs: 0,
                reparented: 0,
                peak_resident: 0,
            };
            self.round += 1;
            return Ok(record);
        }

        // Construct updates; a malformed aggregation weight surfaces as a
        // recoverable failure (guarded runs quarantine the sender instead
        // of failing the round).
        let mut survivor_ids = Vec::with_capacity(received);
        let mut updates = Vec::with_capacity(received);
        let mut survivor_metrics = Vec::with_capacity(received);
        let mut guard_rejected = 0usize;
        for (id, delta, weight, metrics, _) in collected {
            match ClientUpdate::new(delta, weight) {
                Ok(update) => {
                    survivor_ids.push(id);
                    updates.push(update);
                    survivor_metrics.push(metrics);
                }
                Err(e) => {
                    let Some(guard) = self.guard.as_mut() else {
                        return Err(CoreError::ClientFailure(format!("client {id}: {e}")));
                    };
                    guard.quarantine(self.round, id);
                    guard_rejected += 1;
                    self.telemetry.record_guard(1, 0, 0, 0);
                }
            }
        }

        // Admission checks: quarantine skips, finiteness, norm clipping,
        // cohort outlier rejection. Rejected updates (and their loss
        // metrics — a poisoned loss must not steer the watchdog) are
        // dropped before aggregation.
        let mut guard_clipped = 0usize;
        let mut quarantined = 0usize;
        if let Some(guard) = self.guard.as_mut() {
            let report = guard.screen_round(self.round, &survivor_ids, &mut updates);
            self.telemetry.record_guard(
                report.rejected_nonfinite,
                report.rejected_outliers,
                report.clipped,
                report.quarantine_skips,
            );
            guard_rejected += (report.rejected_nonfinite + report.rejected_outliers) as usize;
            guard_clipped = report.clipped as usize;
            quarantined = report.quarantine_skips as usize;
            let mut keep = report.decisions.iter().map(|d| d.admitted());
            let mut keep2 = report.decisions.iter().map(|d| d.admitted());
            let mut keep3 = report.decisions.iter().map(|d| d.admitted());
            survivor_ids.retain(|_| keep.next().unwrap());
            updates.retain(|_| keep2.next().unwrap());
            survivor_metrics.retain(|_| keep3.next().unwrap());
        }

        let dropouts = acct.crashes + acct.link_dropouts;
        // Guard rejections are deliberate exclusions, not transport
        // failures: the partial-results gate only counts clients that never
        // delivered a usable frame.
        let missing = cohort_idx.len() - received;
        if missing > 0 && (!self.cfg.allow_partial_results || received == 0) {
            // §4: only the partial-update path may proceed with survivors.
            return Err(CoreError::ClientFailure(format!(
                "expected {} results, got {} (enable allow_partial_results \
                 to aggregate survivors)",
                cohort_idx.len(),
                received
            )));
        }
        if updates.is_empty() {
            return Err(CoreError::ClientFailure(
                "the guard rejected the entire cohort".into(),
            ));
        }
        self.telemetry.record_round_faults(
            acct.crashes as u64,
            acct.stragglers as u64,
            acct.retransmits,
            acct.link_dropouts as u64,
        );
        let mut losses = Vec::with_capacity(updates.len());
        for (id, metrics) in survivor_ids.iter().zip(&survivor_metrics) {
            self.telemetry.record(*id, self.round, metrics);
            losses.push(metrics.mean_loss);
        }

        let neutralized = self.neutralized.contains(&self.round);
        let avg_delta = self.cfg.aggregation.aggregate(&updates);
        let pseudo_grad_norm = photon_tensor::ops::l2_norm(&avg_delta);
        let mean_client_loss = losses.iter().sum::<f32>() / losses.len() as f32;

        if !neutralized {
            // Loss-spike watchdog, BEFORE the server optimizer touches the
            // parameters: a divergent round leaves the model untouched and
            // the recovery driver rolls back to the last-good checkpoint.
            self.check_watchdog(mean_client_loss, pseudo_grad_norm)?;

            // §6 client-contribution measurement: cosine alignment between
            // each client's update and the aggregate.
            if pseudo_grad_norm > 0.0 {
                for (id, update) in survivor_ids.iter().zip(&updates) {
                    let dot = photon_tensor::ops::dot(&update.delta, &avg_delta);
                    let norm = update.norm();
                    if norm > 0.0 {
                        self.telemetry
                            .record_alignment(*id, dot / (norm * pseudo_grad_norm));
                    }
                }
            }
            // L.9: apply the server optimization policy.
            {
                let _opt_span = photon_trace::span(photon_trace::Phase::ServerOpt)
                    .arg("round", self.round)
                    .arg("updates", updates.len() as u64);
                self.server_opt
                    .apply(&mut self.params, &avg_delta, self.round);
            }
            // The round's update stood: it is *committed*, not just seen.
            self.telemetry.record_committed_round(self.round);
            let blend = |ema: Option<f64>, v: f64| match ema {
                Some(e) => WATCHDOG_EMA_BETA * e + (1.0 - WATCHDOG_EMA_BETA) * v,
                None => v,
            };
            self.loss_ema = Some(blend(self.loss_ema, mean_client_loss as f64));
            self.norm_ema = Some(blend(self.norm_ema, pseudo_grad_norm as f64));
        }

        let record = RoundRecord {
            round: self.round,
            cohort: cohort_idx,
            dropouts,
            stragglers: acct.stragglers,
            retransmits: acct.retransmits,
            mean_client_loss,
            pseudo_grad_norm,
            wire_bytes: acct.wire_bytes,
            eval_ppl: None,
            guard_rejected,
            guard_clipped,
            quarantined,
            neutralized,
            joined: acct.joined,
            departed: acct.departed,
            lease_expired: acct.lease_expired,
            rejoined: acct.rejoined,
            buffered: 0,
            commit_deferred: false,
            degraded: false,
            unreachable: acct.unreachable,
            effective_deadline_ms: acct.effective_deadline_ms,
            shards: 0,
            shard_degraded: 0,
            shard_crashes: 0,
            shard_hangs: 0,
            reparented: 0,
            peak_resident: 0,
        };
        self.round += 1;
        Ok(record)
    }

    /// The hierarchical commit tail: the cohort is partitioned onto the
    /// live sub-aggregator shards (`id % shards`, with orphans of dead
    /// shards deterministically fostered), each shard folds its arrived
    /// slice through a streaming memory-bounded merge, and the shard
    /// aggregates reduce at the root through the same canonical fold —
    /// after the root guard screen and under the same degraded-quorum
    /// gate, watchdog and server-optimizer step as the flat tail.
    ///
    /// Failure domains compose per level: a `shardcrash`/`shardhang`
    /// loses only that shard's slice this round (a crash additionally
    /// kills the shard, so its clients re-parent from the next round), a
    /// shard missing its `ceil(shard_quorum_frac × slice)` quorum
    /// degrades alone, and a round where *every* slice is lost commits
    /// nothing — recorded as degraded, never a rollback.
    fn finish_hierarchy_round(
        &mut self,
        collected: Vec<(u32, Vec<f32>, f64, photon_comms::TrainMetrics, u64)>,
        cohort_idx: Vec<usize>,
        acct: RoundAccounting,
    ) -> Result<RoundRecord> {
        let tree = self
            .hierarchy
            .clone()
            .expect("hierarchy tail requires a shard tree");
        let hcfg = tree.config();
        let received = collected.len();
        if acct.net_losses + acct.net_duplicates + acct.net_reorders + acct.dup_drops > 0
            || acct.unreachable > 0
        {
            self.telemetry.record_network(
                acct.net_losses,
                acct.net_duplicates,
                acct.net_reorders,
                acct.dup_drops,
                acct.unreachable as u64,
            );
        }
        self.telemetry.record_round_faults(
            acct.crashes as u64,
            acct.stragglers as u64,
            acct.retransmits,
            acct.link_dropouts as u64,
        );

        // Route the assigned cohort (not just the arrivals) onto the live
        // tree: per-shard quorum denominators come from the slice a shard
        // was responsible for, so silent losses count against it.
        let cohort_ids: Vec<u32> = cohort_idx.iter().map(|&i| i as u32).collect();
        let part = tree.partition(&cohort_ids);
        self.telemetry.record_reparented(part.reparented as u64);
        // This round's routing is already fixed; a crash takes effect on
        // the *next* partition, which every exit path below must see.
        if let Some(live_tree) = self.hierarchy.as_mut() {
            for &s in &acct.shard_crashes {
                live_tree.mark_crashed(s);
            }
        }

        // The root-level degraded gate (network reachability quorum) is
        // unchanged by the tree: a partitioned round commits nothing.
        let mut degraded_round = false;
        if let Some(net) = self.cfg.network {
            let quorum = (((cohort_idx.len() as f64) * net.min_quorum_frac).ceil() as usize).max(1);
            if received < quorum {
                degraded_round = true;
                self.degraded = true;
                self.telemetry.record_degraded_round();
                photon_trace::instant(
                    photon_trace::Phase::DegradedRound,
                    "degraded_round",
                    &[
                        ("round", self.round),
                        ("received", received as u64),
                        ("quorum", quorum as u64),
                    ],
                );
            } else if self.degraded {
                self.degraded = false;
                self.telemetry.record_degraded_recovery();
            }
        }
        if degraded_round {
            self.telemetry.record_shard_faults(
                acct.shard_crashes.len() as u64,
                acct.shard_hangs.len() as u64,
                0,
            );
            let mut losses = Vec::with_capacity(collected.len());
            for (id, _, _, metrics, _) in &collected {
                self.telemetry.record(*id, self.round, metrics);
                losses.push(metrics.mean_loss);
            }
            let mean_client_loss = if losses.is_empty() {
                0.0
            } else {
                losses.iter().sum::<f32>() / losses.len() as f32
            };
            let record = self.hierarchy_record(
                cohort_idx,
                &acct,
                &part,
                mean_client_loss,
                0.0,
                0,
                0,
                0,
                0,
                0,
                true,
            );
            self.round += 1;
            return Ok(record);
        }

        // Group arrivals by the shard they report to; arrivals with no
        // live shard to report to are lost.
        type ShardArrivals = Vec<(u32, Vec<f32>, f64, photon_comms::TrainMetrics)>;
        let mut routed: std::collections::BTreeMap<u32, ShardArrivals> =
            std::collections::BTreeMap::new();
        for (id, delta, weight, metrics, _) in collected {
            if let Some(s) = tree.shard_of(id) {
                routed
                    .entry(s)
                    .or_default()
                    .push((id, delta, weight, metrics));
            }
        }

        // Per-shard streaming merges, ascending shard id so the reduce
        // replays bit-identically.
        let mut shard_ids: Vec<u32> = Vec::new();
        let mut shard_updates: Vec<ClientUpdate> = Vec::new();
        let mut shard_degraded = 0usize;
        let mut peak_resident = 0usize;
        let mut guard_rejected = 0usize;
        let mut quarantined = 0usize;
        let mut losses: Vec<f32> = Vec::new();
        for (&shard, slice) in &part.shards {
            if slice.is_empty() {
                continue;
            }
            if acct.shard_crashes.contains(&shard) || acct.shard_hangs.contains(&shard) {
                // The sub-aggregator died or stalled mid-round: its whole
                // slice is lost; siblings are unaffected.
                photon_trace::instant(
                    photon_trace::Phase::ShardDegraded,
                    "shard_degraded",
                    &[
                        ("shard", shard as u64),
                        ("round", self.round),
                        ("crash", u64::from(acct.shard_crashes.contains(&shard))),
                        ("slice", slice.len() as u64),
                    ],
                );
                continue;
            }
            let arrivals = routed.remove(&shard).unwrap_or_default();
            let quorum = hcfg.shard_quorum(slice.len());
            let mut merge_span = photon_trace::span(photon_trace::Phase::ShardMerge)
                .arg("shard", shard as u64)
                .arg("round", self.round)
                .arg("slice", slice.len() as u64)
                .arg("arrived", arrivals.len() as u64);
            // Leaf admission mirrors the flat path's arrival checks:
            // quarantined senders are skipped and a malformed weight
            // quarantines (or fails the round when unguarded). Outlier
            // screening runs at the root, over shard aggregates.
            let mut admitted: Vec<(u32, ClientUpdate, photon_comms::TrainMetrics)> = Vec::new();
            for (id, delta, weight, metrics) in arrivals {
                if self
                    .guard
                    .as_ref()
                    .is_some_and(|g| g.is_quarantined(id, self.round))
                {
                    quarantined += 1;
                    self.telemetry.record_guard(0, 0, 0, 1);
                    continue;
                }
                match ClientUpdate::new(delta, weight) {
                    Ok(update) => admitted.push((id, update, metrics)),
                    Err(e) => {
                        let Some(guard) = self.guard.as_mut() else {
                            return Err(CoreError::ClientFailure(format!("client {id}: {e}")));
                        };
                        guard.quarantine(self.round, id);
                        guard_rejected += 1;
                        self.telemetry.record_guard(1, 0, 0, 0);
                    }
                }
            }
            // Arrivals were processed in ascending client-id order, so the
            // expected key set is already strictly ascending and each push
            // folds at the frontier; out-of-order arrival permutations are
            // covered by the streaming-merge property tests.
            let expected: Vec<(u64, u32)> = admitted
                .iter()
                .map(|(id, _, _)| (self.round, *id))
                .collect();
            let mut merge = StreamingMerge::new(expected, hcfg.max_resident);
            let mut member_meta: Vec<(u32, photon_comms::TrainMetrics)> =
                Vec::with_capacity(admitted.len());
            for (id, update, metrics) in admitted {
                merge.push((self.round, id), update);
                member_meta.push((id, metrics));
            }
            peak_resident = peak_resident.max(merge.peak_resident());
            let folded = merge.folded();
            merge_span.set_arg("folded", folded as u64);
            merge_span.set_arg("peak_resident", merge.peak_resident() as u64);
            let commit = if folded >= quorum && folded > 0 {
                merge
                    .finish()
                    .and_then(|(merged, weight)| ClientUpdate::new(merged, weight).ok())
            } else {
                None
            };
            match commit {
                Some(update) => {
                    shard_ids.push(SHARD_GUARD_BASE + shard);
                    shard_updates.push(update);
                    for (id, metrics) in member_meta {
                        self.telemetry.record(id, self.round, &metrics);
                        losses.push(metrics.mean_loss);
                    }
                }
                None => {
                    // Quorum miss (or a degenerate fold): the slice is
                    // dropped without affecting the siblings.
                    shard_degraded += 1;
                    photon_trace::instant(
                        photon_trace::Phase::ShardDegraded,
                        "shard_degraded",
                        &[
                            ("shard", shard as u64),
                            ("round", self.round),
                            ("crash", 0),
                            ("slice", slice.len() as u64),
                        ],
                    );
                }
            }
        }
        self.telemetry.record_shard_faults(
            acct.shard_crashes.len() as u64,
            acct.shard_hangs.len() as u64,
            shard_degraded as u64,
        );

        let mean_client_loss = if losses.is_empty() {
            0.0
        } else {
            losses.iter().sum::<f32>() / losses.len() as f32
        };
        if shard_updates.is_empty() {
            // Every slice was lost (crashes, hangs, quorum misses, or all
            // shards dead). Committing nothing and carrying on is the
            // whole point of the tree: no rollback, no error.
            let record = self.hierarchy_record(
                cohort_idx,
                &acct,
                &part,
                mean_client_loss,
                0.0,
                guard_rejected,
                0,
                quarantined,
                shard_degraded,
                peak_resident,
                true,
            );
            self.round += 1;
            return Ok(record);
        }

        // The transport-level partial gate is unchanged: shard-level
        // drops are deliberate exclusions, not missing deliveries.
        let missing = cohort_idx.len() - received;
        if missing > 0 && (!self.cfg.allow_partial_results || received == 0) {
            return Err(CoreError::ClientFailure(format!(
                "expected {} results, got {} (enable allow_partial_results \
                 to aggregate survivors)",
                cohort_idx.len(),
                received
            )));
        }

        // The guard's full screen (finiteness, norm clipping, outlier
        // rejection) runs at the root over the shard aggregates, under
        // pseudo-ids so a repeatedly-poisoned shard earns quarantine.
        let mut guard_clipped = 0usize;
        if let Some(guard) = self.guard.as_mut() {
            let report = guard.screen_round(self.round, &shard_ids, &mut shard_updates);
            self.telemetry.record_guard(
                report.rejected_nonfinite,
                report.rejected_outliers,
                report.clipped,
                report.quarantine_skips,
            );
            guard_rejected += (report.rejected_nonfinite + report.rejected_outliers) as usize;
            guard_clipped = report.clipped as usize;
            quarantined += report.quarantine_skips as usize;
            let mut keep = report.decisions.iter().map(|d| d.admitted());
            let mut keep2 = report.decisions.iter().map(|d| d.admitted());
            shard_ids.retain(|_| keep.next().unwrap());
            shard_updates.retain(|_| keep2.next().unwrap());
        }
        if shard_updates.is_empty() {
            return Err(CoreError::ClientFailure(
                "the guard rejected every shard aggregate".into(),
            ));
        }

        let neutralized = self.neutralized.contains(&self.round);
        // The root reduce: for the weighted mean the canonical fold makes
        // the whole tree a pure re-bracketing of one summation order;
        // robust rules aggregate the shard pseudo-updates directly.
        let avg_delta = match self.cfg.aggregation {
            AggregationKind::Mean => canonical_fold(&shard_updates)
                .map(|(delta, _)| delta)
                .expect("root reduce over a non-empty shard set"),
            _ => self.cfg.aggregation.aggregate(&shard_updates),
        };
        let pseudo_grad_norm = photon_tensor::ops::l2_norm(&avg_delta);
        if !neutralized {
            self.check_watchdog(mean_client_loss, pseudo_grad_norm)?;
            {
                let _opt_span = photon_trace::span(photon_trace::Phase::ServerOpt)
                    .arg("round", self.round)
                    .arg("updates", shard_updates.len() as u64);
                self.server_opt
                    .apply(&mut self.params, &avg_delta, self.round);
            }
            self.telemetry.record_committed_round(self.round);
            let blend = |ema: Option<f64>, v: f64| match ema {
                Some(e) => WATCHDOG_EMA_BETA * e + (1.0 - WATCHDOG_EMA_BETA) * v,
                None => v,
            };
            self.loss_ema = Some(blend(self.loss_ema, mean_client_loss as f64));
            self.norm_ema = Some(blend(self.norm_ema, pseudo_grad_norm as f64));
        }

        let record = self.hierarchy_record(
            cohort_idx,
            &acct,
            &part,
            mean_client_loss,
            pseudo_grad_norm,
            guard_rejected,
            guard_clipped,
            quarantined,
            shard_degraded,
            peak_resident,
            false,
        );
        self.round += 1;
        Ok(record)
    }

    /// Assembles the [`RoundRecord`] of a hierarchical round; shared by
    /// the committed, all-slices-lost and degraded exits.
    #[allow(clippy::too_many_arguments)]
    fn hierarchy_record(
        &self,
        cohort_idx: Vec<usize>,
        acct: &RoundAccounting,
        part: &crate::hierarchy::ShardPartition,
        mean_client_loss: f32,
        pseudo_grad_norm: f32,
        guard_rejected: usize,
        guard_clipped: usize,
        quarantined: usize,
        shard_degraded: usize,
        peak_resident: usize,
        degraded: bool,
    ) -> RoundRecord {
        RoundRecord {
            round: self.round,
            cohort: cohort_idx,
            dropouts: acct.crashes + acct.link_dropouts,
            stragglers: acct.stragglers,
            retransmits: acct.retransmits,
            mean_client_loss,
            pseudo_grad_norm,
            wire_bytes: acct.wire_bytes,
            eval_ppl: None,
            guard_rejected,
            guard_clipped,
            quarantined,
            neutralized: self.neutralized.contains(&self.round),
            joined: acct.joined,
            departed: acct.departed,
            lease_expired: acct.lease_expired,
            rejoined: acct.rejoined,
            buffered: 0,
            commit_deferred: false,
            degraded,
            unreachable: acct.unreachable,
            effective_deadline_ms: acct.effective_deadline_ms,
            shards: part.shards.len(),
            shard_degraded,
            shard_crashes: acct.shard_crashes.len(),
            shard_hangs: acct.shard_hangs.len(),
            reparented: part.reparented,
            peak_resident,
        }
    }

    /// Commits one federated round from results gathered by an external
    /// transport (the `photon-net` TCP coordinator) instead of in-process
    /// client threads. `results` carries `(client_id, delta, weight,
    /// metrics)` tuples exactly as decoded from `ClientResult` frames;
    /// `cohort_ids` is the set of clients the round was assigned to, and
    /// `wire_bytes` what the transport actually moved.
    ///
    /// Re-deliveries are removed by the same `(client_id)`-keyed sort +
    /// dedup the simulated Link uses, results from clients outside the
    /// cohort are dropped, and the commit runs through the identical
    /// shared tail (guard screening, degraded-quorum gate, watchdog,
    /// robust aggregation, server optimizer) as
    /// [`Aggregator::run_round_with`] — so a retried frame can never
    /// double-apply and both backends converge identically.
    ///
    /// # Errors
    /// Same failure surface as [`Aggregator::run_round_with`]: partial
    /// results without `allow_partial_results`, an empty post-guard
    /// cohort, or a watchdog trip.
    pub fn commit_external_round(
        &mut self,
        results: Vec<(u32, Vec<f32>, f64, photon_comms::TrainMetrics)>,
        cohort_ids: &[u32],
        wire_bytes: u64,
    ) -> Result<RoundRecord> {
        let round = self.round;
        let mut round_span = photon_trace::span(photon_trace::Phase::Round).arg("round", round);
        let mut collected: Vec<(u32, Vec<f32>, f64, photon_comms::TrainMetrics, u64)> = results
            .into_iter()
            .filter(|(id, _, _, _)| cohort_ids.contains(id))
            .map(|(id, delta, weight, metrics)| (id, delta, weight, metrics, round))
            .collect();
        collected.sort_by_key(|(id, _, _, _, _)| *id);
        let before_dedup = collected.len();
        collected.dedup_by(|a, b| a.0 == b.0);
        let dup_drops = (before_dedup - collected.len()) as u64;
        let received = collected.len();
        round_span.set_arg("cohort", cohort_ids.len() as u64);
        round_span.set_arg("wire_bytes", wire_bytes);
        round_span.set_arg("received", received as u64);
        photon_trace::counter_add("round.wire_bytes", wire_bytes);
        photon_trace::observe("round.wire_bytes", wire_bytes);
        photon_trace::counter_add("rounds.total", 1);
        let acct = RoundAccounting {
            crashes: 0,
            stragglers: 0,
            // A cohort member that never delivered a usable result is a
            // transport dropout from the aggregator's point of view.
            link_dropouts: cohort_ids.len().saturating_sub(received),
            retransmits: 0,
            wire_bytes,
            joined: 0,
            departed: 0,
            lease_expired: 0,
            rejoined: 0,
            unreachable: 0,
            effective_deadline_ms: None,
            net_losses: 0,
            net_duplicates: 0,
            net_reorders: 0,
            dup_drops,
            shard_crashes: Vec::new(),
            shard_hangs: Vec::new(),
        };
        let cohort_idx = cohort_ids.iter().map(|&id| id as usize).collect();
        self.finish_round(collected, cohort_idx, acct)
    }

    /// The buffered (semi-synchronous) tail of a round: every arrived
    /// result is enqueued in the [`UpdateBuffer`]; a merge commits only
    /// when the pending set reaches the quorum — or when a pending update
    /// has waited longer than one lease duration, the deadline path that
    /// keeps sub-quorum runs making progress. Committed updates are
    /// staleness-discounted, guard-screened, and applied exactly like a
    /// synchronous merge.
    fn finish_buffered_round(
        &mut self,
        collected: Vec<(u32, Vec<f32>, f64, photon_comms::TrainMetrics, u64)>,
        cohort_idx: Vec<usize>,
        acct: RoundAccounting,
    ) -> Result<RoundRecord> {
        let bcfg = self
            .cfg
            .buffer
            .expect("buffered mode implies buffer config");
        let mcfg = self.cfg.membership.expect("buffering requires membership");
        // Hierarchy mode: every arrival passes through its sub-aggregator
        // shard on the way to the buffer, so shard faults drop the slice
        // at arrival time and orphans of dead shards are fostered.
        let tree = self.hierarchy.clone();
        let mut reparented = 0usize;
        let mut guard_rejected = 0usize;
        let mut dup_drops = acct.dup_drops;
        let mut arrival_losses = Vec::new();
        for (id, delta, weight, metrics, arrival_round) in collected {
            if let Some(tree) = &tree {
                match tree.shard_of(id) {
                    Some(s) if acct.shard_crashes.contains(&s) || acct.shard_hangs.contains(&s) => {
                        // The sub-aggregator died or stalled: the arrival
                        // never reaches the buffer.
                        continue;
                    }
                    Some(s) => {
                        if s != tree.home_shard(id) {
                            reparented += 1;
                        }
                    }
                    None => continue,
                }
            }
            // Weight validity is enforced at arrival (mirroring the
            // synchronous path) so a later commit cannot fail on it.
            if !(weight.is_finite() && weight > 0.0) {
                let Some(guard) = self.guard.as_mut() else {
                    return Err(CoreError::ClientFailure(format!(
                        "client {id}: aggregation weight {weight} must be positive and finite"
                    )));
                };
                guard.quarantine(self.round, id);
                guard_rejected += 1;
                self.telemetry.record_guard(1, 0, 0, 0);
                continue;
            }
            let accepted = self
                .buffer
                .as_mut()
                .expect("buffered mode implies a buffer")
                .push(BufferedUpdate {
                    client_id: id,
                    origin_round: self.round,
                    arrival_round,
                    base_weight: weight,
                    mean_loss: metrics.mean_loss,
                    delta,
                });
            if accepted {
                self.telemetry.record(id, self.round, &metrics);
                arrival_losses.push(metrics.mean_loss);
            } else {
                // A duplicating link re-delivered an already-buffered
                // client round; the copy is discarded.
                dup_drops += 1;
            }
        }
        if acct.net_losses + acct.net_duplicates + acct.net_reorders + dup_drops > 0
            || acct.unreachable > 0
        {
            self.telemetry.record_network(
                acct.net_losses,
                acct.net_duplicates,
                acct.net_reorders,
                dup_drops,
                acct.unreachable as u64,
            );
        }
        self.telemetry.record_round_faults(
            acct.crashes as u64,
            acct.stragglers as u64,
            acct.retransmits,
            acct.link_dropouts as u64,
        );
        if tree.is_some() {
            self.telemetry.record_shard_faults(
                acct.shard_crashes.len() as u64,
                acct.shard_hangs.len() as u64,
                0,
            );
            self.telemetry.record_reparented(reparented as u64);
            // A crash takes effect from the next round's routing on.
            if let Some(live_tree) = self.hierarchy.as_mut() {
                for &s in &acct.shard_crashes {
                    live_tree.mark_crashed(s);
                }
            }
        }

        let buffer = self.buffer.as_mut().expect("buffered mode has a buffer");
        let overdue = buffer.entries().iter().any(|e| {
            e.arrival_round <= self.round
                && e.staleness_at(self.round).saturating_mul(mcfg.round_ms) >= mcfg.lease_ms
        });
        let commit_ready = buffer.quorum_reached(self.round, bcfg.quorum) || overdue;

        let neutralized = self.neutralized.contains(&self.round);
        let mut guard_clipped = 0usize;
        let mut quarantined = 0usize;
        let mut mean_client_loss = if arrival_losses.is_empty() {
            0.0
        } else {
            arrival_losses.iter().sum::<f32>() / arrival_losses.len() as f32
        };
        let mut pseudo_grad_norm = 0.0f32;
        let mut peak_resident = 0usize;
        let committed;

        if let Some(tree) = &tree {
            // Streaming commit: the pending set folds through a
            // memory-bounded merge in canonical order instead of
            // materializing a sorted batch — bitwise the same aggregate.
            // The guard's per-update screen cannot run on a pre-folded
            // stream; arrival-time weight checks and the watchdog stand
            // in for it (config validation pins the aggregation to Mean).
            let commit = if commit_ready {
                buffer.commit_streaming(
                    self.round,
                    bcfg.staleness_decay,
                    tree.config().max_resident,
                )
            } else {
                None
            };
            committed = commit.is_some();
            if let Some(commit) = commit {
                peak_resident = commit.peak_resident;
                self.telemetry.record_commit(commit.stale as u64);
                pseudo_grad_norm = photon_tensor::ops::l2_norm(&commit.merged);
                mean_client_loss = commit.losses.iter().sum::<f32>() / commit.losses.len() as f32;
                if !neutralized {
                    self.check_watchdog(mean_client_loss, pseudo_grad_norm)?;
                    {
                        let _opt_span = photon_trace::span(photon_trace::Phase::ServerOpt)
                            .arg("round", self.round)
                            .arg("updates", commit.client_ids.len() as u64);
                        self.server_opt
                            .apply(&mut self.params, &commit.merged, self.round);
                    }
                    self.telemetry.record_committed_round(self.round);
                    let blend = |ema: Option<f64>, v: f64| match ema {
                        Some(e) => WATCHDOG_EMA_BETA * e + (1.0 - WATCHDOG_EMA_BETA) * v,
                        None => v,
                    };
                    self.loss_ema = Some(blend(self.loss_ema, mean_client_loss as f64));
                    self.norm_ema = Some(blend(self.norm_ema, pseudo_grad_norm as f64));
                }
            }
            let buffered = self.buffer.as_ref().map_or(0, |b| b.len());
            let record = RoundRecord {
                round: self.round,
                cohort: cohort_idx,
                dropouts: acct.crashes + acct.link_dropouts,
                stragglers: acct.stragglers,
                retransmits: acct.retransmits,
                mean_client_loss,
                pseudo_grad_norm,
                wire_bytes: acct.wire_bytes,
                eval_ppl: None,
                guard_rejected,
                guard_clipped,
                quarantined,
                neutralized,
                joined: acct.joined,
                departed: acct.departed,
                lease_expired: acct.lease_expired,
                rejoined: acct.rejoined,
                buffered,
                commit_deferred: !committed,
                degraded: false,
                unreachable: acct.unreachable,
                effective_deadline_ms: acct.effective_deadline_ms,
                shards: tree.live_count(),
                shard_degraded: 0,
                shard_crashes: acct.shard_crashes.len(),
                shard_hangs: acct.shard_hangs.len(),
                reparented,
                peak_resident,
            };
            self.round += 1;
            return Ok(record);
        }

        let batch = if commit_ready {
            buffer.commit(self.round, bcfg.staleness_decay)
        } else {
            None
        };
        committed = batch.is_some();
        if let Some(batch) = batch {
            let mut survivor_ids = batch.client_ids;
            let mut updates = batch.updates;
            let mut losses = batch.losses;
            if let Some(guard) = self.guard.as_mut() {
                let report = guard.screen_round(self.round, &survivor_ids, &mut updates);
                self.telemetry.record_guard(
                    report.rejected_nonfinite,
                    report.rejected_outliers,
                    report.clipped,
                    report.quarantine_skips,
                );
                guard_rejected += (report.rejected_nonfinite + report.rejected_outliers) as usize;
                guard_clipped = report.clipped as usize;
                quarantined = report.quarantine_skips as usize;
                let mut keep = report.decisions.iter().map(|d| d.admitted());
                let mut keep2 = report.decisions.iter().map(|d| d.admitted());
                let mut keep3 = report.decisions.iter().map(|d| d.admitted());
                survivor_ids.retain(|_| keep.next().unwrap());
                updates.retain(|_| keep2.next().unwrap());
                losses.retain(|_| keep3.next().unwrap());
            }
            if updates.is_empty() {
                return Err(CoreError::ClientFailure(
                    "the guard rejected the entire buffered commit".into(),
                ));
            }
            self.telemetry.record_commit(batch.stale as u64);
            let avg_delta = self.cfg.aggregation.aggregate(&updates);
            pseudo_grad_norm = photon_tensor::ops::l2_norm(&avg_delta);
            mean_client_loss = losses.iter().sum::<f32>() / losses.len() as f32;
            if !neutralized {
                self.check_watchdog(mean_client_loss, pseudo_grad_norm)?;
                if pseudo_grad_norm > 0.0 {
                    for (id, update) in survivor_ids.iter().zip(&updates) {
                        let dot = photon_tensor::ops::dot(&update.delta, &avg_delta);
                        let norm = update.norm();
                        if norm > 0.0 {
                            self.telemetry
                                .record_alignment(*id, dot / (norm * pseudo_grad_norm));
                        }
                    }
                }
                {
                    let _opt_span = photon_trace::span(photon_trace::Phase::ServerOpt)
                        .arg("round", self.round)
                        .arg("updates", updates.len() as u64);
                    self.server_opt
                        .apply(&mut self.params, &avg_delta, self.round);
                }
                // A buffered commit that stood counts as a committed round.
                self.telemetry.record_committed_round(self.round);
                let blend = |ema: Option<f64>, v: f64| match ema {
                    Some(e) => WATCHDOG_EMA_BETA * e + (1.0 - WATCHDOG_EMA_BETA) * v,
                    None => v,
                };
                self.loss_ema = Some(blend(self.loss_ema, mean_client_loss as f64));
                self.norm_ema = Some(blend(self.norm_ema, pseudo_grad_norm as f64));
            }
        }

        let buffered = self.buffer.as_ref().map_or(0, |b| b.len());
        let record = RoundRecord {
            round: self.round,
            cohort: cohort_idx,
            dropouts: acct.crashes + acct.link_dropouts,
            stragglers: acct.stragglers,
            retransmits: acct.retransmits,
            mean_client_loss,
            pseudo_grad_norm,
            wire_bytes: acct.wire_bytes,
            eval_ppl: None,
            guard_rejected,
            guard_clipped,
            quarantined,
            neutralized,
            joined: acct.joined,
            departed: acct.departed,
            lease_expired: acct.lease_expired,
            rejoined: acct.rejoined,
            buffered,
            commit_deferred: !committed,
            degraded: false,
            unreachable: acct.unreachable,
            effective_deadline_ms: acct.effective_deadline_ms,
            shards: 0,
            shard_degraded: 0,
            shard_crashes: 0,
            shard_hangs: 0,
            reparented: 0,
            peak_resident: 0,
        };
        self.round += 1;
        Ok(record)
    }

    /// The divergence checks run before every (non-neutralized) update
    /// application. Non-finite aggregates always fail; the EMA multiplier
    /// checks require `cfg.loss_spike_mult`.
    fn check_watchdog(&self, mean_loss: f32, pseudo_grad_norm: f32) -> Result<()> {
        let diverged = |reason: String| {
            Err(CoreError::Divergence {
                round: self.round,
                reason,
            })
        };
        if !pseudo_grad_norm.is_finite() {
            return diverged(format!("aggregate norm {pseudo_grad_norm} is not finite"));
        }
        if !mean_loss.is_finite() {
            return diverged(format!("mean client loss {mean_loss} is not finite"));
        }
        if let Some(mult) = self.cfg.loss_spike_mult {
            if let Some(ema) = self.loss_ema {
                if mean_loss as f64 > mult * ema {
                    return diverged(format!(
                        "mean client loss {mean_loss} > {mult}x EMA {ema:.4}"
                    ));
                }
            }
            if let Some(ema) = self.norm_ema {
                if pseudo_grad_norm as f64 > mult * ema {
                    return diverged(format!(
                        "pseudo-gradient norm {pseudo_grad_norm} > {mult}x EMA {ema:.4}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Per-round fault, churn and network counters threaded into the
/// buffered tail.
struct RoundAccounting {
    crashes: usize,
    stragglers: usize,
    link_dropouts: usize,
    retransmits: u64,
    wire_bytes: u64,
    joined: usize,
    departed: usize,
    lease_expired: usize,
    rejoined: usize,
    unreachable: usize,
    effective_deadline_ms: Option<u64>,
    net_losses: u64,
    net_duplicates: u64,
    net_reorders: u64,
    dup_drops: u64,
    /// Live shards scheduled to crash this round (hierarchy mode only;
    /// the slice is lost and the shard is dead from the next round on).
    shard_crashes: Vec<u32>,
    /// Live shards scheduled to hang this round (the slice is lost, the
    /// shard recovers next round).
    shard_hangs: Vec<u32>,
}

/// What one client thread reports back to the aggregator's collect loop.
/// Every outcome — including failures that used to panic the thread — is a
/// message, so the round loop can translate them into round accounting or
/// a typed [`CoreError`].
enum ClientReply {
    /// A result frame, plus the simulated turbulence to apply to it on the
    /// aggregator side of the Link.
    Frame {
        client_id: u32,
        frame: bytes::Bytes,
        /// Injected straggler delay (simulated ms).
        delay_ms: u64,
        /// How many leading transmissions arrive corrupted.
        corrupt_attempts: u32,
    },
    /// Mid-round disconnect: no result frame will come.
    Crash { client_id: u32 },
    /// The client could not run the round (e.g. the broadcast frame failed
    /// to decode); surfaced as [`CoreError::ClientFailure`].
    Error { client_id: u32, message: String },
}

impl ClientReply {
    /// The sender, for deterministic (id-ordered) reply processing.
    fn client_id(&self) -> u32 {
        match self {
            ClientReply::Frame { client_id, .. }
            | ClientReply::Crash { client_id }
            | ClientReply::Error { client_id, .. } => *client_id,
        }
    }
}

/// One client's side of a round: decode the broadcast, honour any
/// scheduled fault, train, and frame the result. Runs on the client's
/// thread; never panics.
fn client_round(
    client: &mut LlmClient,
    broadcast: bytes::Bytes,
    round: u64,
    cohort_ids: &[u32],
    cfg: &FederationConfig,
    fault: Option<ClientFault>,
) -> ClientReply {
    let client_id = client.id();
    // Each client gets its own trace lane (`tid` = 1 + id; 0 is the
    // aggregator/driver), so per-client spans never interleave.
    photon_trace::set_actor(1 + client_id);
    let params = match photon_comms::Message::from_frame(broadcast) {
        Ok(photon_comms::Message::ModelBroadcast { round: r, params }) => {
            debug_assert_eq!(r, round);
            params
        }
        Ok(other) => {
            return ClientReply::Error {
                client_id,
                message: format!("expected a model broadcast, got {other:?}"),
            }
        }
        Err(e) => {
            return ClientReply::Error {
                client_id,
                message: format!("broadcast frame corrupt: {e}"),
            }
        }
    };
    if client.fails_on(round) || fault == Some(ClientFault::Crash) {
        // Simulated mid-round disconnect: no result frame.
        return ClientReply::Crash { client_id };
    }
    let mut outcome = {
        let mut step_span = photon_trace::span(photon_trace::Phase::LocalStep)
            .arg("client", client_id as u64)
            .arg("round", round);
        let outcome = match client.run_round(&params, round, cohort_ids, cfg) {
            Ok(outcome) => outcome,
            Err(e) => {
                return ClientReply::Error {
                    client_id,
                    message: e.to_string(),
                }
            }
        };
        step_span.set_arg("tokens", outcome.metrics.tokens);
        step_span.set_arg("steps", outcome.metrics.steps);
        photon_trace::counter_add("client.steps", outcome.metrics.steps);
        photon_trace::counter_add("client.tokens", outcome.metrics.tokens);
        outcome
    };
    // Byzantine faults poison the result AFTER honest local training, so
    // the client's own state stays on the deterministic trajectory and
    // only the reported delta is adversarial.
    match fault {
        Some(ClientFault::NanUpdate) => outcome.delta.fill(f32::NAN),
        Some(ClientFault::SignFlip) => {
            for v in &mut outcome.delta {
                *v = -*v;
            }
        }
        Some(ClientFault::Scale { factor }) => {
            for v in &mut outcome.delta {
                *v = (*v as f64 * factor) as f32;
            }
        }
        _ => {}
    }
    let frame = photon_comms::Message::ClientResult {
        round,
        client_id,
        delta: outcome.delta,
        weight: outcome.weight,
        metrics: outcome.metrics,
    }
    .to_frame_opts(cfg.wire_opts());
    let (delay_ms, corrupt_attempts) = match fault {
        Some(ClientFault::Straggle { delay_ms }) => (delay_ms, 0),
        Some(ClientFault::Corrupt { attempts }) => (0, attempts),
        _ => (0, 0),
    };
    ClientReply::Frame {
        client_id,
        frame,
        delay_ms,
        corrupt_attempts,
    }
}

/// Seed for the Link-layer bit flips of one client's result this round:
/// pure in `(seed, round, client)` so replays corrupt the same bits.
fn mix_link_seed(seed: u64, round: u64, client: u32) -> u64 {
    seed ^ round
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((client as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .rotate_left(23)
}

/// A ready-to-run federation: aggregator plus its client population.
#[derive(Debug)]
pub struct Federation {
    /// The central aggregator.
    pub aggregator: Aggregator,
    /// The client population (index = client id).
    pub clients: Vec<LlmClient>,
    /// Tokens of private data a warm-joining client is provisioned with.
    pub joiner_tokens: usize,
}

impl Federation {
    /// Provisions clients for every roster id the membership registry has
    /// assigned but the client vector does not cover yet — the client-side
    /// half of a warm join. Each joiner's data and RNG derive from pure
    /// forks of the run seed keyed only by its id, so a joiner admitted at
    /// round `r` is bit-identical whether it is built mid-run, on replay,
    /// or after a checkpoint restore with a roster that grew since.
    ///
    /// # Errors
    /// Returns an error if corpus construction fails.
    pub fn sync_roster(&mut self) -> Result<()> {
        let Some(target) = self.aggregator.roster_len() else {
            return Ok(());
        };
        while self.clients.len() < target {
            let id = self.clients.len() as u32;
            self.clients.push(provision_joiner(
                self.aggregator.config(),
                id,
                self.joiner_tokens,
            ));
        }
        Ok(())
    }

    /// Runs one round, provisioning any newly joined clients first.
    ///
    /// # Errors
    /// Propagates aggregator round failures.
    pub fn run_round(&mut self) -> Result<RoundRecord> {
        self.run_round_with(None)
    }

    /// [`Federation::run_round`] with a seeded fault schedule. A client
    /// admitted this round spends it on the warm-join handshake and is
    /// first sampled next round, so syncing the roster after the round
    /// provisions it in time.
    ///
    /// # Errors
    /// Propagates aggregator round failures.
    pub fn run_round_with(&mut self, injector: Option<&FaultInjector>) -> Result<RoundRecord> {
        self.sync_roster()?;
        let record = self
            .aggregator
            .run_round_with(&mut self.clients, injector)?;
        // Joins applied inside the round extend the roster; provision the
        // new clients now so the next round can sample them.
        self.sync_roster()?;
        Ok(record)
    }
}

/// Builds the client-side state of a warm joiner: an IID web-domain shard
/// and a training RNG, both pure forks of the run seed keyed by the
/// joiner's id (independent of the founding population's build order).
fn provision_joiner(cfg: &FederationConfig, id: u32, tokens: usize) -> LlmClient {
    let base = SeedStream::new(cfg.seed);
    let tokenizer = ByteTokenizer::new();
    let mut data_rng = base.fork(&format!("join-data-{id}"));
    let domain = SyntheticDomain::preset(DomainKind::Web, &mut data_rng);
    let block = (cfg.model.seq_len + 1).max(32);
    let corpus =
        TokenCorpus::from_domain(&domain, &tokenizer, tokens.max(block * 2), &mut data_rng);
    let shard = partition_iid(&corpus, 1, block, &mut data_rng)
        .into_iter()
        .next()
        .expect("partition_iid returns one shard per requested partition");
    LlmClient::new(
        id,
        DataSource::new(format!("ds-{id}"), shard),
        None,
        base.fork(&format!("join-client-{id}")),
    )
}

/// Builds exactly one client's local state — data shard plus training RNG
/// — without constructing the rest of the federation. This is what a
/// `photon client` OS process calls at startup: founding members
/// (`id < cfg.population`) replay [`build_federation`]'s seed-split
/// sequence so the standalone client is bit-identical to its in-process
/// twin, and joiners (`id >= cfg.population`) use the warm-join
/// derivation, which is already keyed by id alone.
///
/// # Errors
/// Returns an error if the configuration is invalid.
pub fn build_client(
    cfg: &FederationConfig,
    id: u32,
    tokens_per_client: usize,
) -> Result<LlmClient> {
    cfg.validate()?;
    if (id as usize) >= cfg.population {
        return Ok(provision_joiner(cfg, id, tokens_per_client));
    }
    let mut rng = SeedStream::new(cfg.seed);
    let tokenizer = ByteTokenizer::new();
    let mut data_rng = rng.split("data");
    let domain = SyntheticDomain::preset(DomainKind::Web, &mut data_rng);
    let corpus = TokenCorpus::from_domain(
        &domain,
        &tokenizer,
        tokens_per_client * cfg.population,
        &mut data_rng,
    );
    let block = (cfg.model.seq_len + 1).max(32);
    let shards = partition_iid(&corpus, cfg.population, block, &mut data_rng);
    // `rng.split` advances shared state, so earlier siblings' splits must
    // be replayed in order for client `id` to receive the same stream it
    // gets in `build_federation`.
    let mut client_rng = None;
    for i in 0..=(id as usize) {
        let r = rng.split(&format!("client-{i}"));
        if i == id as usize {
            client_rng = Some(r);
        }
    }
    let shard = shards
        .into_iter()
        .nth(id as usize)
        .expect("partition_iid returns population shards");
    Ok(LlmClient::new(
        id,
        DataSource::new(format!("ds-{id}"), shard),
        None,
        client_rng.expect("loop covers id"),
    ))
}

/// Builds a federation over IID shards of a synthetic web corpus — the
/// C4-style setup of §5.1 ("randomly partitioning the dataset uniformly
/// into equally sized shards").
///
/// # Errors
/// Returns an error if the configuration is invalid.
pub fn build_federation(cfg: &FederationConfig, tokens_per_client: usize) -> Result<Federation> {
    cfg.validate()?;
    let mut rng = SeedStream::new(cfg.seed);
    let tokenizer = ByteTokenizer::new();
    let mut data_rng = rng.split("data");
    let domain = SyntheticDomain::preset(DomainKind::Web, &mut data_rng);
    let corpus = TokenCorpus::from_domain(
        &domain,
        &tokenizer,
        tokens_per_client * cfg.population,
        &mut data_rng,
    );
    let block = (cfg.model.seq_len + 1).max(32);
    let shards = partition_iid(&corpus, cfg.population, block, &mut data_rng);
    let clients = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            LlmClient::new(
                i as u32,
                DataSource::new(format!("ds-{i}"), shard),
                None,
                rng.split(&format!("client-{i}")),
            )
        })
        .collect();
    Ok(Federation {
        aggregator: Aggregator::new(cfg.clone())?,
        clients,
        joiner_tokens: tokens_per_client,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_nn::ModelConfig;

    fn tiny_model() -> ModelConfig {
        ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 257,
            seq_len: 16,
        }
    }

    fn quick_cfg(n: usize) -> FederationConfig {
        let mut cfg = FederationConfig::quick_demo(tiny_model(), n);
        cfg.local_steps = 4;
        cfg.local_batch = 2;
        cfg
    }

    #[test]
    fn one_round_updates_the_global_model() {
        let cfg = quick_cfg(3);
        let mut fed = build_federation(&cfg, 2_000).unwrap();
        let before = fed.aggregator.params().to_vec();
        let record = fed.aggregator.run_round(&mut fed.clients).unwrap();
        assert_ne!(fed.aggregator.params(), &before[..]);
        assert_eq!(record.cohort, vec![0, 1, 2]);
        assert!(record.mean_client_loss.is_finite());
        assert!(record.pseudo_grad_norm > 0.0);
        assert!(record.wire_bytes > 0);
        assert_eq!(fed.aggregator.round(), 1);
    }

    #[test]
    fn training_reduces_client_loss_over_rounds() {
        let cfg = quick_cfg(2);
        let mut fed = build_federation(&cfg, 2_000).unwrap();
        let first = fed.aggregator.run_round(&mut fed.clients).unwrap();
        let mut last = first.clone();
        for _ in 0..6 {
            last = fed.aggregator.run_round(&mut fed.clients).unwrap();
        }
        assert!(
            last.mean_client_loss < first.mean_client_loss,
            "{} -> {}",
            first.mean_client_loss,
            last.mean_client_loss
        );
    }

    #[test]
    fn secure_aggregation_matches_plain_aggregation() {
        let mut plain_cfg = quick_cfg(3);
        plain_cfg.seed = 7;
        let mut secure_cfg = plain_cfg.clone();
        secure_cfg.secure_agg = true;

        let mut plain = build_federation(&plain_cfg, 2_000).unwrap();
        let mut secure = build_federation(&secure_cfg, 2_000).unwrap();
        plain.aggregator.run_round(&mut plain.clients).unwrap();
        secure.aggregator.run_round(&mut secure.clients).unwrap();

        // The pairwise masks cancel in the aggregate, so the resulting
        // global models agree to floating-point noise.
        let diff: f32 = plain
            .aggregator
            .params()
            .iter()
            .zip(secure.aggregator.params())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 2e-3, "secure aggregation diverged: {diff}");
    }

    #[test]
    fn compressed_link_is_lossless() {
        let mut cfg_a = quick_cfg(2);
        cfg_a.seed = 13;
        let mut cfg_b = cfg_a.clone();
        cfg_b.compress_link = true;
        let mut fed_a = build_federation(&cfg_a, 2_000).unwrap();
        let mut fed_b = build_federation(&cfg_b, 2_000).unwrap();
        fed_a.aggregator.run_round(&mut fed_a.clients).unwrap();
        fed_b.aggregator.run_round(&mut fed_b.clients).unwrap();
        assert_eq!(fed_a.aggregator.params(), fed_b.aggregator.params());
    }

    #[test]
    fn partial_participation_samples_a_subset() {
        let mut cfg = quick_cfg(6);
        cfg.cohort = CohortSpec::Sample { k: 2 };
        let mut fed = build_federation(&cfg, 2_000).unwrap();
        let record = fed.aggregator.run_round(&mut fed.clients).unwrap();
        assert_eq!(record.cohort.len(), 2);
        assert!(record.cohort.iter().all(|&i| i < 6));
    }

    #[test]
    fn restore_validates_length() {
        let cfg = quick_cfg(2);
        let mut agg = Aggregator::new(cfg).unwrap();
        assert!(agg.restore(3, vec![0.0; 5]).is_err());
        let n = agg.params().len();
        agg.restore(3, vec![0.0; n]).unwrap();
        assert_eq!(agg.round(), 3);
    }
}
