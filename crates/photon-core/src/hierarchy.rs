//! Hierarchical (sharded) aggregation: a deterministic K-ary reduce tree.
//!
//! Leaf clients report to sub-aggregator *shards*; each shard folds its
//! cohort slice through a streaming, memory-bounded merge
//! ([`photon_fedopt::StreamingMerge`]) and the shard aggregates reduce
//! upward to the root. The tree is the dominant failure domain at
//! 10⁵-client scale, so its design is robustness-first:
//!
//! - **Deterministic shape.** A client's home shard is `id % shards`; no
//!   coordinator state is needed to route a report.
//! - **Crash re-parenting.** When a shard dies (`shardcrash@rNsM`), its
//!   clients are orphaned for the rest of that round and deterministically
//!   re-parented to a sibling from the next round on: the foster shard is
//!   a pure function of `(seed, client, live-shard set)`, so a restored
//!   run re-derives the identical tree from the checkpointed dead set.
//! - **Per-shard quorum.** A shard commits its aggregate only when at
//!   least `ceil(shard_quorum_frac × shard_cohort)` of its cohort slice
//!   folded; otherwise the shard degrades (its slice is dropped) without
//!   affecting its siblings.
//!
//! Only the dead-shard set is state; everything else is re-derived. That
//! set rides in checkpoint v5 (`hierarchy.bin`) so agg-crash recovery
//! replays the tree bit-exactly.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

fn default_shards() -> usize {
    4
}
fn default_quorum_frac() -> f64 {
    0.5
}
fn default_max_resident() -> usize {
    64
}

/// Shape and robustness knobs of the aggregation tree
/// (`--shards/--shard-quorum-frac/--max-resident` on `photon-cli train`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of sub-aggregator shards (the tree's fan-in at the root).
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Fraction of a shard's cohort slice that must fold before the shard
    /// may commit its aggregate upward: quorum is
    /// `ceil(shard_quorum_frac × shard_cohort)`.
    #[serde(default = "default_quorum_frac")]
    pub shard_quorum_frac: f64,
    /// Residency bound of each shard's streaming merge: the merge never
    /// holds more than this many full update vectors (accumulator
    /// included) at once.
    #[serde(default = "default_max_resident")]
    pub max_resident: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            shards: default_shards(),
            shard_quorum_frac: default_quorum_frac(),
            max_resident: default_max_resident(),
        }
    }
}

impl HierarchyConfig {
    /// Validates the tree shape.
    ///
    /// # Errors
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards < 2 {
            return Err(format!(
                "hierarchy needs at least 2 shards (got {}): a 1-shard tree \
                 has no sibling to re-parent orphans to",
                self.shards
            ));
        }
        if self.shards > u32::MAX as usize {
            return Err(format!("{} shards do not fit shard ids", self.shards));
        }
        if !(self.shard_quorum_frac > 0.0 && self.shard_quorum_frac <= 1.0) {
            return Err(format!(
                "shard_quorum_frac must be in (0, 1], got {}",
                self.shard_quorum_frac
            ));
        }
        if self.max_resident < 2 {
            return Err(format!(
                "max_resident must be at least 2 (accumulator + one arrival), got {}",
                self.max_resident
            ));
        }
        Ok(())
    }

    /// The per-shard quorum for a cohort slice of `shard_cohort` clients:
    /// `ceil(shard_quorum_frac × shard_cohort)`, never below 1 for a
    /// non-empty slice.
    pub fn shard_quorum(&self, shard_cohort: usize) -> usize {
        if shard_cohort == 0 {
            return 0;
        }
        (((shard_cohort as f64) * self.shard_quorum_frac).ceil() as usize).clamp(1, shard_cohort)
    }
}

/// The checkpointable image of the tree: the set of crashed shards.
/// Everything else (routing, fosters, quorums) is a pure function of the
/// config, the seed and this set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyState {
    /// Shards that suffered a `shardcrash` (sorted ascending). Dead
    /// shards never host clients again; their orphans are fostered.
    pub dead_shards: Vec<u32>,
}

/// How one round's cohort maps onto the tree.
#[derive(Debug, Clone, Default)]
pub struct ShardPartition {
    /// Cohort members per live shard, ascending shard id; members are in
    /// the order they appeared in the cohort slice.
    pub shards: BTreeMap<u32, Vec<u32>>,
    /// Cohort members routed away from a dead home shard this round.
    pub reparented: usize,
    /// Cohort members with no live shard to report to (every shard dead);
    /// their updates are lost this round.
    pub unrouted: Vec<u32>,
}

/// The deterministic sub-aggregator tree. See the module docs for the
/// routing and re-parenting rules.
#[derive(Debug, Clone)]
pub struct ShardTree {
    cfg: HierarchyConfig,
    seed: u64,
    dead: BTreeSet<u32>,
}

impl ShardTree {
    /// Builds a fully-live tree.
    pub fn new(cfg: HierarchyConfig, seed: u64) -> Self {
        ShardTree {
            cfg,
            seed,
            dead: BTreeSet::new(),
        }
    }

    /// Rebuilds a tree from a checkpointed [`HierarchyState`].
    pub fn from_state(cfg: HierarchyConfig, seed: u64, state: &HierarchyState) -> Self {
        ShardTree {
            cfg,
            seed,
            dead: state.dead_shards.iter().copied().collect(),
        }
    }

    /// The tree's shape config.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// The checkpointable image (dead shards, ascending).
    pub fn state(&self) -> HierarchyState {
        HierarchyState {
            dead_shards: self.dead.iter().copied().collect(),
        }
    }

    /// Shards still alive, ascending.
    pub fn live_shards(&self) -> Vec<u32> {
        (0..self.cfg.shards as u32)
            .filter(|s| !self.dead.contains(s))
            .collect()
    }

    /// How many shards are still alive.
    pub fn live_count(&self) -> usize {
        self.cfg.shards - self.dead.len()
    }

    /// Whether `shard` has crashed.
    pub fn is_dead(&self, shard: u32) -> bool {
        self.dead.contains(&shard)
    }

    /// A client's home shard (ignoring crashes): `id % shards`.
    pub fn home_shard(&self, client: u32) -> u32 {
        client % self.cfg.shards as u32
    }

    /// The shard `client` reports to under the current dead set: the home
    /// shard while it lives, otherwise a deterministic foster sibling.
    /// `None` when every shard is dead.
    pub fn shard_of(&self, client: u32) -> Option<u32> {
        let home = self.home_shard(client);
        if !self.dead.contains(&home) {
            return Some(home);
        }
        let live = self.live_shards();
        if live.is_empty() {
            return None;
        }
        let h = mix_reparent_seed(self.seed, client);
        Some(live[(h % live.len() as u64) as usize])
    }

    /// Marks a shard crashed. Routing reflects the death from the *next*
    /// [`ShardTree::partition`] call — the crashing round's contributions
    /// are already lost by the time the caller marks it. Returns whether
    /// the shard was newly dead.
    pub fn mark_crashed(&mut self, shard: u32) -> bool {
        debug_assert!((shard as usize) < self.cfg.shards);
        self.dead.insert(shard)
    }

    /// Routes one round's cohort onto the live shards, counting how many
    /// members were fostered away from a dead home shard.
    pub fn partition(&self, cohort: &[u32]) -> ShardPartition {
        let mut part = ShardPartition::default();
        for &s in &self.live_shards() {
            part.shards.insert(s, Vec::new());
        }
        for &id in cohort {
            match self.shard_of(id) {
                Some(s) => {
                    if s != self.home_shard(id) {
                        part.reparented += 1;
                    }
                    part.shards
                        .get_mut(&s)
                        .expect("shard_of only returns live shards")
                        .push(id);
                }
                None => part.unrouted.push(id),
            }
        }
        part
    }
}

/// The foster-pick hash: pure in `(seed, client)` so re-parenting replays
/// bit-identically from a restored dead set.
fn mix_reparent_seed(seed: u64, client: u32) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    h ^= (client as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h = h.rotate_left(27).wrapping_mul(0x100000001b3);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize) -> HierarchyConfig {
        HierarchyConfig {
            shards,
            ..HierarchyConfig::default()
        }
    }

    #[test]
    fn config_validation_rules() {
        assert!(HierarchyConfig::default().validate().is_ok());
        assert!(cfg(1).validate().is_err());
        let mut c = cfg(4);
        c.shard_quorum_frac = 0.0;
        assert!(c.validate().is_err());
        c.shard_quorum_frac = 1.5;
        assert!(c.validate().is_err());
        c.shard_quorum_frac = 1.0;
        c.max_resident = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn quorum_is_ceil_of_the_fraction() {
        let mut c = cfg(4);
        c.shard_quorum_frac = 0.5;
        assert_eq!(c.shard_quorum(0), 0);
        assert_eq!(c.shard_quorum(1), 1);
        assert_eq!(c.shard_quorum(5), 3);
        assert_eq!(c.shard_quorum(8), 4);
        c.shard_quorum_frac = 1.0;
        assert_eq!(c.shard_quorum(7), 7);
        // A tiny fraction still demands one folded update.
        c.shard_quorum_frac = 0.01;
        assert_eq!(c.shard_quorum(3), 1);
    }

    #[test]
    fn home_routing_is_modular_and_total() {
        let tree = ShardTree::new(cfg(4), 7);
        for id in 0..100u32 {
            assert_eq!(tree.shard_of(id), Some(id % 4));
        }
        let part = tree.partition(&(0..100).collect::<Vec<_>>());
        assert_eq!(part.reparented, 0);
        assert!(part.unrouted.is_empty());
        assert_eq!(part.shards.len(), 4);
        assert_eq!(part.shards.values().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn crash_reparents_only_the_orphans_deterministically() {
        let mut tree = ShardTree::new(cfg(4), 7);
        assert!(tree.mark_crashed(2));
        assert!(!tree.mark_crashed(2), "second crash is idempotent");
        let cohort: Vec<u32> = (0..100).collect();
        let part = tree.partition(&cohort);
        // Exactly the clients homed on shard 2 are fostered.
        assert_eq!(part.reparented, 25);
        assert!(part.unrouted.is_empty());
        assert!(!part.shards.contains_key(&2));
        for (&s, members) in &part.shards {
            for &m in members {
                if m % 4 != s {
                    assert_eq!(m % 4, 2, "only shard-2 orphans may move");
                }
            }
        }
        // Same seed + same dead set => identical fostering; different seed
        // => (almost surely) a different one.
        let twin = ShardTree::from_state(cfg(4), 7, &tree.state());
        for id in 0..100u32 {
            assert_eq!(tree.shard_of(id), twin.shard_of(id));
        }
        let other = ShardTree::from_state(cfg(4), 8, &tree.state());
        assert!((0..1000u32).any(|id| tree.shard_of(id) != other.shard_of(id)));
    }

    #[test]
    fn all_dead_leaves_clients_unrouted() {
        let mut tree = ShardTree::new(cfg(2), 1);
        tree.mark_crashed(0);
        tree.mark_crashed(1);
        assert_eq!(tree.live_count(), 0);
        assert_eq!(tree.shard_of(3), None);
        let part = tree.partition(&[1, 2, 3]);
        assert_eq!(part.unrouted, vec![1, 2, 3]);
        assert!(part.shards.is_empty());
    }

    #[test]
    fn state_round_trips() {
        let mut tree = ShardTree::new(cfg(8), 42);
        tree.mark_crashed(5);
        tree.mark_crashed(1);
        let state = tree.state();
        assert_eq!(state.dead_shards, vec![1, 5]);
        let back = ShardTree::from_state(cfg(8), 42, &state);
        assert_eq!(back.state(), state);
        assert_eq!(back.live_shards(), vec![0, 2, 3, 4, 6, 7]);
    }
}
