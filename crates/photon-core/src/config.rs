use crate::hierarchy::HierarchyConfig;
use crate::membership::MembershipConfig;
use photon_comms::{AdaptiveDeadlineConfig, NetworkConfig, RetransmitPolicy};
use photon_fedopt::{AggregationKind, AvailabilityModel, BufferConfig, GuardConfig, ServerOptKind};
use photon_nn::{ModelConfig, PosEncoding};
use photon_optim::{AdamWConfig, LrSchedule};
use photon_tensor::Dtype;
use serde::{Deserialize, Serialize};

/// Cohort selection policy (Algorithm 1, L.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CohortSpec {
    /// All clients every round.
    Full,
    /// `k` clients sampled uniformly without replacement.
    Sample {
        /// Clients per round.
        k: usize,
    },
}

/// Client-side post-processing applied before returning an update
/// (Algorithm 1, L.28: clipping, compression, DP noise).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PostProcessConfig {
    /// Clip the pseudo-gradient to this L2 norm.
    pub clip_update_norm: Option<f32>,
    /// Add Gaussian noise of this std to the update (differential privacy).
    pub dp_noise_std: Option<f32>,
}

/// Full specification of a federated pre-training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// Model architecture.
    pub model: ModelConfig,
    /// Positional scheme (ALiBi by default, matching the paper's MPT
    /// models; learned absolute embeddings demonstrate §5.1's "our system
    /// could train any LLM architecture").
    #[serde(default)]
    pub positions: PosEncoding,
    /// Total client population `P`.
    pub population: usize,
    /// Cohort policy.
    pub cohort: CohortSpec,
    /// Local steps per round τ.
    pub local_steps: u64,
    /// Local (per-client) batch size `B_l`.
    pub local_batch: usize,
    /// Server optimizer.
    pub server_opt: ServerOptKind,
    /// Pseudo-gradient aggregation rule (Algorithm 1, L.8).
    #[serde(default)]
    pub aggregation: AggregationKind,
    /// Per-update admission checks (finiteness, norm clip, cohort outlier
    /// rejection) with client quarantine. Disabled by default; incompatible
    /// with secure aggregation (the server cannot inspect masked updates).
    #[serde(default)]
    pub guard: GuardConfig,
    /// Loss-spike watchdog threshold: declare divergence when a round's
    /// mean client loss (or pseudo-gradient norm) exceeds this multiple of
    /// its EMA. Non-finite aggregates always trip the watchdog. `None`
    /// disables the EMA checks.
    #[serde(default)]
    pub loss_spike_mult: Option<f64>,
    /// Client optimizer hyperparameters (AdamW).
    pub adamw: AdamWConfig,
    /// Client learning-rate schedule over *sequential* local steps
    /// (Table 5: `S_C` synchronized across rounds).
    pub schedule: LrSchedule,
    /// Reset client optimizer state each round (Photon's
    /// stateless-local-optimization mode, Appendix A). Keeps federated
    /// pre-training compute-bound and supports intermittent availability.
    pub stateless_local: bool,
    /// Global-norm gradient clipping during local training.
    pub grad_clip: Option<f32>,
    /// FedProx proximal coefficient μ (Li et al.; §6 "reducing local model
    /// divergence from the global model"): adds `μ (w − w_global)` to every
    /// local gradient. `None` disables the proximal term.
    #[serde(default)]
    pub fedprox_mu: Option<f32>,
    /// Update post-processing.
    pub post: PostProcessConfig,
    /// Compress Link payloads (Photon default: lossless, §4).
    pub compress_link: bool,
    /// Mask updates with cancelling pairwise masks (secure aggregation).
    /// Requires uniform aggregation weights.
    pub secure_agg: bool,
    /// Sporadic client availability (§2.1, Appendix A): when set, each
    /// client follows an independent two-state Markov up/down process and
    /// only currently-up clients can be sampled.
    #[serde(default)]
    pub availability: Option<AvailabilityModel>,
    /// Tolerate client dropouts mid-round: aggregate the surviving
    /// cohort's updates instead of failing the round (§4's
    /// parameter-server dropout semantics). Incompatible with the
    /// simplified secure aggregation (masks would not cancel).
    #[serde(default)]
    pub allow_partial_results: bool,
    /// Round deadline in simulated milliseconds: a client whose result
    /// arrives later (straggle delay plus link backoff) is dropped into the
    /// §4 partial-update path instead of stalling the round. `None`
    /// disables the straggler policy (every result waits).
    #[serde(default)]
    pub round_deadline_ms: Option<u64>,
    /// Link retransmission budget for CRC-failed result frames.
    #[serde(default)]
    pub retransmit: RetransmitPolicy,
    /// Deterministic simulated network: per-link latency/jitter/bandwidth,
    /// loss, duplication and reordering, plus the quorum threshold for
    /// partition-aware graceful degradation. `None` keeps links ideal.
    #[serde(default)]
    pub network: Option<NetworkConfig>,
    /// Adaptive round deadline: a percentile of observed per-client
    /// delivery latencies with a floor/ceiling, replacing the static
    /// `round_deadline_ms` (set only one).
    #[serde(default)]
    pub adaptive_deadline: Option<AdaptiveDeadlineConfig>,
    /// Elastic membership: when set, the fixed population becomes a
    /// *founding* roster managed by a lease-based membership registry —
    /// clients join, leave and expire mid-run, driven by the fault plan.
    /// Subsumes (and is incompatible with) `availability`.
    #[serde(default)]
    pub membership: Option<MembershipConfig>,
    /// FedBuff-style buffered semi-synchronous aggregation: commit a merge
    /// once a quorum of updates is buffered, down-weighting stale arrivals.
    /// Requires `membership`.
    #[serde(default)]
    pub buffer: Option<BufferConfig>,
    /// Hierarchical aggregation: leaf clients report to sub-aggregator
    /// shards that fold their cohort slice through a streaming,
    /// memory-bounded merge and reduce upward to the root. A shard crash
    /// degrades that shard (its orphans are re-parented next round)
    /// instead of the round. `None` keeps the flat single-level merge.
    #[serde(default)]
    pub hierarchy: Option<HierarchyConfig>,
    /// Storage precision for parameters at rest (checkpoints) and float
    /// payloads on the Link. Compute and accumulation stay f32 (master
    /// weights); bf16 halves checkpoint and wire bytes. Incompatible with
    /// `compress_link` (the codec is specified over 4-byte lanes) and
    /// `secure_agg` (pairwise masks only cancel under exact arithmetic).
    #[serde(default)]
    pub dtype: Dtype,
    /// Root seed for the whole run.
    pub seed: u64,
}

impl FederationConfig {
    /// A fast-converging configuration for demos and tests: `n_clients`
    /// with full participation, 16 local steps, batch 8.
    pub fn quick_demo(model: ModelConfig, n_clients: usize) -> Self {
        FederationConfig {
            model,
            positions: PosEncoding::Alibi,
            population: n_clients,
            cohort: CohortSpec::Full,
            local_steps: 16,
            local_batch: 8,
            server_opt: ServerOptKind::photon_default(),
            aggregation: AggregationKind::Mean,
            guard: GuardConfig::default(),
            loss_spike_mult: None,
            adamw: AdamWConfig::default(),
            schedule: LrSchedule::paper_cosine(3e-3, 20, 4000),
            stateless_local: true,
            grad_clip: Some(1.0),
            fedprox_mu: None,
            post: PostProcessConfig::default(),
            compress_link: false,
            secure_agg: false,
            availability: None,
            allow_partial_results: false,
            round_deadline_ms: None,
            retransmit: RetransmitPolicy::default(),
            network: None,
            adaptive_deadline: None,
            membership: None,
            buffer: None,
            hierarchy: None,
            dtype: Dtype::F32,
            seed: 42,
        }
    }

    /// Number of clients participating each round.
    pub fn cohort_size(&self) -> usize {
        match self.cohort {
            CohortSpec::Full => self.population,
            CohortSpec::Sample { k } => k.min(self.population),
        }
    }

    /// Effective global batch size `B_g = N · B_l` (§5.3).
    pub fn global_batch(&self) -> usize {
        self.cohort_size() * self.local_batch
    }

    /// Link encoding options derived from this config (compression flag
    /// plus wire storage precision).
    pub fn wire_opts(&self) -> photon_comms::WireOpts {
        photon_comms::WireOpts {
            compress: self.compress_link,
            dtype: self.dtype,
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    /// Returns [`crate::CoreError::InvalidConfig`] describing the problem.
    pub fn validate(&self) -> crate::Result<()> {
        self.model.validate();
        if self.population == 0 {
            return Err(crate::CoreError::InvalidConfig("population is zero".into()));
        }
        if let CohortSpec::Sample { k } = self.cohort {
            if k == 0 {
                return Err(crate::CoreError::InvalidConfig("cohort k is zero".into()));
            }
        }
        if self.local_steps == 0 {
            return Err(crate::CoreError::InvalidConfig(
                "local_steps is zero".into(),
            ));
        }
        if self.local_batch == 0 {
            return Err(crate::CoreError::InvalidConfig(
                "local_batch is zero".into(),
            ));
        }
        if self.secure_agg && self.allow_partial_results {
            return Err(crate::CoreError::InvalidConfig(
                "secure aggregation cannot tolerate dropouts (masks would not cancel)".into(),
            ));
        }
        if self.secure_agg && self.round_deadline_ms.is_some() {
            // Dropping stragglers removes their masks from the sum, which
            // would leave the aggregate garbled.
            return Err(crate::CoreError::InvalidConfig(
                "secure aggregation cannot drop stragglers (round_deadline_ms must be None)".into(),
            ));
        }
        if self.secure_agg && matches!(self.cohort, CohortSpec::Sample { .. }) {
            // Simplified secure aggregation has no dropout recovery; the
            // full Bonawitz protocol would be needed for partial cohorts.
            return Err(crate::CoreError::InvalidConfig(
                "secure aggregation requires full participation".into(),
            ));
        }
        self.aggregation
            .validate()
            .map_err(crate::CoreError::InvalidConfig)?;
        self.guard
            .validate()
            .map_err(crate::CoreError::InvalidConfig)?;
        if self.secure_agg && self.guard.enabled {
            return Err(crate::CoreError::InvalidConfig(
                "the update guard cannot inspect masked updates (disable secure_agg or guard)"
                    .into(),
            ));
        }
        if self.secure_agg && self.aggregation != AggregationKind::Mean {
            // Masked updates only cancel under plain summation; order
            // statistics over masked coordinates are meaningless.
            return Err(crate::CoreError::InvalidConfig(
                "secure aggregation requires mean aggregation".into(),
            ));
        }
        if let Some(mult) = self.loss_spike_mult {
            if !(mult.is_finite() && mult > 1.0) {
                return Err(crate::CoreError::InvalidConfig(format!(
                    "loss_spike_mult {mult} must be finite and > 1"
                )));
            }
        }
        if let Some(membership) = &self.membership {
            membership
                .validate()
                .map_err(crate::CoreError::InvalidConfig)?;
            if self.availability.is_some() {
                // The registry's lease machinery subsumes the Markov
                // up/down traces; running both would double-model liveness.
                return Err(crate::CoreError::InvalidConfig(
                    "membership subsumes availability (set only one)".into(),
                ));
            }
            if self.secure_agg {
                // Pairwise masks assume a roster fixed at key agreement;
                // mid-run joins/leaves would leave masks uncancelled.
                return Err(crate::CoreError::InvalidConfig(
                    "secure aggregation requires a fixed roster (disable membership)".into(),
                ));
            }
        }
        if let Some(buffer) = &self.buffer {
            buffer.validate().map_err(crate::CoreError::InvalidConfig)?;
            if self.membership.is_none() {
                return Err(crate::CoreError::InvalidConfig(
                    "buffered aggregation requires membership (set membership)".into(),
                ));
            }
        }
        if let Some(network) = &self.network {
            network
                .validate()
                .map_err(crate::CoreError::InvalidConfig)?;
            if self.secure_agg {
                // Loss, partitions and degraded rounds all drop results,
                // which the simplified secure aggregation cannot survive.
                return Err(crate::CoreError::InvalidConfig(
                    "secure aggregation cannot run over a chaotic network (disable one)".into(),
                ));
            }
        }
        if let Some(adaptive) = &self.adaptive_deadline {
            adaptive
                .validate()
                .map_err(crate::CoreError::InvalidConfig)?;
            if self.round_deadline_ms.is_some() {
                return Err(crate::CoreError::InvalidConfig(
                    "adaptive_deadline replaces round_deadline_ms (set only one)".into(),
                ));
            }
            if self.secure_agg {
                return Err(crate::CoreError::InvalidConfig(
                    "secure aggregation cannot drop stragglers (disable adaptive_deadline)".into(),
                ));
            }
        }
        if let Some(hierarchy) = &self.hierarchy {
            hierarchy
                .validate()
                .map_err(crate::CoreError::InvalidConfig)?;
            if self.secure_agg {
                // Sub-aggregators would have to sum masked slices whose
                // pairwise masks span shard boundaries; nothing cancels.
                return Err(crate::CoreError::InvalidConfig(
                    "secure aggregation cannot run through sub-aggregator shards".into(),
                ));
            }
            if self.buffer.is_some() && self.aggregation != AggregationKind::Mean {
                // The buffered hierarchical commit streams through the
                // canonical fold; a robust rule needs the materialized
                // batch the streaming path exists to avoid.
                return Err(crate::CoreError::InvalidConfig(
                    "buffered hierarchical aggregation streams a weighted mean; \
                     robust aggregation rules require the flat batch path"
                        .into(),
                ));
            }
        }
        if self.dtype == Dtype::Bf16 {
            if self.compress_link {
                // The byte-shuffle/zero-RLE codec is specified over 4-byte
                // f32 lanes; layering it over bf16 would silently misframe.
                return Err(crate::CoreError::InvalidConfig(
                    "bf16 wire mode is incompatible with compress_link (pick one)".into(),
                ));
            }
            if self.secure_agg {
                // Pairwise masks cancel only under exact arithmetic; bf16
                // rounding of masked values would leave residual noise.
                return Err(crate::CoreError::InvalidConfig(
                    "bf16 wire mode is incompatible with secure aggregation".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_demo_is_valid() {
        let cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.validate().unwrap();
        assert_eq!(cfg.cohort_size(), 4);
        assert_eq!(cfg.global_batch(), 32);
    }

    #[test]
    fn sampled_cohort_sizes() {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 16);
        cfg.cohort = CohortSpec::Sample { k: 4 };
        assert_eq!(cfg.cohort_size(), 4);
        cfg.cohort = CohortSpec::Sample { k: 99 };
        assert_eq!(cfg.cohort_size(), 16);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.population = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.local_steps = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.secure_agg = true;
        cfg.cohort = CohortSpec::Sample { k: 2 };
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.secure_agg = true;
        cfg.round_deadline_ms = Some(500);
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.secure_agg = true;
        cfg.guard = GuardConfig::on();
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.secure_agg = true;
        cfg.aggregation = AggregationKind::Median;
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.loss_spike_mult = Some(1.0);
        assert!(cfg.validate().is_err());
        cfg.loss_spike_mult = Some(3.0);
        cfg.validate().unwrap();

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.guard = GuardConfig {
            clip_norm_mult: 0.5,
            ..GuardConfig::on()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.dtype = Dtype::Bf16;
        cfg.compress_link = true;
        assert!(cfg.validate().is_err());
        cfg.compress_link = false;
        cfg.validate().unwrap();
        cfg.secure_agg = true;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn guarded_robust_config_is_valid() {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.guard = GuardConfig::on();
        cfg.aggregation = AggregationKind::TrimmedMean { trim_ratio: 0.25 };
        cfg.loss_spike_mult = Some(4.0);
        cfg.validate().unwrap();
    }

    #[test]
    fn deadline_and_retransmit_default_off() {
        let cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        assert_eq!(cfg.round_deadline_ms, None);
        assert_eq!(cfg.retransmit, RetransmitPolicy::default());
        assert_eq!(cfg.network, None);
        assert_eq!(cfg.adaptive_deadline, None);
        // Configs serialized before these fields existed still load.
        let json = serde_json::to_string(&cfg)
            .unwrap()
            .replace("\"round_deadline_ms\":null,", "")
            .replace(
                "\"retransmit\":{\"max_retries\":3,\"backoff_base_ms\":10,\
                 \"jitter_pct\":0,\"max_backoff_ms\":0,\"timeout_ms\":0},",
                "",
            )
            .replace("\"network\":null,", "")
            .replace("\"adaptive_deadline\":null,", "");
        assert!(!json.contains("retransmit"), "field not stripped: {json}");
        assert!(!json.contains("network"), "field not stripped: {json}");
        let back: FederationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn network_and_adaptive_deadline_validation() {
        use photon_comms::LinkProfile;
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.network = Some(NetworkConfig {
            profile: LinkProfile {
                base_latency_ms: 20,
                jitter_ms: 10,
                loss_rate: 0.1,
                ..LinkProfile::default()
            },
            ..NetworkConfig::default()
        });
        cfg.allow_partial_results = true;
        cfg.validate().unwrap();

        // Chaotic links drop results; secure aggregation cannot survive that.
        let mut secure = cfg.clone();
        secure.allow_partial_results = false;
        secure.secure_agg = true;
        assert!(secure.validate().is_err());

        // Bad profile knobs are caught.
        let mut bad = cfg.clone();
        bad.network = Some(NetworkConfig {
            profile: LinkProfile {
                loss_rate: 1.5,
                ..LinkProfile::default()
            },
            ..NetworkConfig::default()
        });
        assert!(bad.validate().is_err());

        // Adaptive deadline validates and excludes the static deadline.
        cfg.adaptive_deadline = Some(AdaptiveDeadlineConfig::default());
        cfg.validate().unwrap();
        let mut both = cfg.clone();
        both.round_deadline_ms = Some(500);
        assert!(both.validate().is_err());
        let mut bad_ad = cfg.clone();
        bad_ad.adaptive_deadline = Some(AdaptiveDeadlineConfig {
            percentile: 2.0,
            ..AdaptiveDeadlineConfig::default()
        });
        assert!(bad_ad.validate().is_err());
    }

    #[test]
    fn membership_validation_rules() {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        cfg.membership = Some(MembershipConfig::default());
        cfg.allow_partial_results = true;
        cfg.validate().unwrap();

        cfg.buffer = Some(BufferConfig::default());
        cfg.validate().unwrap();

        // Buffer without membership is meaningless.
        let mut no_mem = cfg.clone();
        no_mem.membership = None;
        assert!(no_mem.validate().is_err());

        // Membership subsumes availability.
        let mut both = cfg.clone();
        both.availability = Some(AvailabilityModel::always_on());
        assert!(both.validate().is_err());

        // Secure aggregation needs a fixed roster.
        let mut secure = cfg.clone();
        secure.buffer = None;
        secure.allow_partial_results = false;
        secure.secure_agg = true;
        assert!(secure.validate().is_err());

        // Bad knobs are caught.
        let mut bad = cfg.clone();
        bad.membership = Some(MembershipConfig {
            lease_ms: 10,
            round_ms: 1_000,
        });
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.buffer = Some(BufferConfig {
            quorum: 0,
            staleness_decay: 0.5,
        });
        assert!(bad.validate().is_err());

        // Configs serialized before elastic membership existed still load.
        let plain = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
        let json = serde_json::to_string(&plain)
            .unwrap()
            .replace("\"membership\":null,", "")
            .replace("\"buffer\":null,", "")
            .replace("\"dtype\":\"F32\",", "");
        assert!(!json.contains("membership"), "field not stripped: {json}");
        assert!(!json.contains("dtype"), "dtype not stripped: {json}");
        let back: FederationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plain);
    }

    #[test]
    fn hierarchy_validation_rules() {
        let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 8);
        cfg.hierarchy = Some(HierarchyConfig::default());
        cfg.validate().unwrap();

        // Bad tree shapes are caught.
        let mut bad = cfg.clone();
        bad.hierarchy = Some(HierarchyConfig {
            shards: 1,
            ..HierarchyConfig::default()
        });
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.hierarchy = Some(HierarchyConfig {
            max_resident: 1,
            ..HierarchyConfig::default()
        });
        assert!(bad.validate().is_err());

        // Sub-aggregators cannot sum masked slices.
        let mut secure = cfg.clone();
        secure.secure_agg = true;
        assert!(secure.validate().is_err());

        // Configs serialized before hierarchy existed still load.
        let plain = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 8);
        let json = serde_json::to_string(&plain)
            .unwrap()
            .replace("\"hierarchy\":null,", "");
        assert!(!json.contains("hierarchy"), "field not stripped: {json}");
        let back: FederationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plain);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = FederationConfig::quick_demo(ModelConfig::proxy_small(), 8);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FederationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
