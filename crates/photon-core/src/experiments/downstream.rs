//! Synthetic in-context evaluation tasks, substituting for the paper's
//! downstream benchmarks (Tables 7–8; ARC, HellaSwag, PIQA, …).
//!
//! Each task is a two-choice cloze in the HellaSwag/ARC scoring style: the
//! model sees a prompt from one synthetic domain and must assign a higher
//! log-probability to the true continuation than to a distractor drawn
//! from elsewhere. Accuracy scales with model capability on the training
//! distribution, which preserves the tables' shape (bigger models win most
//! comparisons) without the unavailable benchmark data.

use photon_data::{DomainKind, SyntheticDomain};
use photon_nn::{score_continuation, Gpt};
use photon_tensor::SeedStream;
use photon_tokenizer::Tokenizer;

/// One two-choice cloze instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClozeTask {
    /// Benchmark name this instance belongs to.
    pub benchmark: &'static str,
    /// Prompt tokens.
    pub prompt: Vec<u32>,
    /// True continuation.
    pub positive: Vec<u32>,
    /// Distractor continuation (same length as `positive`).
    pub negative: Vec<u32>,
}

/// Accuracy of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct DownstreamScore {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Fraction of instances where the true continuation scored higher.
    pub accuracy: f64,
    /// Number of instances evaluated.
    pub instances: usize,
}

/// Benchmark definitions: (name, domain, prompt tokens, continuation
/// tokens) — fourteen benchmarks, matching the paper's fourteen
/// comparisons across Tables 7 and 8.
const BENCHMARKS: [(&str, DomainKind, usize, usize); 14] = [
    ("web-cloze", DomainKind::Web, 24, 6),
    ("arxiv-cloze", DomainKind::Arxiv, 24, 6),
    ("wiki-cloze", DomainKind::Wiki, 24, 6),
    ("prose-cloze", DomainKind::Prose, 24, 6),
    ("web-short-ctx", DomainKind::Web, 8, 4),
    ("web-long-cont", DomainKind::Web, 16, 12),
    ("mixed-domain", DomainKind::Wiki, 20, 8),
    ("arxiv-short-ctx", DomainKind::Arxiv, 8, 4),
    ("wiki-short-ctx", DomainKind::Wiki, 8, 4),
    ("prose-short-ctx", DomainKind::Prose, 8, 4),
    ("arxiv-long-cont", DomainKind::Arxiv, 16, 12),
    ("wiki-long-cont", DomainKind::Wiki, 16, 12),
    ("prose-long-cont", DomainKind::Prose, 16, 12),
    ("web-tiny-ctx", DomainKind::Web, 4, 3),
];

/// Generates the full task suite (a fixed number of instances per
/// benchmark), deterministic given the seed stream state.
pub fn downstream_suite(
    tokenizer: &dyn Tokenizer,
    max_seq: usize,
    rng: &mut SeedStream,
) -> Vec<ClozeTask> {
    const INSTANCES: usize = 24;
    let mut tasks = Vec::with_capacity(BENCHMARKS.len() * INSTANCES);
    for &(name, domain_kind, prompt_len, cont_len) in &BENCHMARKS {
        // Clamp to the model context.
        let (prompt_len, cont_len) = clamp_lengths(prompt_len, cont_len, max_seq);
        let mut drng = rng.split(name);
        let domain = SyntheticDomain::preset(domain_kind, &mut drng);
        // Distractors come from a different domain for the cloze tasks and
        // from shuffled same-domain text for the mixed benchmark.
        let distractor_domain = SyntheticDomain::preset(
            match domain_kind {
                DomainKind::Web => DomainKind::Prose,
                DomainKind::Arxiv => DomainKind::Web,
                DomainKind::Wiki => DomainKind::Arxiv,
                DomainKind::Prose => DomainKind::Wiki,
            },
            &mut drng,
        );
        for _ in 0..INSTANCES {
            let text = domain.generate((prompt_len + cont_len) * 4, &mut drng);
            let ids = tokenizer.encode(&text);
            if ids.len() < prompt_len + cont_len {
                continue;
            }
            let prompt = ids[..prompt_len].to_vec();
            let positive = ids[prompt_len..prompt_len + cont_len].to_vec();
            let dtext = distractor_domain.generate(cont_len * 4, &mut drng);
            let dids = tokenizer.encode(&dtext);
            if dids.len() < cont_len {
                continue;
            }
            let negative = dids[..cont_len].to_vec();
            tasks.push(ClozeTask {
                benchmark: name,
                prompt,
                positive,
                negative,
            });
        }
    }
    tasks
}

fn clamp_lengths(prompt: usize, cont: usize, max_seq: usize) -> (usize, usize) {
    let budget = max_seq.saturating_sub(1).max(4);
    if prompt + cont <= budget {
        return (prompt, cont);
    }
    let cont = cont.min(budget / 2).max(1);
    (budget - cont, cont)
}

/// Scores a model on a task suite, grouping accuracies per benchmark.
pub fn evaluate_downstream(model: &Gpt, tasks: &[ClozeTask]) -> Vec<DownstreamScore> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut totals: std::collections::HashMap<&'static str, (usize, usize)> =
        std::collections::HashMap::new();
    for task in tasks {
        let pos = score_continuation(model, &task.prompt, &task.positive);
        let neg = score_continuation(model, &task.prompt, &task.negative);
        let entry = totals.entry(task.benchmark).or_insert_with(|| {
            order.push(task.benchmark);
            (0, 0)
        });
        entry.1 += 1;
        if pos > neg {
            entry.0 += 1;
        }
    }
    order
        .into_iter()
        .map(|name| {
            let (correct, total) = totals[name];
            DownstreamScore {
                benchmark: name,
                accuracy: correct as f64 / total.max(1) as f64,
                instances: total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_nn::ModelConfig;
    use photon_tokenizer::ByteTokenizer;

    #[test]
    fn suite_generation_is_well_formed() {
        let tokenizer = ByteTokenizer::new();
        let mut rng = SeedStream::new(1);
        let tasks = downstream_suite(&tokenizer, 64, &mut rng);
        assert!(tasks.len() > 100, "{}", tasks.len());
        for t in &tasks {
            assert!(!t.prompt.is_empty());
            assert_eq!(t.positive.len(), t.negative.len());
            assert!(t.prompt.len() + t.positive.len() <= 64);
        }
        // All benchmarks represented.
        let names: std::collections::HashSet<_> = tasks.iter().map(|t| t.benchmark).collect();
        assert_eq!(names.len(), BENCHMARKS.len());
    }

    #[test]
    fn suite_respects_short_contexts() {
        let tokenizer = ByteTokenizer::new();
        let mut rng = SeedStream::new(2);
        let tasks = downstream_suite(&tokenizer, 16, &mut rng);
        assert!(tasks
            .iter()
            .all(|t| t.prompt.len() + t.positive.len() <= 16));
    }

    #[test]
    fn random_model_is_near_chance() {
        let cfg = ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 257,
            seq_len: 32,
        };
        let model = Gpt::new(cfg, &mut SeedStream::new(0));
        let tokenizer = ByteTokenizer::new();
        let mut rng = SeedStream::new(3);
        let tasks = downstream_suite(&tokenizer, 32, &mut rng);
        let scores = evaluate_downstream(&model, &tasks);
        assert_eq!(scores.len(), BENCHMARKS.len());
        let mean: f64 = scores.iter().map(|s| s.accuracy).sum::<f64>() / scores.len() as f64;
        assert!(
            (0.2..=0.8).contains(&mean),
            "untrained model should be near chance, got {mean}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let tokenizer = ByteTokenizer::new();
        let a = downstream_suite(&tokenizer, 48, &mut SeedStream::new(5));
        let b = downstream_suite(&tokenizer, 48, &mut SeedStream::new(5));
        assert_eq!(a, b);
    }
}
