//! Reusable experiment drivers behind the paper-reproduction benches.
//!
//! These assemble federations over IID (C4-style) or heterogeneous
//! (Pile-style) synthetic data, run training loops with periodic global
//! evaluation, and provide the synthetic downstream-task suite standing in
//! for the paper's in-context-learning benchmarks (Tables 7–8).

mod downstream;

pub use downstream::{downstream_suite, evaluate_downstream, ClozeTask, DownstreamScore};

use crate::{
    Aggregator, CentralizedTrainer, DataSource, Federation, FederationConfig, LlmClient, Result,
    RoundRecord, TrainingHistory,
};
use photon_data::{
    build_domain_corpora, partition_by_domain, partition_iid, DomainKind, EvalStream,
    SyntheticDomain, TokenCorpus,
};
use photon_nn::{evaluate_perplexity, Gpt};
use photon_optim::LrSchedule;
use photon_tensor::SeedStream;
use photon_tokenizer::ByteTokenizer;

/// Options for a driven federated run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Maximum rounds to run.
    pub rounds: u64,
    /// Evaluate the global model every this many rounds (0 = never).
    pub eval_every: u64,
    /// Cap on evaluation windows (keeps experiments fast).
    pub eval_windows: usize,
    /// Stop early once evaluation perplexity reaches this value.
    pub stop_below: Option<f64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            rounds: 20,
            eval_every: 1,
            eval_windows: 32,
            stop_below: None,
        }
    }
}

/// Evaluation sequence length used throughout the experiment drivers.
pub(crate) fn eval_seq(cfg: &FederationConfig) -> usize {
    cfg.model.seq_len.clamp(8, 64)
}

/// Builds a federation over IID shards of web-domain text plus a held-out
/// validation corpus — the C4-style setup (§5.1).
///
/// # Errors
/// Returns an error if the configuration is invalid.
pub fn build_iid_federation(
    cfg: &FederationConfig,
    tokens_per_client: usize,
) -> Result<(Federation, TokenCorpus)> {
    cfg.validate()?;
    let mut rng = SeedStream::new(cfg.seed);
    let tokenizer = ByteTokenizer::new();
    let mut data_rng = rng.split("data");
    let domain = SyntheticDomain::preset(DomainKind::Web, &mut data_rng);
    let val_tokens = (tokens_per_client / 2).max(2048);
    let mut corpus = TokenCorpus::from_domain(
        &domain,
        &tokenizer,
        tokens_per_client * cfg.population + val_tokens,
        &mut data_rng,
    );
    let val = corpus.split_validation(val_tokens);
    let block = (cfg.model.seq_len + 1).max(32);
    let shards = partition_iid(&corpus, cfg.population, block, &mut data_rng);
    let clients = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            LlmClient::new(
                i as u32,
                DataSource::new(format!("ds-{i}"), shard),
                None,
                rng.split(&format!("client-{i}")),
            )
        })
        .collect();
    Ok((
        Federation {
            aggregator: Aggregator::new(cfg.clone())?,
            clients,
            joiner_tokens: tokens_per_client,
        },
        val,
    ))
}

/// Builds a Pile-style heterogeneous federation: four synthetic domains
/// split across `cfg.population` clients (§5.1: 4 clients = one source
/// each, 8 = two splits, 16 = four splits). Validation is the union of all
/// domains' held-out tails.
///
/// # Errors
/// Returns an error if the configuration is invalid or the population is
/// not a multiple of four.
pub fn build_heterogeneous_federation(
    cfg: &FederationConfig,
    tokens_per_domain: usize,
) -> Result<(Federation, TokenCorpus)> {
    cfg.validate()?;
    if !cfg.population.is_multiple_of(4) {
        return Err(crate::CoreError::InvalidConfig(
            "heterogeneous federations need a multiple of 4 clients".into(),
        ));
    }
    let mut rng = SeedStream::new(cfg.seed);
    let tokenizer = ByteTokenizer::new();
    let mut data_rng = rng.split("data");
    let val_tokens = (tokens_per_domain / 4).max(1024);
    let mut corpora =
        build_domain_corpora(&tokenizer, tokens_per_domain + val_tokens, &mut data_rng);
    let vals: Vec<TokenCorpus> = corpora
        .iter_mut()
        .map(|c| c.split_validation(val_tokens))
        .collect();
    let val_refs: Vec<&TokenCorpus> = vals.iter().collect();
    let val = TokenCorpus::concat("pile-val", &val_refs);

    let clients_per_domain = cfg.population / 4;
    let shards = partition_by_domain(&corpora, clients_per_domain);
    let clients = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            let name = shard.name.clone();
            LlmClient::new(
                i as u32,
                DataSource::new(name, shard),
                None,
                rng.split(&format!("client-{i}")),
            )
        })
        .collect();
    Ok((
        Federation {
            aggregator: Aggregator::new(cfg.clone())?,
            clients,
            joiner_tokens: tokens_per_domain / clients_per_domain.max(1),
        },
        val,
    ))
}

/// Drives a federation for up to `opts.rounds` rounds with periodic global
/// evaluation and optional early stopping.
///
/// # Errors
/// Propagates round failures.
pub fn run_federation(
    fed: &mut Federation,
    val: &TokenCorpus,
    opts: &RunOptions,
) -> Result<TrainingHistory> {
    let mut history = TrainingHistory::new();
    let seq = eval_seq(fed.aggregator.config());
    let mut stream = EvalStream::new(val, seq);
    for r in 0..opts.rounds {
        let mut record = fed.aggregator.run_round(&mut fed.clients)?;
        if opts.eval_every > 0 && (r + 1) % opts.eval_every == 0 {
            let model = fed.aggregator.global_model();
            let report = evaluate_perplexity(&model, &mut stream, opts.eval_windows);
            record.eval_ppl = Some(report.perplexity);
        }
        let reached = record
            .eval_ppl
            .zip(opts.stop_below)
            .is_some_and(|(p, t)| p <= t);
        history.push(record);
        if reached {
            break;
        }
    }
    Ok(history)
}

/// Runs the centralized baseline on the same validation protocol: trains
/// `steps_per_chunk`-step chunks and evaluates between chunks, producing a
/// [`TrainingHistory`] comparable round-for-round with federated runs.
pub fn run_centralized(
    trainer: &mut CentralizedTrainer,
    val: &TokenCorpus,
    chunks: u64,
    steps_per_chunk: u64,
    eval_windows: usize,
    stop_below: Option<f64>,
) -> TrainingHistory {
    let mut history = TrainingHistory::new();
    let seq = trainer.model().config().seq_len.clamp(8, 64);
    let mut stream = EvalStream::new(val, seq);
    for chunk in 0..chunks {
        let mean_loss = trainer.train_steps(steps_per_chunk);
        let report = evaluate_perplexity(trainer.model(), &mut stream, eval_windows);
        history.push(RoundRecord {
            round: chunk,
            cohort: vec![0],
            dropouts: 0,
            stragglers: 0,
            retransmits: 0,
            mean_client_loss: mean_loss,
            pseudo_grad_norm: 0.0,
            wire_bytes: 0,
            eval_ppl: Some(report.perplexity),
            guard_rejected: 0,
            guard_clipped: 0,
            quarantined: 0,
            neutralized: false,
            joined: 0,
            departed: 0,
            lease_expired: 0,
            rejoined: 0,
            buffered: 0,
            commit_deferred: false,
            degraded: false,
            unreachable: 0,
            effective_deadline_ms: None,
            shards: 0,
            shard_degraded: 0,
            shard_crashes: 0,
            shard_hangs: 0,
            reparented: 0,
            peak_resident: 0,
        });
        if stop_below.is_some_and(|t| report.perplexity <= t) {
            break;
        }
    }
    history
}

/// Builds a centralized trainer over the same web-domain distribution the
/// IID federations use, with a held-out validation corpus.
pub fn build_centralized(
    cfg: &FederationConfig,
    batch_size: usize,
    schedule: LrSchedule,
    total_tokens: usize,
    seed: u64,
) -> (CentralizedTrainer, TokenCorpus) {
    let mut rng = SeedStream::new(seed);
    let tokenizer = ByteTokenizer::new();
    let mut data_rng = rng.split("data");
    let domain = SyntheticDomain::preset(DomainKind::Web, &mut data_rng);
    let val_tokens = (total_tokens / 8).max(2048);
    let mut corpus = TokenCorpus::from_domain(
        &domain,
        &tokenizer,
        total_tokens + val_tokens,
        &mut data_rng,
    );
    let val = corpus.split_validation(val_tokens);
    let shard = {
        let tokens = std::sync::Arc::new(corpus.tokens().to_vec());
        let len = tokens.len();
        photon_data::Shard::from_range("cent", tokens, 0, len)
    };
    let stream = Box::new(photon_data::ShardStream::new(shard, rng.split("stream")));
    let trainer = CentralizedTrainer::new(
        cfg.model,
        batch_size,
        cfg.adamw,
        schedule,
        cfg.grad_clip,
        stream,
        seed,
    );
    (trainer, val)
}

/// Scores a trained model on the downstream suite, returning per-task
/// accuracies (the Tables 7–8 substitute).
pub fn downstream_report(model: &Gpt, seed: u64) -> Vec<DownstreamScore> {
    let tokenizer = ByteTokenizer::new();
    let mut rng = SeedStream::new(seed);
    let tasks = downstream_suite(&tokenizer, model.config().seq_len, &mut rng);
    evaluate_downstream(model, &tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_nn::ModelConfig;

    fn tiny_cfg(n: usize) -> FederationConfig {
        let model = ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 257,
            seq_len: 16,
        };
        let mut cfg = FederationConfig::quick_demo(model, n);
        cfg.local_steps = 4;
        cfg.local_batch = 2;
        cfg
    }

    #[test]
    fn iid_run_records_history_and_evals() {
        let cfg = tiny_cfg(2);
        let (mut fed, val) = build_iid_federation(&cfg, 2_000).unwrap();
        let opts = RunOptions {
            rounds: 3,
            eval_every: 1,
            eval_windows: 4,
            stop_below: None,
        };
        let history = run_federation(&mut fed, &val, &opts).unwrap();
        assert_eq!(history.len(), 3);
        assert!(history.rounds.iter().all(|r| r.eval_ppl.is_some()));
        assert!(history.final_ppl().unwrap() > 1.0);
    }

    #[test]
    fn early_stop_halts_run() {
        let cfg = tiny_cfg(2);
        let (mut fed, val) = build_iid_federation(&cfg, 2_000).unwrap();
        let opts = RunOptions {
            rounds: 50,
            eval_every: 1,
            eval_windows: 4,
            stop_below: Some(1e9), // trivially satisfied at first eval
        };
        let history = run_federation(&mut fed, &val, &opts).unwrap();
        assert_eq!(history.len(), 1);
    }

    #[test]
    fn heterogeneous_federation_assigns_domains() {
        let cfg = tiny_cfg(4);
        let (fed, val) = build_heterogeneous_federation(&cfg, 3_000).unwrap();
        assert_eq!(fed.clients.len(), 4);
        let names: Vec<&str> = fed.clients.iter().map(|c| c.data_source().name()).collect();
        assert!(names.iter().any(|n| n.contains("arxiv")));
        assert!(names.iter().any(|n| n.contains("prose")));
        assert!(val.len() > 1000);
        // Population must be a multiple of 4.
        let bad = tiny_cfg(3);
        assert!(build_heterogeneous_federation(&bad, 3_000).is_err());
    }

    #[test]
    fn centralized_driver_produces_comparable_history() {
        let cfg = tiny_cfg(1);
        let (mut trainer, val) =
            build_centralized(&cfg, 4, LrSchedule::paper_cosine(3e-3, 5, 500), 5_000, 3);
        let history = run_centralized(&mut trainer, &val, 3, 5, 4, None);
        assert_eq!(history.len(), 3);
        assert!(history.final_ppl().is_some());
    }
}
