use photon_data::{Shard, ShardStream, StreamMixer, TokenStream};
use photon_tensor::SeedStream;

/// A Photon Data Source: the storage side of the compute/data decoupling
/// (§3.1). Each DS owns a token shard and vends streams to the LLM client
/// bound to it (`BindStream`, Algorithm 1 L.14); when the client trains
/// with several parallel workers, the DS partitions the stream
/// (`PartitionStream`, L.22, IID by default).
#[derive(Debug, Clone)]
pub struct DataSource {
    name: String,
    shard: Shard,
    /// Optional shared public corpus mixed into every bound stream
    /// (§3.1: "public DS can be configured for data sharing among LLM-C
    /// clients"), with its sampling weight.
    public: Option<(Shard, f64)>,
}

impl DataSource {
    /// Creates a data source over a shard.
    pub fn new(name: impl Into<String>, shard: Shard) -> Self {
        DataSource {
            name: name.into(),
            shard,
            public: None,
        }
    }

    /// Attaches a shared public corpus sampled with probability
    /// `public_weight` per sequence (the private shard takes the rest).
    ///
    /// # Panics
    /// Panics if `public_weight` is outside `(0, 1)`.
    pub fn with_public(mut self, public: Shard, public_weight: f64) -> Self {
        assert!(
            public_weight > 0.0 && public_weight < 1.0,
            "public weight must be in (0, 1)"
        );
        self.public = Some((public, public_weight));
        self
    }

    /// The DS label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tokens stored.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// Whether the source holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }

    /// Binds a training stream over the full shard (mixed with the public
    /// corpus when one is attached).
    pub fn bind_stream(&self, mut rng: SeedStream) -> Box<dyn TokenStream> {
        match &self.public {
            None => Box::new(ShardStream::new(self.shard.clone(), rng)),
            Some((public, weight)) => {
                let private = Box::new(ShardStream::new(self.shard.clone(), rng.split("private")))
                    as Box<dyn TokenStream>;
                let shared = Box::new(ShardStream::new(public.clone(), rng.split("public")))
                    as Box<dyn TokenStream>;
                Box::new(StreamMixer::new(
                    vec![private, shared],
                    &[1.0 - weight, *weight],
                    rng.split("mixer"),
                ))
            }
        }
    }

    /// Partitions the source into `n` worker streams (IID default policy).
    ///
    /// # Panics
    /// Panics if the shard cannot be split `n` ways.
    pub fn partition_streams(&self, n: usize, rng: &mut SeedStream) -> Vec<Box<dyn TokenStream>> {
        self.shard
            .split(n)
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let child = rng.split(&format!("{}-worker-{i}", self.name));
                Box::new(ShardStream::new(s, child)) as Box<dyn TokenStream>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_data::Batch;
    use std::sync::Arc;

    fn source(n: usize) -> DataSource {
        let shard = Shard::from_range("s", Arc::new((0..n as u32).collect()), 0, n);
        DataSource::new("ds", shard)
    }

    #[test]
    fn bind_produces_valid_batches() {
        let ds = source(256);
        let mut stream = ds.bind_stream(SeedStream::new(1));
        let mut b = Batch::zeros(2, 8);
        stream.next_batch(&mut b);
        assert_eq!(b.targets[0], b.inputs[0] + 1);
        assert_eq!(ds.len(), 256);
        assert!(!ds.is_empty());
        assert_eq!(ds.name(), "ds");
    }

    #[test]
    fn public_corpus_is_mixed_in() {
        // Private tokens < 1000; public tokens >= 1000.
        let private = Shard::from_range("p", Arc::new((0..200u32).collect()), 0, 200);
        let public = Shard::from_range("pub", Arc::new((1000..1200u32).collect()), 0, 200);
        let ds = DataSource::new("mixed", private).with_public(public, 0.3);
        let mut stream = ds.bind_stream(SeedStream::new(4));
        let mut from_public = 0usize;
        let mut b = Batch::zeros(1, 8);
        const N: usize = 300;
        for _ in 0..N {
            stream.next_batch(&mut b);
            if b.inputs[0] >= 1000 {
                from_public += 1;
            }
        }
        let frac = from_public as f64 / N as f64;
        assert!((frac - 0.3).abs() < 0.1, "public fraction {frac}");
    }

    #[test]
    fn partition_gives_disjoint_worker_streams() {
        let ds = source(300);
        let mut rng = SeedStream::new(2);
        let mut streams = ds.partition_streams(3, &mut rng);
        assert_eq!(streams.len(), 3);
        let mut b = Batch::zeros(1, 8);
        // Worker 0 draws from the first ~100 tokens, worker 2 from the last.
        streams[0].next_batch(&mut b);
        assert!(b.inputs[0] < 100);
        streams[2].next_batch(&mut b);
        assert!(b.inputs[0] >= 200);
    }
}
