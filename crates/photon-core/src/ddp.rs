//! Distributed data parallelism (Algorithm 2) over real OS threads.
//!
//! Each worker holds a full model replica and a private data stream; every
//! step the workers compute local gradients, average them with a real
//! ring-allreduce (`photon-comms`), and apply identical optimizer updates.
//! Because the reduced gradient is bitwise identical on every rank, the
//! replicas stay exactly synchronized — which the implementation asserts.
//!
//! This module serves both the centralized baseline and the RDMA branch of
//! the LLM client's local pipeline (Algorithm 1, L.16–18).

use photon_comms::ring_allreduce_group;
use photon_data::{Batch, TokenStream};
use photon_nn::{Activations, Gpt, ModelConfig};
use photon_optim::{clip_global_norm, AdamW, AdamWConfig, LrSchedule, Optimizer};

/// Configuration for one DDP training segment.
#[derive(Debug, Clone)]
pub struct DdpConfig {
    /// Model architecture.
    pub model: ModelConfig,
    /// Micro-batch per worker.
    pub per_worker_batch: usize,
    /// Sequence length for training batches.
    pub seq_len: usize,
    /// Optimizer steps to run.
    pub steps: u64,
    /// Global step offset (so LR schedules continue across rounds).
    pub start_step: u64,
    /// AdamW hyperparameters.
    pub adamw: AdamWConfig,
    /// Learning-rate schedule (indexed by global step).
    pub schedule: LrSchedule,
    /// Optional global-norm gradient clipping.
    pub grad_clip: Option<f32>,
    /// FedProx proximal coefficient μ: adds `μ (w − w_start)` to gradients,
    /// anchoring local training to the received global model.
    pub fedprox_mu: Option<f32>,
}

/// Aggregate statistics from a DDP segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdpReport {
    /// Mean loss across all workers and steps.
    pub mean_loss: f32,
    /// Total tokens consumed (all workers).
    pub tokens: u64,
    /// Optimizer steps taken (per worker).
    pub steps: u64,
}

/// Runs synchronous data-parallel training from `params`, returning the
/// updated parameters and a report. One worker per stream.
///
/// # Panics
/// Panics if `streams` is empty, a worker thread panics, or the replicas
/// desynchronize (which would indicate a collective bug).
pub fn ddp_train(
    params: &[f32],
    cfg: &DdpConfig,
    streams: Vec<Box<dyn TokenStream>>,
) -> (Vec<f32>, DdpReport) {
    assert!(!streams.is_empty(), "ddp needs at least one worker");
    let n = streams.len();
    let ring = ring_allreduce_group(n);
    // Replica threads are themselves a layer of parallelism: divide the
    // caller's kernel-thread budget between them instead of letting every
    // replica fan out to the full pool (n replicas × full pool would
    // oversubscribe the machine n-fold). Using the *effective* budget keeps
    // nested drivers (sub-federation nodes running DDP) composable.
    let kernel_threads = (photon_tensor::ops::pool::effective_parallelism() / n).max(1);

    let handles: Vec<_> = streams
        .into_iter()
        .zip(ring)
        .map(|(mut stream, mut ring)| {
            let cfg = cfg.clone();
            let params = params.to_vec();
            std::thread::spawn(move || {
                photon_tensor::ops::pool::with_parallelism(kernel_threads, move || {
                    let anchor = cfg.fedprox_mu.map(|_| params.clone());
                    let mut model = Gpt::from_params(cfg.model, params);
                    let mut opt = AdamW::new(cfg.adamw, model.param_count());
                    let mut acts = Activations::new(&cfg.model, cfg.per_worker_batch, cfg.seq_len);
                    let mut grads = model.grad_buffer();
                    let mut batch = Batch::zeros(cfg.per_worker_batch, cfg.seq_len);
                    let mut loss_sum = 0.0f64;
                    for i in 0..cfg.steps {
                        stream.next_batch(&mut batch);
                        grads.iter_mut().for_each(|g| *g = 0.0);
                        let loss = model
                            .forward(&batch.inputs, Some(&batch.targets), &mut acts)
                            .expect("targets provided");
                        loss_sum += loss as f64;
                        model.backward(&batch.inputs, &batch.targets, &mut acts, &mut grads);
                        if let (Some(mu), Some(anchor)) = (cfg.fedprox_mu, anchor.as_ref()) {
                            let w = model.params();
                            for ((g, &wi), &ai) in grads.iter_mut().zip(w).zip(anchor) {
                                *g += mu * (wi - ai);
                            }
                        }
                        ring.allreduce_mean(&mut grads);
                        if let Some(max_norm) = cfg.grad_clip {
                            clip_global_norm(&mut grads, max_norm);
                        }
                        let lr = cfg.schedule.lr_at(cfg.start_step + i);
                        opt.step(model.params_mut(), &grads, lr);
                    }
                    let mean = (loss_sum / cfg.steps.max(1) as f64) as f32;
                    (model.into_params(), mean)
                })
            })
        })
        .collect();

    let mut results: Vec<(Vec<f32>, f32)> = handles
        .into_iter()
        .map(|h| h.join().expect("ddp worker panicked"))
        .collect();

    // Replicas must be exactly synchronized: the ring produces bitwise
    // identical reduced gradients and the optimizers are deterministic.
    let (reference, _) = &results[0];
    for (p, _) in &results[1..] {
        assert_eq!(
            p.len(),
            reference.len(),
            "ddp replicas desynchronized (length)"
        );
        assert!(
            p.iter().zip(reference).all(|(a, b)| a == b),
            "ddp replicas desynchronized (values)"
        );
    }

    let mean_loss = results.iter().map(|(_, l)| *l).sum::<f32>() / n as f32;
    let tokens = cfg.steps * (n * cfg.per_worker_batch * cfg.seq_len) as u64;
    let (params_out, _) = results.swap_remove(0);
    (
        params_out,
        DdpReport {
            mean_loss,
            tokens,
            steps: cfg.steps,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_data::Shard;
    use photon_data::ShardStream;
    use photon_optim::ScheduleKind;
    use photon_tensor::SeedStream;
    use std::sync::Arc;

    fn streams(n: usize, tokens: usize, seed: u64) -> Vec<Box<dyn TokenStream>> {
        let shard = Shard::from_range(
            "t",
            Arc::new((0..tokens as u32).map(|i| i % 17).collect()),
            0,
            tokens,
        );
        shard
            .split(n)
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                Box::new(ShardStream::new(s, SeedStream::new(seed + i as u64)))
                    as Box<dyn TokenStream>
            })
            .collect()
    }

    fn tiny_cfg(steps: u64) -> DdpConfig {
        DdpConfig {
            model: photon_nn::ModelConfig {
                n_layers: 1,
                d_model: 16,
                n_heads: 2,
                exp_ratio: 2,
                vocab_size: 17,
                seq_len: 8,
            },
            per_worker_batch: 2,
            seq_len: 8,
            steps,
            start_step: 0,
            adamw: AdamWConfig::default(),
            schedule: LrSchedule::new(ScheduleKind::Constant, 1e-2, 1e-3, 1, 1000),
            grad_clip: Some(1.0),
            fedprox_mu: None,
        }
    }

    fn init_params(cfg: &DdpConfig) -> Vec<f32> {
        Gpt::new(cfg.model, &mut SeedStream::new(0)).into_params()
    }

    #[test]
    fn training_reduces_loss_and_stays_synchronized() {
        let cfg = tiny_cfg(25);
        let params = init_params(&cfg);
        let (out, report) = ddp_train(&params, &cfg, streams(4, 400, 7));
        assert_eq!(out.len(), params.len());
        assert!(report.mean_loss.is_finite());
        assert_eq!(report.steps, 25);
        assert_eq!(report.tokens, 25 * 4 * 2 * 8);
        // Loss should drop measurably from ln(17) ≈ 2.83 on Markov-free data.
        assert!(report.mean_loss < 2.83);
    }

    #[test]
    fn single_worker_matches_plain_training_shape() {
        let cfg = tiny_cfg(10);
        let params = init_params(&cfg);
        let (out, report) = ddp_train(&params, &cfg, streams(1, 200, 3));
        assert_ne!(out, params);
        assert_eq!(report.steps, 10);
    }

    #[test]
    fn worker_count_changes_effective_batch_not_steps() {
        let cfg = tiny_cfg(5);
        let params = init_params(&cfg);
        let (_, r2) = ddp_train(&params, &cfg, streams(2, 300, 1));
        let (_, r4) = ddp_train(&params, &cfg, streams(4, 300, 1));
        assert_eq!(r4.tokens, 2 * r2.tokens);
        assert_eq!(r2.steps, r4.steps);
    }

    #[test]
    fn fedprox_anchors_local_training() {
        // A large proximal coefficient keeps the local model close to the
        // received global weights.
        let free_cfg = tiny_cfg(20);
        let mut prox_cfg = tiny_cfg(20);
        prox_cfg.fedprox_mu = Some(10.0);
        let params = init_params(&free_cfg);
        let (free, _) = ddp_train(&params, &free_cfg, streams(1, 300, 5));
        let (prox, _) = ddp_train(&params, &prox_cfg, streams(1, 300, 5));
        let dist = |a: &[f32]| -> f32 {
            a.iter()
                .zip(&params)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            dist(&prox) < dist(&free) * 0.9,
            "proximal term failed to anchor: {} vs {}",
            dist(&prox),
            dist(&free)
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_streams_panics() {
        let cfg = tiny_cfg(1);
        let params = init_params(&cfg);
        ddp_train(&params, &cfg, vec![]);
    }
}
