//! # photon-core
//!
//! The Photon system itself: the paper's Aggregator / LLM-Client / Data
//! Source architecture (§3), Algorithm 1's execution pipeline, and the
//! centralized + DDP baselines it is evaluated against (Algorithm 2).
//!
//! A federated run wires together every substrate crate:
//!
//! * clients train a [`photon_nn::Gpt`] with [`photon_optim`] on streams
//!   from their private [`DataSource`]s (`photon-data`);
//! * each sampled client runs on its own OS thread and talks to the
//!   aggregator through real `Link` frames (`photon-comms` wire format,
//!   optional compression and secure aggregation);
//! * the aggregator averages pseudo-gradients and applies a
//!   [`photon_fedopt::ServerOpt`] (FedAvg by default, DiLoCo as baseline);
//! * hardware-aware strategy selection (`photon-cluster`) decides between
//!   single-GPU, DDP (real threaded ring-allreduce) and sub-federation
//!   local pipelines.
//!
//! ```no_run
//! use photon_core::{Aggregator, FederationConfig};
//! use photon_nn::ModelConfig;
//!
//! let cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 4);
//! let mut fed = photon_core::build_federation(&cfg, 5_000).unwrap();
//! let record = fed.aggregator.run_round(&mut fed.clients).unwrap();
//! println!("round 0 mean client loss: {}", record.mean_client_loss);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod aggregator;
mod centralized;
mod checkpoint;
mod client;
mod config;
mod datasource;
mod ddp;
mod error;
pub mod experiments;
mod faults;
mod hierarchy;
mod membership;
mod metrics;
mod recovery;
mod telemetry;

pub use aggregator::{build_client, build_federation, Aggregator, Federation};
pub use centralized::CentralizedTrainer;
pub use checkpoint::{
    load_checkpoint, load_elastic_state, load_hierarchy_state, load_server_opt_state,
    save_checkpoint, save_checkpoint_full, save_checkpoint_with_opt, CheckpointManifest,
    ElasticState, CHECKPOINT_FORMAT_VERSION,
};
pub use client::{ClientOutcome, LlmClient};
pub use config::{CohortSpec, FederationConfig, PostProcessConfig};
pub use datasource::DataSource;
pub use ddp::{ddp_train, DdpConfig, DdpReport};
pub use error::CoreError;
pub use faults::{ClientFault, FaultInjector, FaultPlan, FaultSpec, TargetedFault};
pub use hierarchy::{HierarchyConfig, HierarchyState, ShardPartition, ShardTree};
pub use membership::{
    ChurnEvents, MemberPhase, MembershipConfig, MembershipRegistry, MembershipSnapshot,
};
pub use metrics::{RoundRecord, TrainingHistory};
pub use photon_comms::{
    AdaptiveDeadlineConfig, LinkProfile, NetworkConfig, PartitionKind, PartitionSchedule,
    PartitionSpec,
};
pub use recovery::{run_training, TrainingOptions, TrainingOutcome};
pub use telemetry::{ClientStats, FaultCounters, Telemetry};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
