//! Federation telemetry: the `AggMetrics` side of Algorithm 1 (L.10).
//!
//! The aggregator records every client's per-round metrics into a
//! thread-safe hub; operators (and the experiment harnesses) read
//! aggregated summaries — per-client token counts, participation, loss
//! trajectories — without touching the training loop.
//!
//! Since the observability pass, the hub's fault/guard/churn tallies are
//! backed by a [`photon_trace::CounterSet`]: every `record_*` call bumps a
//! named counter in the instance-local set **and** mirrors the same
//! increment into the global trace recorder (a no-op when tracing is
//! disabled), so the Prometheus snapshot and the CLI summary read from one
//! source of truth. [`FaultCounters`] remains the stable serialized view,
//! assembled from counter names on demand.

use parking_lot::RwLock;
use photon_comms::TrainMetrics;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Per-client aggregate statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientStats {
    /// Rounds this client participated in.
    pub rounds_participated: u64,
    /// Total tokens this client has trained on.
    pub tokens: u64,
    /// Total local optimizer steps.
    pub steps: u64,
    /// Mean of the client's reported per-round losses.
    pub mean_loss: f32,
    /// Most recent reported loss.
    pub last_loss: f32,
    /// Mean cosine alignment between this client's pseudo-gradients and
    /// the aggregated round update — the §6 "client contribution" measure
    /// (near 1: pulls with the federation; near 0: orthogonal noise;
    /// negative: conflicts).
    pub mean_alignment: f32,
}

/// Run-level fault and recovery counters — the operator's view of how much
/// turbulence the federation absorbed (§4's dropout tolerance plus the
/// recovery driver's checkpoint restores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Clients that crashed mid-round (no result frame).
    pub crashes: u64,
    /// Clients dropped for missing the round deadline.
    pub stragglers: u64,
    /// Result-frame retransmissions triggered by CRC failures.
    pub retransmits: u64,
    /// Clients dropped after exhausting the retransmit budget.
    pub link_dropouts: u64,
    /// Checkpoint restores performed by the recovery driver.
    pub recoveries: u64,
    /// Updates the guard rejected for non-finite coordinates.
    #[serde(default)]
    pub rejected_nonfinite: u64,
    /// Updates the guard rejected as cohort outliers (z-score or cosine).
    #[serde(default)]
    pub rejected_outliers: u64,
    /// Updates the guard admitted after norm clipping.
    #[serde(default)]
    pub norm_clipped: u64,
    /// Updates skipped because their client was quarantined.
    #[serde(default)]
    pub quarantine_skips: u64,
    /// Watchdog-triggered rollbacks to the last-good checkpoint.
    #[serde(default)]
    pub rollbacks: u64,
    /// New clients admitted mid-run (elastic membership warm joins).
    #[serde(default)]
    pub joins: u64,
    /// Members that permanently departed the federation.
    #[serde(default)]
    pub leaves: u64,
    /// Liveness leases that lapsed (members expired off the roster).
    #[serde(default)]
    pub lease_expiries: u64,
    /// Expired members that warm-rejoined after a crash-free round.
    #[serde(default)]
    pub rejoins: u64,
    /// Buffered-aggregation merges committed.
    #[serde(default)]
    pub buffered_commits: u64,
    /// Committed updates that were stale (down-weighted by staleness).
    #[serde(default)]
    pub stale_commits: u64,
}

/// Counter-name keys backing [`FaultCounters`] — the same names appear in
/// the Prometheus snapshot (as `name` label values) and in trace flushes.
mod key {
    pub const CRASHES: &str = "faults.crashes";
    pub const STRAGGLERS: &str = "faults.stragglers";
    pub const RETRANSMITS: &str = "faults.retransmits";
    pub const LINK_DROPOUTS: &str = "faults.link_dropouts";
    pub const RECOVERIES: &str = "faults.recoveries";
    pub const REJECTED_NONFINITE: &str = "guard.rejected_nonfinite";
    pub const REJECTED_OUTLIERS: &str = "guard.rejected_outliers";
    pub const NORM_CLIPPED: &str = "guard.norm_clipped";
    pub const QUARANTINE_SKIPS: &str = "guard.quarantine_skips";
    pub const ROLLBACKS: &str = "faults.rollbacks";
    pub const JOINS: &str = "churn.joins";
    pub const LEAVES: &str = "churn.leaves";
    pub const LEASE_EXPIRIES: &str = "churn.lease_expiries";
    pub const REJOINS: &str = "churn.rejoins";
    pub const BUFFERED_COMMITS: &str = "buffer.commits";
    pub const STALE_COMMITS: &str = "buffer.stale_commits";
    pub const ROUNDS_COMMITTED: &str = "rounds.committed";
}

impl FaultCounters {
    /// Assembles the serialized view from a named counter set.
    fn from_counters(c: &photon_trace::CounterSet) -> Self {
        FaultCounters {
            crashes: c.get(key::CRASHES),
            stragglers: c.get(key::STRAGGLERS),
            retransmits: c.get(key::RETRANSMITS),
            link_dropouts: c.get(key::LINK_DROPOUTS),
            recoveries: c.get(key::RECOVERIES),
            rejected_nonfinite: c.get(key::REJECTED_NONFINITE),
            rejected_outliers: c.get(key::REJECTED_OUTLIERS),
            norm_clipped: c.get(key::NORM_CLIPPED),
            quarantine_skips: c.get(key::QUARANTINE_SKIPS),
            rollbacks: c.get(key::ROLLBACKS),
            joins: c.get(key::JOINS),
            leaves: c.get(key::LEAVES),
            lease_expiries: c.get(key::LEASE_EXPIRIES),
            rejoins: c.get(key::REJOINS),
            buffered_commits: c.get(key::BUFFERED_COMMITS),
            stale_commits: c.get(key::STALE_COMMITS),
        }
    }
}

/// A cheaply clonable, thread-safe telemetry hub shared between the
/// aggregator and observers.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    clients: BTreeMap<u32, ClientAccum>,
    rounds_seen: u64,
    /// Distinct round indices whose aggregated update was actually
    /// applied. A set (not a counter) so a post-rollback replay of the
    /// same round is not double-counted within one federation instance.
    committed: BTreeSet<u64>,
    compute_threads: usize,
    counters: photon_trace::CounterSet,
}

impl Inner {
    /// Bumps a named counter locally and mirrors the increment into the
    /// global trace recorder (no-op when tracing is disabled).
    fn bump(&mut self, name: &'static str, by: u64) {
        if by == 0 {
            return;
        }
        self.counters.add(name, by);
        photon_trace::counter_add(name, by);
    }
}

#[derive(Debug, Default)]
struct ClientAccum {
    rounds: u64,
    tokens: u64,
    steps: u64,
    loss_sum: f64,
    last_loss: f32,
    alignment_sum: f64,
    alignment_count: u64,
}

impl Telemetry {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Records one client's round metrics (called by the aggregator as
    /// results arrive).
    pub fn record(&self, client_id: u32, round: u64, metrics: &TrainMetrics) {
        let mut inner = self.inner.write();
        inner.rounds_seen = inner.rounds_seen.max(round + 1);
        let acc = inner.clients.entry(client_id).or_default();
        acc.rounds += 1;
        acc.tokens += metrics.tokens;
        acc.steps += metrics.steps;
        acc.loss_sum += metrics.mean_loss as f64;
        acc.last_loss = metrics.mean_loss;
    }

    /// Records the cosine alignment of one client's update with the
    /// aggregated round delta.
    pub fn record_alignment(&self, client_id: u32, cosine: f32) {
        let mut inner = self.inner.write();
        let acc = inner.clients.entry(client_id).or_default();
        acc.alignment_sum += cosine as f64;
        acc.alignment_count += 1;
    }

    /// Records the resolved compute-thread budget for this run (the
    /// worker-pool size the kernels fan out to). Logged once at startup
    /// by drivers so operators can correlate throughput with parallelism.
    pub fn record_compute_threads(&self, threads: usize) {
        self.inner.write().compute_threads = threads;
        photon_trace::gauge_set("compute_threads", threads as f64);
    }

    /// The recorded compute-thread budget (0 if never recorded).
    pub fn compute_threads(&self) -> usize {
        self.inner.read().compute_threads
    }

    /// Accumulates one round's fault counts (crashes, stragglers,
    /// retransmissions, link-budget dropouts).
    pub fn record_round_faults(
        &self,
        crashes: u64,
        stragglers: u64,
        retransmits: u64,
        link_dropouts: u64,
    ) {
        let mut inner = self.inner.write();
        inner.bump(key::CRASHES, crashes);
        inner.bump(key::STRAGGLERS, stragglers);
        inner.bump(key::RETRANSMITS, retransmits);
        inner.bump(key::LINK_DROPOUTS, link_dropouts);
    }

    /// Records one checkpoint restore by the recovery driver.
    pub fn record_recovery(&self) {
        self.inner.write().bump(key::RECOVERIES, 1);
    }

    /// Accumulates one round's guard decisions (non-finite rejections,
    /// outlier rejections, norm clips, quarantine skips).
    pub fn record_guard(
        &self,
        rejected_nonfinite: u64,
        rejected_outliers: u64,
        norm_clipped: u64,
        quarantine_skips: u64,
    ) {
        let mut inner = self.inner.write();
        inner.bump(key::REJECTED_NONFINITE, rejected_nonfinite);
        inner.bump(key::REJECTED_OUTLIERS, rejected_outliers);
        inner.bump(key::NORM_CLIPPED, norm_clipped);
        inner.bump(key::QUARANTINE_SKIPS, quarantine_skips);
    }

    /// Records one watchdog-triggered rollback to the last-good
    /// checkpoint.
    pub fn record_rollback(&self) {
        self.inner.write().bump(key::ROLLBACKS, 1);
    }

    /// Accumulates one round's membership churn (joins, permanent leaves,
    /// lease expiries, warm rejoins).
    pub fn record_churn(&self, joins: u64, leaves: u64, lease_expiries: u64, rejoins: u64) {
        let mut inner = self.inner.write();
        inner.bump(key::JOINS, joins);
        inner.bump(key::LEAVES, leaves);
        inner.bump(key::LEASE_EXPIRIES, lease_expiries);
        inner.bump(key::REJOINS, rejoins);
    }

    /// Records one buffered-aggregation commit, of which `stale` committed
    /// updates carried a staleness discount.
    pub fn record_commit(&self, stale: u64) {
        let mut inner = self.inner.write();
        inner.bump(key::BUFFERED_COMMITS, 1);
        inner.bump(key::STALE_COMMITS, stale);
    }

    /// Marks `round` as *committed*: it completed and its aggregated
    /// update was applied (not neutralized by a watchdog rollback).
    /// Idempotent per round, so a replay after recovery counts once.
    ///
    /// Deliberately NOT mirrored into the global trace recorder: recovery
    /// re-seeds the committed prefix on every rebuilt federation, which
    /// would inflate a cumulative counter; the recovery driver publishes
    /// the commit count as a gauge instead.
    pub fn record_committed_round(&self, round: u64) {
        let mut inner = self.inner.write();
        if inner.committed.insert(round) {
            inner.counters.add(key::ROUNDS_COMMITTED, 1);
        }
    }

    /// The run's accumulated fault counters.
    pub fn fault_counters(&self) -> FaultCounters {
        FaultCounters::from_counters(&self.inner.read().counters)
    }

    /// A snapshot of the named counter set backing [`FaultCounters`]
    /// (deterministically ordered; used by the metrics sinks).
    pub fn counters(&self) -> photon_trace::CounterSet {
        self.inner.read().counters.clone()
    }

    /// Number of rounds observed so far (including rounds later
    /// neutralized by a watchdog rollback — see [`rounds_committed`]).
    ///
    /// [`rounds_committed`]: Telemetry::rounds_committed
    pub fn rounds_seen(&self) -> u64 {
        self.inner.read().rounds_seen
    }

    /// Number of distinct rounds whose update was actually applied.
    /// Always `<= rounds_seen()`: a round the watchdog neutralized is
    /// *seen* (its clients trained) but never *committed*.
    pub fn rounds_committed(&self) -> u64 {
        self.inner.read().committed.len() as u64
    }

    /// Total tokens consumed across the federation.
    pub fn total_tokens(&self) -> u64 {
        self.inner.read().clients.values().map(|c| c.tokens).sum()
    }

    /// Per-client summaries, ordered by client id.
    pub fn client_stats(&self) -> Vec<(u32, ClientStats)> {
        self.inner
            .read()
            .clients
            .iter()
            .map(|(&id, acc)| {
                (
                    id,
                    ClientStats {
                        rounds_participated: acc.rounds,
                        tokens: acc.tokens,
                        steps: acc.steps,
                        mean_loss: if acc.rounds == 0 {
                            0.0
                        } else {
                            (acc.loss_sum / acc.rounds as f64) as f32
                        },
                        last_loss: acc.last_loss,
                        mean_alignment: if acc.alignment_count == 0 {
                            0.0
                        } else {
                            (acc.alignment_sum / acc.alignment_count as f64) as f32
                        },
                    },
                )
            })
            .collect()
    }

    /// The spread between the most and least trained client's token
    /// counts — a fairness/straggler indicator under partial
    /// participation.
    pub fn participation_skew(&self) -> f64 {
        let inner = self.inner.read();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for acc in inner.clients.values() {
            lo = lo.min(acc.tokens);
            hi = hi.max(acc.tokens);
        }
        if lo == u64::MAX || lo == 0 {
            if hi == 0 {
                return 1.0;
            }
            return f64::INFINITY;
        }
        hi as f64 / lo as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(loss: f32, tokens: u64) -> TrainMetrics {
        TrainMetrics {
            mean_loss: loss,
            tokens,
            steps: tokens / 8,
        }
    }

    #[test]
    fn records_and_summarizes() {
        let t = Telemetry::new();
        t.record(0, 0, &metrics(3.0, 800));
        t.record(1, 0, &metrics(2.0, 800));
        t.record(0, 1, &metrics(1.0, 800));
        assert_eq!(t.rounds_seen(), 2);
        assert_eq!(t.total_tokens(), 2400);
        let stats = t.client_stats();
        assert_eq!(stats.len(), 2);
        let (id0, s0) = &stats[0];
        assert_eq!(*id0, 0);
        assert_eq!(s0.rounds_participated, 2);
        assert_eq!(s0.mean_loss, 2.0);
        assert_eq!(s0.last_loss, 1.0);
        assert_eq!(s0.tokens, 1600);
    }

    #[test]
    fn alignment_averages() {
        let t = Telemetry::new();
        t.record(0, 0, &metrics(1.0, 8));
        t.record_alignment(0, 0.8);
        t.record_alignment(0, 0.4);
        let stats = t.client_stats();
        assert!((stats[0].1.mean_alignment - 0.6).abs() < 1e-6);
    }

    #[test]
    fn compute_threads_round_trips() {
        let t = Telemetry::new();
        assert_eq!(t.compute_threads(), 0);
        t.record_compute_threads(8);
        assert_eq!(t.compute_threads(), 8);
    }

    #[test]
    fn fault_counters_accumulate() {
        let t = Telemetry::new();
        assert_eq!(t.fault_counters(), FaultCounters::default());
        t.record_round_faults(1, 2, 5, 0);
        t.record_round_faults(0, 1, 3, 1);
        t.record_recovery();
        let f = t.fault_counters();
        assert_eq!(f.crashes, 1);
        assert_eq!(f.stragglers, 3);
        assert_eq!(f.retransmits, 8);
        assert_eq!(f.link_dropouts, 1);
        assert_eq!(f.recoveries, 1);
    }

    #[test]
    fn guard_counters_accumulate() {
        let t = Telemetry::new();
        t.record_guard(1, 2, 3, 4);
        t.record_guard(1, 0, 0, 1);
        t.record_rollback();
        let f = t.fault_counters();
        assert_eq!(f.rejected_nonfinite, 2);
        assert_eq!(f.rejected_outliers, 2);
        assert_eq!(f.norm_clipped, 3);
        assert_eq!(f.quarantine_skips, 5);
        assert_eq!(f.rollbacks, 1);
    }

    #[test]
    fn churn_and_commit_counters_accumulate() {
        let t = Telemetry::new();
        t.record_churn(1, 0, 2, 1);
        t.record_churn(0, 1, 0, 0);
        t.record_commit(0);
        t.record_commit(3);
        let f = t.fault_counters();
        assert_eq!(f.joins, 1);
        assert_eq!(f.leaves, 1);
        assert_eq!(f.lease_expiries, 2);
        assert_eq!(f.rejoins, 1);
        assert_eq!(f.buffered_commits, 2);
        assert_eq!(f.stale_commits, 3);
    }

    #[test]
    fn counters_snapshot_uses_stable_names() {
        let t = Telemetry::new();
        t.record_round_faults(2, 0, 1, 0);
        t.record_commit(1);
        let c = t.counters();
        assert_eq!(c.get("faults.crashes"), 2);
        assert_eq!(c.get("faults.retransmits"), 1);
        assert_eq!(c.get("buffer.commits"), 1);
        assert_eq!(c.get("buffer.stale_commits"), 1);
        assert_eq!(c.get("faults.stragglers"), 0);
    }

    #[test]
    fn committed_rounds_lag_seen_rounds_after_neutralization() {
        let t = Telemetry::new();
        // Rounds 0..5 are observed; round 3 diverges and is neutralized on
        // replay, so it is seen but never committed.
        for r in 0..5u64 {
            t.record(0, r, &metrics(1.0, 8));
            if r != 3 {
                t.record_committed_round(r);
            }
        }
        assert_eq!(t.rounds_seen(), 5);
        assert_eq!(t.rounds_committed(), 4);
        // A replay of an already-committed round (recovery re-running the
        // post-checkpoint suffix) must not double-count.
        t.record_committed_round(4);
        assert_eq!(t.rounds_committed(), 4);
    }

    #[test]
    fn skew_detects_unequal_participation() {
        let t = Telemetry::new();
        t.record(0, 0, &metrics(1.0, 1000));
        t.record(1, 0, &metrics(1.0, 250));
        assert_eq!(t.participation_skew(), 4.0);
        let empty = Telemetry::new();
        assert_eq!(empty.participation_skew(), 1.0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for c in 0..4u32 {
                let t = t.clone();
                s.spawn(move || {
                    for r in 0..50 {
                        t.record(c, r, &metrics(1.0, 10));
                    }
                });
            }
        });
        assert_eq!(t.total_tokens(), 4 * 50 * 10);
        assert_eq!(t.rounds_seen(), 50);
    }
}
