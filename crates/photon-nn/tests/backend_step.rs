//! Cross-backend convergence: a full multi-step training run (forward,
//! backward, SGD update) under the SIMD backend must track the scalar
//! reference within fp32 drift, and each backend must replay itself
//! bit-identically (the per-backend determinism contract).
//!
//! On hosts without AVX2/FMA the simd request falls back to scalar and
//! both runs are literally the same code path; the test then passes
//! trivially, which is the intended CI behavior on such machines.

use photon_nn::{Activations, Gpt, ModelConfig};
use photon_tensor::backend::{set_backend, BackendKind};
use photon_tensor::SeedStream;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: 2,
        d_model: 32,
        n_heads: 4,
        exp_ratio: 2,
        vocab_size: 31,
        seq_len: 16,
    }
}

fn train(kind: BackendKind, steps: usize) -> (Vec<f32>, Vec<f32>) {
    set_backend(kind);
    let cfg = cfg();
    let (b, t) = (2usize, cfg.seq_len);
    let mut rng = SeedStream::new(42);
    let mut model = Gpt::new(cfg, &mut rng);
    let mut acts = Activations::new(&cfg, b, t);
    let mut grads = model.grad_buffer();
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let tokens: Vec<u32> = (0..b * t)
            .map(|i| ((i * 7 + step * 13) % cfg.vocab_size) as u32)
            .collect();
        let targets: Vec<u32> = (0..b * t)
            .map(|i| ((i * 7 + step * 13 + 1) % cfg.vocab_size) as u32)
            .collect();
        grads.iter_mut().for_each(|g| *g = 0.0);
        let loss = model
            .forward(&tokens, Some(&targets), &mut acts)
            .expect("targets provided");
        losses.push(loss);
        model.backward(&tokens, &targets, &mut acts, &mut grads);
        for (p, g) in model.params_mut().iter_mut().zip(&grads) {
            *p -= 1e-2 * g;
        }
    }
    (losses, model.into_params())
}

#[test]
fn train_step_losses_match_across_backends() {
    let steps = 4;
    let (loss_scalar, params_scalar) = train(BackendKind::Scalar, steps);
    let (loss_simd, params_simd) = train(BackendKind::Simd, steps);
    set_backend(BackendKind::Scalar);

    for (i, (s, v)) in loss_scalar.iter().zip(&loss_simd).enumerate() {
        let rel = (s - v).abs() / s.abs().max(1e-6);
        assert!(rel < 1e-2, "step {i}: scalar loss {s} vs simd loss {v}");
    }
    // Parameter drift after a few SGD steps stays small in aggregate.
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for (s, v) in params_scalar.iter().zip(&params_simd) {
        num += ((s - v) as f64).powi(2);
        den += (*s as f64).powi(2);
    }
    let rel = (num / den.max(1e-30)).sqrt();
    assert!(rel < 1e-2, "relative parameter drift {rel}");
}

#[test]
fn each_backend_replays_bit_identically() {
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        let (loss_a, params_a) = train(kind, 3);
        let (loss_b, params_b) = train(kind, 3);
        assert_eq!(loss_a, loss_b, "{kind:?} losses not reproducible");
        assert_eq!(params_a, params_b, "{kind:?} params not reproducible");
    }
    set_backend(BackendKind::Scalar);
}
