//! End-to-end determinism of the pooled kernels: a full training step
//! (forward, backward, SGD update) must produce the same loss and weights
//! whether the kernels run serially or fan out across the worker pool.
//!
//! The kernels are designed so that the serial and parallel paths either
//! match bitwise (row-partitioned loops, two-phase attention) or reduce
//! partial sums in deterministic chunk order (split-k GEMM, layernorm and
//! bias gradients), so the tolerance here is far tighter than fp32 noise.

use photon_nn::{Activations, Gpt, ModelConfig};
use photon_tensor::ops::pool;
use photon_tensor::SeedStream;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: 2,
        d_model: 32,
        n_heads: 4,
        exp_ratio: 2,
        vocab_size: 31,
        seq_len: 16,
    }
}

/// Runs `steps` full training steps under the given thread budget and
/// returns the per-step losses plus the final parameters.
fn train(threads: usize, steps: usize) -> (Vec<f32>, Vec<f32>) {
    pool::with_parallelism(threads, || {
        let cfg = cfg();
        let (b, t) = (2usize, cfg.seq_len);
        let mut rng = SeedStream::new(42);
        let mut model = Gpt::new(cfg, &mut rng);
        let mut acts = Activations::new(&cfg, b, t);
        let mut grads = model.grad_buffer();
        let mut losses = Vec::with_capacity(steps);
        for step in 0..steps {
            let tokens: Vec<u32> = (0..b * t)
                .map(|i| ((i * 7 + step * 13) % cfg.vocab_size) as u32)
                .collect();
            let targets: Vec<u32> = (0..b * t)
                .map(|i| ((i * 7 + step * 13 + 1) % cfg.vocab_size) as u32)
                .collect();
            grads.iter_mut().for_each(|g| *g = 0.0);
            let loss = model
                .forward(&tokens, Some(&targets), &mut acts)
                .expect("targets provided");
            losses.push(loss);
            model.backward(&tokens, &targets, &mut acts, &mut grads);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                *p -= 1e-2 * g;
            }
        }
        (losses, model.into_params())
    })
}

#[test]
fn train_step_matches_across_thread_budgets() {
    let steps = 4;
    let (loss_serial, params_serial) = train(1, steps);
    let (loss_par, params_par) = train(4, steps);

    for (s, p) in loss_serial.iter().zip(&loss_par) {
        assert!(
            (s - p).abs() < 1e-5,
            "loss diverged across thread budgets: {s} vs {p}"
        );
    }
    assert!(
        loss_serial.last().unwrap() < loss_serial.first().unwrap(),
        "training failed to reduce loss: {loss_serial:?}"
    );
    let max_diff = params_serial
        .iter()
        .zip(&params_par)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_diff < 1e-5,
        "weights diverged across thread budgets: max |d| = {max_diff}"
    );
}
